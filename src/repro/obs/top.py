"""``repro obs top`` — a terminal dashboard over a live service's /metrics.

Polls the serving endpoints (``/metrics`` as JSON, ``/slo``) at an
interval, differences successive counter snapshots into rates, and renders
a fixed-width dashboard: per-endpoint RPS and latency percentiles, outcome
mix, tier distribution, breaker states, SLO burn rates and flight-recorder
occupancy.  Pure functions do the parsing/rendering so tests can drive
them without a socket; :func:`run_top` owns the poll loop.
"""

from __future__ import annotations

import json
import re
import sys
import time
import urllib.request
from typing import Any, Callable, IO

__all__ = ["parse_series_key", "sum_counters", "render_dashboard", "run_top"]

_SERIES_RE = re.compile(r'^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$')
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a snapshot series key ``name{k="v",...}`` into name + labels."""
    match = _SERIES_RE.match(key)
    if match is None:
        return key, {}
    labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
    return match.group("name"), labels


def sum_counters(
    counters: dict[str, float], name: str, **label_filter: str
) -> float:
    """Sum every series of family ``name`` whose labels match the filter."""
    total = 0.0
    for key, value in counters.items():
        family, labels = parse_series_key(key)
        if family != name:
            continue
        if all(labels.get(k) == v for k, v in label_filter.items()):
            total += value
    return total


def _fetch_json(url: str, timeout: float) -> dict[str, Any]:
    request = urllib.request.Request(url, headers={"Accept": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return json.loads(resp.read())


def _rate(curr: float, prev: float, dt: float) -> float:
    return max(0.0, curr - prev) / dt if dt > 0 else 0.0


def render_dashboard(
    metrics: dict[str, Any],
    previous: dict[str, Any] | None,
    dt: float,
    *,
    slo: dict[str, Any] | None = None,
    source: str = "",
) -> str:
    """One dashboard frame as fixed-width text."""
    counters = metrics.get("counters", {})
    prev_counters = (previous or {}).get("counters", {})
    histograms = metrics.get("histograms", {})
    gauges = metrics.get("gauges", {})
    lines: list[str] = []
    lines.append(f"repro obs top — {source}".rstrip(" —"))

    # Per-endpoint request table -----------------------------------------
    endpoints: set[str] = set()
    for key in counters:
        family, labels = parse_series_key(key)
        if family == "serve.requests" and "endpoint" in labels:
            endpoints.add(labels["endpoint"])
    lines.append(
        f"{'endpoint':<18} {'rps':>8} {'total':>9} {'p50ms':>8} {'p90ms':>8} "
        f"{'p99ms':>8} {'inflight':>8}"
    )
    for endpoint in sorted(endpoints):
        total = sum_counters(counters, "serve.requests", endpoint=endpoint)
        prev_total = sum_counters(prev_counters, "serve.requests", endpoint=endpoint)
        summary = None
        for key, candidate in histograms.items():
            family, labels = parse_series_key(key)
            if family == "serve.latency.ms" and labels.get("endpoint") == endpoint:
                summary = candidate
                break
        inflight = 0.0
        for key, value in gauges.items():
            family, labels = parse_series_key(key)
            if family == "serve.inflight" and labels.get("endpoint") == endpoint:
                inflight = value
        def pct(which: str) -> str:
            if summary is None or summary.get("count", 0) == 0:
                return "-"
            return f"{summary[which]:.1f}"
        lines.append(
            f"{endpoint:<18} {_rate(total, prev_total, dt):>8.1f} {total:>9.0f} "
            f"{pct('p50'):>8} {pct('p90'):>8} {pct('p99'):>8} {inflight:>8.0f}"
        )

    # Outcome and tier mix ----------------------------------------------
    outcome_bits = []
    for outcome in ("ok", "degraded", "rejected", "shed", "unavailable", "error"):
        count = sum_counters(counters, "serve.requests", outcome=outcome)
        if count:
            outcome_bits.append(f"{outcome} {count:.0f}")
    if outcome_bits:
        lines.append("outcomes: " + "  ".join(outcome_bits))
    tier_bits = []
    tier_totals: dict[str, float] = {}
    for key, value in counters.items():
        family, labels = parse_series_key(key)
        if family == "serve.tier.answers" and "tier" in labels:
            tier_totals[labels["tier"]] = tier_totals.get(labels["tier"], 0.0) + value
    grand = sum(tier_totals.values())
    for tier, value in sorted(tier_totals.items(), key=lambda kv: -kv[1]):
        share = 100.0 * value / grand if grand else 0.0
        tier_bits.append(f"{tier} {share:.0f}%")
    if tier_bits:
        lines.append("tiers:    " + "  ".join(tier_bits))

    # Breakers -----------------------------------------------------------
    breakers = metrics.get("breakers", {})
    if breakers:
        lines.append(
            "breakers: "
            + "  ".join(
                f"{name} {state.get('state', '?')}"
                for name, state in sorted(breakers.items())
            )
        )

    # SLO burn rates ------------------------------------------------------
    if slo:
        for name, entry in sorted(slo.get("objectives", {}).items()):
            fast = entry["fast"]["burn_rate"]
            slow = entry["slow"]["burn_rate"]
            flag = "ALERT" if entry.get("alerting") else "ok"
            lines.append(
                f"slo {name:<13} target {entry['target']:.3f}  "
                f"burn fast {fast:>7.2f}  slow {slow:>7.2f}  {flag}"
            )

    flight = metrics.get("flight", {})
    if flight:
        lines.append(
            f"flight:   failed {flight.get('failed_kept', 0)}  "
            f"slow {flight.get('slow_kept', 0)}  offered {flight.get('offered', 0)}"
        )
    quarantine = metrics.get("quarantine", {})
    if quarantine:
        lines.append(f"quarantine: {quarantine.get('total', 0)} rejected payloads kept")
    return "\n".join(lines)


def run_top(
    url: str,
    *,
    interval: float = 2.0,
    count: int | None = None,
    clear: bool = True,
    timeout: float = 5.0,
    out: IO[str] | None = None,
    fetch: Callable[[str, float], dict[str, Any]] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll ``url`` and render the dashboard every ``interval`` seconds.

    ``count`` bounds the number of frames (None = until interrupted).
    Returns 0 on clean exit, 1 when the first poll already failed.
    """
    out = out if out is not None else sys.stdout
    fetch = fetch if fetch is not None else _fetch_json
    base = url.rstrip("/")
    previous: dict[str, Any] | None = None
    frames = 0
    last_poll = time.monotonic()
    while count is None or frames < count:
        try:
            metrics = fetch(base + "/metrics", timeout)
        except Exception as exc:  # noqa: BLE001 - any transport error ends the loop
            print(f"obs top: cannot fetch {base}/metrics: {exc}", file=out)
            return 1 if frames == 0 else 0
        try:
            slo = fetch(base + "/slo", timeout)
        except Exception:  # noqa: BLE001 - /slo is optional
            slo = None
        now = time.monotonic()
        dt = max(now - last_poll, 1e-9) if previous is not None else float("inf")
        last_poll = now
        if clear:
            out.write("\x1b[2J\x1b[H")
        print(render_dashboard(metrics, previous, dt, slo=slo, source=base), file=out)
        out.flush()
        previous = metrics
        frames += 1
        if count is not None and frames >= count:
            break
        try:
            sleep(interval)
        except KeyboardInterrupt:
            break
    return 0
