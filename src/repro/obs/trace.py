"""Hierarchical tracing spans with wall/CPU timings and counters.

A *span* is one named stage of a run — ``exp.table1.fit``,
``model.lda.fit`` — arranged in a tree that mirrors the call structure.
Spans with the same name under the same parent are **merged**: entering
``model.lda.next_product_proba`` five hundred times inside one evaluation
window produces a single node with ``n_calls == 500`` and accumulated
wall/CPU totals, so traces of tight loops stay small.

Tracing is **disabled by default** and the disabled path is engineered to
be near-free: :func:`span` returns a shared no-op context manager without
allocating anything, and :func:`add_counter` is a single flag check.  The
CLI's ``--trace`` flag (or :func:`enable`) turns it on.

The current span is tracked with a :class:`contextvars.ContextVar`, so the
span stack is correct across threads and async tasks.

Request-scoped capture
----------------------
Long-lived servers cannot share one global span forest: concurrent
requests would interleave their trees.  :func:`capture` installs an
isolated :class:`TraceBuffer` in a :class:`contextvars.ContextVar`; while
it is active every span opened in that context is recorded into the
buffer — even when global tracing is disabled — and the global forest is
untouched.  Each server request runs inside its own ``capture()`` (see
:mod:`repro.obs.context`), so span trees never cross request boundaries.
"""

from __future__ import annotations

import contextvars
from time import perf_counter, process_time
from typing import Any, Iterator

__all__ = [
    "Span",
    "TraceBuffer",
    "enable",
    "disable",
    "is_enabled",
    "span",
    "capture",
    "current_buffer",
    "current_span",
    "add_counter",
    "merge_subtree",
    "roots",
    "reset",
]


class Span:
    """One node of the trace tree: a named stage with accumulated timings.

    Attributes
    ----------
    name:
        Dotted stage name (``exp.<figure>.<stage>`` or ``model.<name>.<method>``).
    n_calls:
        How many times this (merged) span was entered.
    wall / cpu:
        Accumulated wall-clock and CPU seconds across all entries.
    counters:
        Named totals attached with :func:`add_counter` while this span was
        current.
    children:
        Child spans in first-entry order.
    """

    __slots__ = ("name", "n_calls", "wall", "cpu", "counters", "children", "_index")

    def __init__(self, name: str) -> None:
        self.name = name
        self.n_calls = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.counters: dict[str, float] = {}
        self.children: list["Span"] = []
        self._index: dict[str, "Span"] = {}

    def child(self, name: str) -> "Span":
        """The merged child span with ``name``, created on first use."""
        node = self._index.get(name)
        if node is None:
            node = Span(name)
            self._index[name] = node
            self.children.append(node)
        return node

    def add_counter(self, name: str, value: float = 1.0) -> None:
        """Accumulate ``value`` into this span's named counter."""
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def absorb(self, node: dict[str, Any]) -> None:
        """Merge a :meth:`as_dict` subtree into this span, recursively.

        Call counts, timings and counters accumulate; children are matched
        by name (created when absent).  This is how spans recorded inside a
        worker process are folded back into the parent's trace.
        """
        self.n_calls += int(node.get("n_calls", 0))
        self.wall += float(node.get("wall_s", 0.0))
        self.cpu += float(node.get("cpu_s", 0.0))
        for name, value in node.get("counters", {}).items():
            self.add_counter(name, value)
        for child_node in node.get("children", ()):
            self.child(str(child_node["name"])).absorb(child_node)

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict[str, Any]:
        """JSON-encodable representation of the subtree."""
        node: dict[str, Any] = {
            "name": self.name,
            "n_calls": self.n_calls,
            "wall_s": round(self.wall, 6),
            "cpu_s": round(self.cpu, 6),
        }
        if self.counters:
            node["counters"] = dict(self.counters)
        if self.children:
            node["children"] = [c.as_dict() for c in self.children]
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, n_calls={self.n_calls}, wall={self.wall:.4f})"


class TraceBuffer:
    """An isolated span forest: the recording target of one context.

    The module keeps one global buffer for whole-process runs (the CLI's
    ``--trace``); servers install a fresh buffer per request with
    :func:`capture` so concurrent requests never share a tree.
    """

    __slots__ = ("roots", "_root_index")

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._root_index: dict[str, Span] = {}

    def root(self, name: str) -> Span:
        """The merged root span with ``name``, created on first use."""
        node = self._root_index.get(name)
        if node is None:
            node = Span(name)
            self._root_index[name] = node
            self.roots.append(node)
        return node

    def clear(self) -> None:
        """Drop every recorded root."""
        self.roots = []
        self._root_index = {}

    def as_dicts(self) -> list[dict[str, Any]]:
        """JSON-encodable representation of the whole forest."""
        return [root.as_dict() for root in self.roots]


class _TraceState:
    """Module-global tracing state; a single object so the hot-path check
    is one attribute load."""

    __slots__ = ("enabled", "buffer")

    def __init__(self) -> None:
        self.enabled = False
        self.buffer = TraceBuffer()


_state = _TraceState()
_current: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)
#: The context-local recording target; None means the global buffer.
_buffer: contextvars.ContextVar[TraceBuffer | None] = contextvars.ContextVar(
    "repro_obs_trace_buffer", default=None
)


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL = _NullSpan()


class _SpanContext:
    """Context manager that opens (or re-enters) a merged span."""

    __slots__ = ("_name", "_span", "_token", "_wall0", "_cpu0")

    def __init__(self, name: str) -> None:
        self._name = name

    def __enter__(self) -> Span:
        parent = _current.get()
        if parent is None:
            buffer = _buffer.get()
            if buffer is None:
                buffer = _state.buffer
            node = buffer.root(self._name)
        else:
            node = parent.child(self._name)
        self._span = node
        self._token = _current.set(node)
        self._wall0 = perf_counter()
        self._cpu0 = process_time()
        return node

    def __exit__(self, *exc: object) -> bool:
        node = self._span
        node.wall += perf_counter() - self._wall0
        node.cpu += process_time() - self._cpu0
        node.n_calls += 1
        _current.reset(self._token)
        return False


def enable() -> None:
    """Turn tracing on (spans start recording)."""
    _state.enabled = True


def disable() -> None:
    """Turn tracing off; already-recorded spans are kept until :func:`reset`."""
    _state.enabled = False


def is_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _state.enabled


def span(name: str) -> _SpanContext | _NullSpan:
    """Context manager for one named stage.

    While tracing is disabled (and no :func:`capture` buffer is active)
    this returns a shared no-op object, so wrapping code in ``with
    span("stage"):`` costs one flag check plus one context-variable load.
    """
    if not _state.enabled and _buffer.get() is None:
        return _NULL
    return _SpanContext(name)


class _CaptureContext:
    """Context manager installing an isolated :class:`TraceBuffer`."""

    __slots__ = ("buffer", "_buffer_token", "_span_token")

    def __init__(self, buffer: TraceBuffer | None) -> None:
        self.buffer = buffer if buffer is not None else TraceBuffer()

    def __enter__(self) -> TraceBuffer:
        self._buffer_token = _buffer.set(self.buffer)
        # A fresh capture starts outside any span: an open span from the
        # surrounding context must not become the parent of request spans.
        self._span_token = _current.set(None)
        return self.buffer

    def __exit__(self, *exc: object) -> bool:
        _current.reset(self._span_token)
        _buffer.reset(self._buffer_token)
        return False


def capture(buffer: TraceBuffer | None = None) -> _CaptureContext:
    """Record spans into an isolated buffer for the enclosed block.

    Spans opened inside the block are recorded into ``buffer`` (a fresh
    one by default) **regardless of the global enable flag**, and the
    global forest is untouched.  The buffer is context-local, so
    concurrent threads/tasks each capturing their own buffer never see
    each other's spans.  Returns the buffer on ``__enter__``.
    """
    return _CaptureContext(buffer)


def current_buffer() -> TraceBuffer | None:
    """The active capture buffer, or None when recording globally."""
    return _buffer.get()


def current_span() -> Span | None:
    """The innermost open span, or None outside any span / when disabled."""
    return _current.get()


def add_counter(name: str, value: float = 1.0) -> None:
    """Accumulate a counter on the current span (no-op when disabled)."""
    if not _state.enabled and _buffer.get() is None:
        return
    node = _current.get()
    if node is not None:
        node.add_counter(name, value)


def merge_subtree(node: dict[str, Any]) -> None:
    """Merge a :meth:`Span.as_dict` subtree into the live trace.

    The subtree is attached under the current span (or as a root when none
    is open), merging with an existing same-named span.  No-op while
    tracing is disabled.  This is the parent-side half of cross-process
    span capture: workers ship ``as_dict()`` trees home, the parent absorbs
    them at the point of the fan-out.
    """
    if not _state.enabled and _buffer.get() is None:
        return
    name = str(node["name"])
    parent = _current.get()
    if parent is None:
        buffer = _buffer.get()
        if buffer is None:
            buffer = _state.buffer
        target = buffer.root(name)
    else:
        target = parent.child(name)
    target.absorb(node)


def roots() -> list[Span]:
    """The active buffer's root spans (global forest outside a capture)."""
    buffer = _buffer.get()
    if buffer is None:
        buffer = _state.buffer
    return list(buffer.roots)


def reset() -> None:
    """Drop all globally recorded spans and clear the current-span stack."""
    _state.buffer = TraceBuffer()
    _current.set(None)
