"""Instrumentation hooks: decorators plus the :class:`GenerativeModel` mixin.

The mixin is how the model layer gets observability without every model
author writing any plumbing: :class:`InstrumentedModel` wraps the core
contract methods (``fit``, ``log_prob``, ``next_product_proba``,
``batch_next_product_proba``) of every concrete subclass in a merged span
named ``model.<name>.<method>`` plus a call counter.

The wrappers are engineered for the disabled case: one attribute load and
a branch before delegating, so leaving instrumentation off adds no
measurable overhead to the evaluation loops that call
``next_product_proba`` thousands of times.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.obs import metrics, trace
from repro.obs.trace import _state as _trace_state

__all__ = ["traced", "instrument_method", "InstrumentedModel"]

#: GenerativeModel contract methods wrapped on every concrete subclass.
_MODEL_METHODS = (
    "fit",
    "log_prob",
    "next_product_proba",
    "batch_next_product_proba",
)


def traced(
    name: str, *, counter: str | None = None
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: run the function inside a span (and optional counter).

    ``name`` is the span name; ``counter`` (when given) is incremented on
    the default metrics registry per call.  Both are no-ops while tracing
    and metrics are disabled.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _trace_state.enabled and not metrics.is_enabled():
                return fn(*args, **kwargs)
            if counter is not None:
                metrics.inc(counter)
            with trace.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def instrument_method(fn: Callable[..., Any], method_name: str) -> Callable[..., Any]:
    """Wrap a model method in a ``model.<name>.<method>`` span + counter.

    The span name is computed per call from ``self.name`` so subclasses
    sharing an implementation still report under their own display name.
    """

    @functools.wraps(fn)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        if not _trace_state.enabled:
            return fn(self, *args, **kwargs)
        stage = f"model.{self.name}.{method_name}"
        metrics.inc(f"{stage}.calls")
        with trace.span(stage):
            return fn(self, *args, **kwargs)

    wrapper.__obs_wrapped__ = True  # type: ignore[attr-defined]
    return wrapper


class InstrumentedModel:
    """Mixin that auto-instruments the generative-model contract.

    Any class inheriting from this mixin (directly or through
    :class:`repro.models.base.GenerativeModel`) has the contract methods it
    *defines* wrapped at class-creation time.  Inherited methods are left
    alone — they were already wrapped where they were defined — and
    abstract declarations are skipped so ABC enforcement is preserved.
    """

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        for method_name in _MODEL_METHODS:
            fn = cls.__dict__.get(method_name)
            if (
                fn is None
                or not callable(fn)
                or getattr(fn, "__isabstractmethod__", False)
                or getattr(fn, "__obs_wrapped__", False)
            ):
                continue
            setattr(cls, method_name, instrument_method(fn, method_name))
