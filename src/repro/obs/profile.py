"""Opt-in cProfile capture of the top-N hot functions per labelled region.

CPython allows only one active profiler at a time, so :func:`capture` is
re-entrancy guarded: the outermost enabled capture profiles, any nested
capture silently no-ops.  Like tracing, profiling is disabled by default
and :func:`capture` costs a flag check when off.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "HotFunction",
    "ProfileCapture",
    "enable",
    "disable",
    "is_enabled",
    "capture",
    "captures",
    "reset",
]


@dataclass(frozen=True)
class HotFunction:
    """One row of a profile: a function and its aggregate costs."""

    location: str
    n_calls: int
    total_s: float
    cumulative_s: float


@dataclass
class ProfileCapture:
    """The top-N hot functions recorded under one label."""

    label: str
    top: list[HotFunction] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        """JSON-encodable representation."""
        return {
            "label": self.label,
            "top": [
                {
                    "location": row.location,
                    "n_calls": row.n_calls,
                    "total_s": round(row.total_s, 6),
                    "cumulative_s": round(row.cumulative_s, 6),
                }
                for row in self.top
            ],
        }


class _ProfileState:
    """Module-global profiler state."""

    __slots__ = ("enabled", "top_n", "active", "captures")

    def __init__(self) -> None:
        self.enabled = False
        self.top_n = 10
        self.active = False
        self.captures: list[ProfileCapture] = []


_state = _ProfileState()


def enable(top_n: int = 10) -> None:
    """Turn profiling on, keeping the ``top_n`` hottest functions per capture."""
    if top_n < 1:
        raise ValueError("top_n must be >= 1")
    _state.enabled = True
    _state.top_n = int(top_n)


def disable() -> None:
    """Turn profiling off (the default)."""
    _state.enabled = False


def is_enabled() -> bool:
    """Whether :func:`capture` currently profiles."""
    return _state.enabled


@contextmanager
def capture(label: str) -> Iterator[ProfileCapture | None]:
    """Profile the enclosed block under ``label``.

    Yields the in-progress :class:`ProfileCapture` (populated on exit), or
    None when profiling is disabled or another capture is already active.
    """
    if not _state.enabled or _state.active:
        yield None
        return
    _state.active = True
    result = ProfileCapture(label=label)
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        yield result
    finally:
        profiler.disable()
        _state.active = False
        result.top = _top_functions(profiler, _state.top_n)
        _state.captures.append(result)


def _top_functions(profiler: cProfile.Profile, top_n: int) -> list[HotFunction]:
    """Extract the ``top_n`` functions by cumulative time from a profiler."""
    stats = pstats.Stats(profiler)
    rows: list[HotFunction] = []
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        location = f"{filename}:{lineno}({func})" if lineno else func
        rows.append(
            HotFunction(location=location, n_calls=nc, total_s=tt, cumulative_s=ct)
        )
    rows.sort(key=lambda r: -r.cumulative_s)
    return rows[:top_n]


def captures() -> list[ProfileCapture]:
    """All completed captures since the last :func:`reset`."""
    return list(_state.captures)


def reset() -> None:
    """Drop recorded captures (the enabled flag is untouched)."""
    _state.captures = []
