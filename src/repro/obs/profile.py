"""Opt-in cProfile capture of the top-N hot functions per labelled region.

CPython allows only one active profiler at a time, so :func:`capture` is
re-entrancy guarded: the outermost enabled capture profiles, any nested
capture silently no-ops.  Like tracing, profiling is disabled by default
and :func:`capture` costs a flag check when off.

For *live services* cProfile is the wrong tool — it taxes every function
call in every thread for as long as it runs.  :class:`SamplingProfiler`
instead takes periodic wall-clock snapshots of every thread's stack via
``sys._current_frames``: overhead is proportional to the sampling rate
(default 100 Hz) rather than the request rate, so it can be attached to a
serving process for a few seconds (the service's ``/admin/profile``
endpoint does exactly this) and report where wall time is going right
now, hangs and lock waits included.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "HotFunction",
    "ProfileCapture",
    "SamplingProfiler",
    "enable",
    "disable",
    "is_enabled",
    "capture",
    "captures",
    "reset",
]


@dataclass(frozen=True)
class HotFunction:
    """One row of a profile: a function and its aggregate costs."""

    location: str
    n_calls: int
    total_s: float
    cumulative_s: float


@dataclass
class ProfileCapture:
    """The top-N hot functions recorded under one label."""

    label: str
    top: list[HotFunction] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        """JSON-encodable representation."""
        return {
            "label": self.label,
            "top": [
                {
                    "location": row.location,
                    "n_calls": row.n_calls,
                    "total_s": round(row.total_s, 6),
                    "cumulative_s": round(row.cumulative_s, 6),
                }
                for row in self.top
            ],
        }


class _ProfileState:
    """Module-global profiler state."""

    __slots__ = ("enabled", "top_n", "active", "captures")

    def __init__(self) -> None:
        self.enabled = False
        self.top_n = 10
        self.active = False
        self.captures: list[ProfileCapture] = []


_state = _ProfileState()


def enable(top_n: int = 10) -> None:
    """Turn profiling on, keeping the ``top_n`` hottest functions per capture."""
    if top_n < 1:
        raise ValueError("top_n must be >= 1")
    _state.enabled = True
    _state.top_n = int(top_n)


def disable() -> None:
    """Turn profiling off (the default)."""
    _state.enabled = False


def is_enabled() -> bool:
    """Whether :func:`capture` currently profiles."""
    return _state.enabled


@contextmanager
def capture(label: str) -> Iterator[ProfileCapture | None]:
    """Profile the enclosed block under ``label``.

    Yields the in-progress :class:`ProfileCapture` (populated on exit), or
    None when profiling is disabled or another capture is already active.
    """
    if not _state.enabled or _state.active:
        yield None
        return
    _state.active = True
    result = ProfileCapture(label=label)
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        yield result
    finally:
        profiler.disable()
        _state.active = False
        result.top = _top_functions(profiler, _state.top_n)
        _state.captures.append(result)


def _top_functions(profiler: cProfile.Profile, top_n: int) -> list[HotFunction]:
    """Extract the ``top_n`` functions by cumulative time from a profiler."""
    stats = pstats.Stats(profiler)
    rows: list[HotFunction] = []
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        location = f"{filename}:{lineno}({func})" if lineno else func
        rows.append(
            HotFunction(location=location, n_calls=nc, total_s=tt, cumulative_s=ct)
        )
    rows.sort(key=lambda r: -r.cumulative_s)
    return rows[:top_n]


class SamplingProfiler:
    """Low-overhead wall-clock stack sampler for live processes.

    :meth:`run_for` blocks the calling thread for the requested duration,
    sampling every other thread's stack at ``interval_s`` and aggregating
    identical stacks.  The result names the hottest stacks and a flat
    self/cumulative table per function — enough to spot a hot kernel, a
    blocked lock, or an abandoned hung scorer thread in a running server.
    """

    def __init__(self, *, interval_s: float = 0.01, max_depth: int = 64) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.interval_s = float(interval_s)
        self.max_depth = int(max_depth)

    @staticmethod
    def _frame_stack(frame, max_depth: int) -> tuple[str, ...]:
        stack: list[str] = []
        while frame is not None and len(stack) < max_depth:
            code = frame.f_code
            stack.append(f"{code.co_filename}:{frame.f_lineno}({code.co_name})")
            frame = frame.f_back
        stack.reverse()  # outermost first
        return tuple(stack)

    def run_for(self, seconds: float, *, top_n: int = 20) -> dict[str, Any]:
        """Sample for ``seconds``; returns the aggregated JSON-encodable report."""
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        if top_n < 1:
            raise ValueError("top_n must be >= 1")
        own_thread = threading.get_ident()
        stack_counts: dict[tuple[str, ...], int] = {}
        samples = 0
        deadline = time.monotonic() + seconds
        while True:
            now = time.monotonic()
            if now >= deadline:
                break
            for thread_id, frame in sys._current_frames().items():
                if thread_id == own_thread:
                    continue
                stack = self._frame_stack(frame, self.max_depth)
                if stack:
                    stack_counts[stack] = stack_counts.get(stack, 0) + 1
            samples += 1
            time.sleep(min(self.interval_s, max(deadline - now, 0.0)))
        self_counts: dict[str, int] = {}
        cumulative_counts: dict[str, int] = {}
        for stack, count in stack_counts.items():
            self_counts[stack[-1]] = self_counts.get(stack[-1], 0) + count
            for location in set(stack):
                cumulative_counts[location] = cumulative_counts.get(location, 0) + count
        hottest = sorted(stack_counts.items(), key=lambda kv: -kv[1])[:top_n]
        functions = sorted(
            cumulative_counts,
            key=lambda loc: (-cumulative_counts[loc], loc),
        )[:top_n]
        return {
            "seconds": seconds,
            "interval_s": self.interval_s,
            "samples": samples,
            "threads_seen": len({s[0] for s in stack_counts} if stack_counts else set()),
            "stacks": [
                {"stack": list(stack), "count": count} for stack, count in hottest
            ],
            "functions": [
                {
                    "location": location,
                    "self": self_counts.get(location, 0),
                    "cumulative": cumulative_counts[location],
                }
                for location in functions
            ],
        }


def captures() -> list[ProfileCapture]:
    """All completed captures since the last :func:`reset`."""
    return list(_state.captures)


def reset() -> None:
    """Drop recorded captures (the enabled flag is untouched)."""
    _state.captures = []
