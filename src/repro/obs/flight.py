"""Flight recorder: a ring buffer of the slowest and failed requests.

Aggregate metrics say *that* p99 regressed; the flight recorder says
*which request* and *where the time went*.  The serving layer offers every
finished request to :meth:`FlightRecorder.record` together with its full
span tree (captured per-request via :mod:`repro.obs.context`); the
recorder keeps

* every **failed** request (non-2xx, shed, internal error) in a ring of
  the most recent ``capacity`` entries, and
* the **slowest** successful requests in a bounded min-heap of size
  ``capacity`` (plus anything over ``slow_threshold_ms``, which competes
  for the same slots but is prioritised by latency like everything else).

Entries are JSON-encodable dicts retrievable by ``request_id`` — the same
id exposed as a histogram-bucket exemplar on ``/metrics`` — and dumpable
as JSONL via the service's ``/admin/debug`` endpoint, so the workflow
"scrape shows a slow bucket exemplar → fetch that request's span tree"
needs nothing but an HTTP client.
"""

from __future__ import annotations

import heapq
import itertools
import json
import threading
import time
from collections import deque
from typing import Any, Callable

__all__ = ["FlightRecord", "FlightRecorder"]


class FlightRecord(dict):
    """One recorded request: a plain JSON-encodable dict.

    Keys: ``request_id``, ``trace_id``, ``endpoint``, ``status``,
    ``outcome``, ``tier``, ``latency_ms``, ``ts``, ``spans`` (the span
    forest as nested dicts) plus whatever extra context the service
    attached.
    """


class FlightRecorder:
    """Bounded two-section store of failed and slowest requests."""

    def __init__(
        self,
        *,
        capacity: int = 64,
        slow_threshold_ms: float | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.slow_threshold_ms = slow_threshold_ms
        self._clock = clock
        self._failed: deque[FlightRecord] = deque(maxlen=capacity)
        # Min-heap of (latency_ms, seq, record): the fastest of the kept
        # slow requests sits on top and is evicted first.
        self._slow: list[tuple[float, int, FlightRecord]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._recorded = 0
        self._dropped_fast = 0

    # ------------------------------------------------------------------
    def record(
        self,
        *,
        request_id: str,
        endpoint: str,
        status: int,
        latency_ms: float,
        failed: bool,
        spans: list[dict[str, Any]] | Callable[[], list[dict[str, Any]]],
        **extra: Any,
    ) -> bool:
        """Offer one finished request; returns True when it was kept.

        ``failed`` requests always enter the failure ring.  Successes
        compete for the slowest-request heap: kept while the heap has
        room, afterwards only when slower than the current fastest kept
        entry (entries over ``slow_threshold_ms`` are unconditionally
        eligible but still bounded by the heap size).

        ``spans`` may be a zero-argument callable; it is invoked only
        when the request is actually kept, so callers on the hot path
        skip serializing the span forest of every dropped request.
        """
        with self._lock:
            self._recorded += 1
            if not failed:
                keep = len(self._slow) < self.capacity
                if not keep:
                    keep = (
                        self.slow_threshold_ms is not None
                        and latency_ms >= self.slow_threshold_ms
                    ) or latency_ms > self._slow[0][0]
                if not keep:
                    self._dropped_fast += 1
                    return False
            record = FlightRecord(
                request_id=request_id,
                endpoint=endpoint,
                status=int(status),
                latency_ms=round(float(latency_ms), 3),
                failed=bool(failed),
                ts=round(self._clock(), 6),
                spans=spans() if callable(spans) else spans,
                **extra,
            )
            if failed:
                self._failed.append(record)
            elif len(self._slow) < self.capacity:
                heapq.heappush(self._slow, (float(latency_ms), next(self._seq), record))
            else:
                heapq.heapreplace(
                    self._slow, (float(latency_ms), next(self._seq), record)
                )
            return True

    # ------------------------------------------------------------------
    def lookup(self, request_id: str) -> FlightRecord | None:
        """The most recent record with this ``request_id``, if kept."""
        with self._lock:
            candidates = [r for r in self._failed if r["request_id"] == request_id]
            candidates += [
                r for _, _, r in self._slow if r["request_id"] == request_id
            ]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r["ts"])

    def records(self, *, section: str = "all", limit: int | None = None) -> list[FlightRecord]:
        """Kept records, newest first.

        ``section`` is ``all`` (default), ``failed`` or ``slow``.
        """
        if section not in ("all", "failed", "slow"):
            raise ValueError(f"unknown section {section!r}")
        with self._lock:
            failed = list(self._failed)
            slow = [r for _, _, r in self._slow]
        if section == "failed":
            chosen = failed
        elif section == "slow":
            chosen = slow
        else:
            chosen = failed + slow
        chosen.sort(key=lambda r: r["ts"], reverse=True)
        if limit is not None:
            chosen = chosen[: max(0, int(limit))]
        return chosen

    def dump_jsonl(self, *, section: str = "all", limit: int | None = None) -> str:
        """The kept records as one JSON document per line (newest first)."""
        lines = [
            json.dumps(record, sort_keys=True, default=str)
            for record in self.records(section=section, limit=limit)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def stats(self) -> dict[str, int]:
        """Occupancy and churn counters for /metrics-adjacent reporting."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "failed_kept": len(self._failed),
                "slow_kept": len(self._slow),
                "offered": self._recorded,
                "dropped_fast": self._dropped_fast,
            }
