"""Shared argument-validation helpers.

Every public entry point in :mod:`repro` validates its inputs eagerly so
that configuration errors surface at call time with a clear message rather
than deep inside a numerical routine.  The helpers in this module raise
:class:`ValueError` or :class:`TypeError` with uniform wording.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_probability",
    "check_positive_float",
    "check_fraction_triple",
    "check_in_choices",
    "check_rng",
    "as_rng",
    "check_matrix",
    "check_sequences",
]


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as ``int`` if it is a positive integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: Any, name: str) -> int:
    """Return ``value`` as ``int`` if it is a non-negative integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_probability(value: Any, name: str) -> float:
    """Return ``value`` as ``float`` if it lies in [0, 1], else raise."""
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from exc
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {result}")
    return result


def check_positive_float(value: Any, name: str) -> float:
    """Return ``value`` as ``float`` if it is strictly positive and finite."""
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from exc
    if not np.isfinite(result) or result <= 0.0:
        raise ValueError(f"{name} must be a positive finite number, got {result}")
    return result


def check_fraction_triple(
    fractions: Sequence[float], name: str = "fractions"
) -> tuple[float, float, float]:
    """Validate a train/validation/test fraction triple summing to 1."""
    if len(fractions) != 3:
        raise ValueError(f"{name} must have exactly 3 entries, got {len(fractions)}")
    triple = tuple(float(f) for f in fractions)
    if any(f < 0.0 for f in triple):
        raise ValueError(f"{name} entries must be non-negative, got {triple}")
    if abs(sum(triple) - 1.0) > 1e-9:
        raise ValueError(f"{name} must sum to 1, got sum={sum(triple)!r}")
    if triple[0] <= 0.0:
        raise ValueError(f"{name}[0] (train fraction) must be positive")
    return triple  # type: ignore[return-value]


def check_in_choices(value: Any, name: str, choices: Iterable[Any]) -> Any:
    """Raise :class:`ValueError` unless ``value`` is one of ``choices``."""
    options = tuple(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")
    return value


def check_rng(value: Any, name: str = "rng") -> np.random.Generator:
    """Raise unless ``value`` is a :class:`numpy.random.Generator`."""
    if not isinstance(value, np.random.Generator):
        raise TypeError(
            f"{name} must be a numpy.random.Generator, got {type(value).__name__}"
        )
    return value


def as_rng(seed: Any) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can share stream state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, or a numpy.random.Generator, "
        f"got {type(seed).__name__}"
    )


def check_matrix(value: Any, name: str, *, binary: bool = False) -> np.ndarray:
    """Validate a 2-D numeric array and return it as ``float64``.

    With ``binary=True`` additionally require every entry to be 0 or 1.
    """
    array = np.asarray(value, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values")
    if binary and not np.all((array == 0.0) | (array == 1.0)):
        raise ValueError(f"{name} must be a binary (0/1) matrix")
    return array


def check_sequences(
    sequences: Any, name: str, *, vocab_size: int | None = None
) -> list[list[int]]:
    """Validate a list of integer token sequences.

    Empty sequences are permitted (a company with no dated products); token
    ids must be non-negative and, when ``vocab_size`` is given, < vocab_size.
    """
    if not isinstance(sequences, (list, tuple)):
        raise TypeError(f"{name} must be a list of sequences")
    result: list[list[int]] = []
    for i, seq in enumerate(sequences):
        if not isinstance(seq, (list, tuple, np.ndarray)):
            raise TypeError(f"{name}[{i}] must be a sequence of ints")
        tokens: list[int] = []
        for token in seq:
            if isinstance(token, bool) or not isinstance(token, (int, np.integer)):
                raise TypeError(f"{name}[{i}] contains non-integer token {token!r}")
            token_int = int(token)
            if token_int < 0:
                raise ValueError(f"{name}[{i}] contains negative token {token_int}")
            if vocab_size is not None and token_int >= vocab_size:
                raise ValueError(
                    f"{name}[{i}] contains token {token_int} >= vocab_size {vocab_size}"
                )
            tokens.append(token_int)
        result.append(tokens)
    return result
