"""Conditional Heavy Hitters: time-dependent association rules.

The paper's third recommender is based on *exact* Conditional Heavy Hitters
(Mirylenka et al., VLDB Journal 2015) with context depth 2: for every
context of up to two preceding products, track the conditional distribution
of the next product, and recommend products whose conditional probability
given the company's most recent purchases exceeds the threshold phi
(Sections 4.3, 5.1).  Exact CHH over a finite log is simply a complete
count table — "exact time-dependent association rules" in the paper's words.

:class:`ConditionalHeavyHitters` is the exact variant used in the Figure 3/4
benchmarks; :class:`StreamingCHH` is the bounded-memory SpaceSaving-based
approximation from the original CHH line of work, included because the
motivation there is real-time streams (and benchmarked against the exact
version in an ablation).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any

import numpy as np

from repro._validation import check_non_negative_int, check_positive_int
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel

__all__ = ["ConditionalHeavyHitters", "StreamingCHH"]


class ConditionalHeavyHitters(GenerativeModel):
    """Exact CHH model over product sequences.

    Parameters
    ----------
    depth:
        Maximum context length (the paper uses 2, chosen from its bigram/
        trigram sequentiality tests).
    min_context_count:
        A context must have been seen at least this often for its
        conditional distribution to be trusted ("heavy" parents); rarer
        contexts back off to shorter ones.
    smoothing:
        Additive smoothing of the fallback unigram distribution.
    """

    name = "chh"

    BOS = -1

    def __init__(
        self,
        depth: int = 2,
        *,
        min_context_count: int = 5,
        smoothing: float = 0.5,
    ) -> None:
        super().__init__()
        self.depth = check_positive_int(depth, "depth")
        self.min_context_count = check_positive_int(min_context_count, "min_context_count")
        if smoothing <= 0:
            raise ValueError(f"smoothing must be positive, got {smoothing}")
        self.smoothing = float(smoothing)
        self._counts: list[dict[tuple[int, ...], Counter]] = []
        self._totals: list[dict[tuple[int, ...], int]] = []
        self._unigram: np.ndarray | None = None

    def fit(self, corpus: Corpus) -> "ConditionalHeavyHitters":
        sequences = corpus.sequences()
        vocab = corpus.n_products
        unigram = np.full(vocab, self.smoothing)
        counts: list[dict[tuple[int, ...], Counter]] = [
            defaultdict(Counter) for __ in range(self.depth)
        ]
        totals: list[dict[tuple[int, ...], int]] = [
            defaultdict(int) for __ in range(self.depth)
        ]
        for seq in sequences:
            padded = [self.BOS] * self.depth + seq
            for t, token in enumerate(seq):
                unigram[token] += 1.0
                position = t + self.depth
                for level in range(1, self.depth + 1):
                    context = tuple(padded[position - level : position])
                    counts[level - 1][context][token] += 1
                    totals[level - 1][context] += 1
        self._counts = [dict(level) for level in counts]
        self._totals = [dict(level) for level in totals]
        self._unigram = unigram / unigram.sum()
        self._vocab_size = vocab
        return self

    # ------------------------------------------------------------------
    # Conditional probabilities with hard backoff
    # ------------------------------------------------------------------
    def _conditional(self, context: tuple[int, ...]) -> np.ndarray:
        """Deepest trusted conditional distribution for ``context``."""
        assert self._unigram is not None
        for level in range(min(len(context), self.depth), 0, -1):
            sub = context[len(context) - level :]
            total = self._totals[level - 1].get(sub, 0)
            if total >= self.min_context_count:
                proba = np.zeros_like(self._unigram)
                for token, count in self._counts[level - 1][sub].items():
                    proba[token] = count / total
                # Tiny floor keeps held-out tokens finite in log space while
                # leaving the thresholded recommendations untouched.
                return 0.99 * proba + 0.01 * self._unigram
        return self._unigram

    def log_prob(self, corpus: Corpus) -> float:
        self._check_fitted()
        if corpus.n_products != self.vocab_size:
            raise ValueError(
                f"corpus has {corpus.n_products} products, model fitted on "
                f"{self.vocab_size}"
            )
        total = 0.0
        for seq in corpus.sequences():
            padded = [self.BOS] * self.depth + seq
            for t, token in enumerate(seq):
                position = t + self.depth
                context = tuple(padded[position - self.depth : position])
                total += float(np.log(self._conditional(context)[token]))
        return total

    def next_product_proba(self, history: list[int]) -> np.ndarray:
        clean = self._check_history(history)
        padded = [self.BOS] * self.depth + clean
        context = tuple(padded[len(padded) - self.depth :])
        return self._conditional(context)

    def heavy_hitters(
        self, *, min_conditional: float = 0.1
    ) -> list[tuple[tuple[int, ...], int, float]]:
        """All (context, item, conditional probability) CHH triples.

        A triple qualifies when its context is heavy (count >=
        ``min_context_count``) and the conditional probability reaches
        ``min_conditional``; sorted by conditional probability.
        """
        self._check_fitted()
        found = []
        for level in range(self.depth):
            for context, counter in self._counts[level].items():
                total = self._totals[level][context]
                if total < self.min_context_count:
                    continue
                for token, count in counter.items():
                    conditional = count / total
                    if conditional >= min_conditional:
                        found.append((context, token, conditional))
        found.sort(key=lambda x: (-x[2], x[0], x[1]))
        return found

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _get_state(self) -> dict[str, Any]:
        state = super()._get_state()
        state["depth"] = self.depth
        state["min_context_count"] = self.min_context_count
        state["smoothing"] = self.smoothing
        state["unigram"] = self._unigram
        for level in range(self.depth):
            rows = []
            for context, counter in self._counts[level].items():
                for token, count in counter.items():
                    rows.append(list(context) + [token, count])
            state[f"level_{level}"] = (
                np.array(rows, dtype=np.int64)
                if rows
                else np.empty((0, level + 3), dtype=np.int64)
            )
        return state

    def _set_state(self, state: dict[str, Any]) -> None:
        super()._set_state(state)
        self.depth = int(state["depth"])
        self.min_context_count = int(state["min_context_count"])
        self.smoothing = float(state["smoothing"])
        self._unigram = np.asarray(state["unigram"], dtype=np.float64)
        self._counts = []
        self._totals = []
        for level in range(self.depth):
            counts: dict[tuple[int, ...], Counter] = defaultdict(Counter)
            totals: dict[tuple[int, ...], int] = defaultdict(int)
            for row in np.asarray(state[f"level_{level}"]):
                context = tuple(int(v) for v in row[: level + 1])
                counts[context][int(row[-2])] = int(row[-1])
                totals[context] += int(row[-1])
            self._counts.append(dict(counts))
            self._totals.append(dict(totals))


class _SpaceSaving:
    """Classic SpaceSaving summary: top items of a stream in fixed space."""

    def __init__(self, capacity: int) -> None:
        self.capacity = check_positive_int(capacity, "capacity")
        self.counts: dict[int, int] = {}
        self.errors: dict[int, int] = {}
        self.total = 0

    def update(self, item: int) -> None:
        self.total += 1
        if item in self.counts:
            self.counts[item] += 1
            return
        if len(self.counts) < self.capacity:
            self.counts[item] = 1
            self.errors[item] = 0
            return
        victim = min(self.counts, key=lambda k: self.counts[k])
        floor = self.counts.pop(victim)
        self.errors.pop(victim)
        self.counts[item] = floor + 1
        self.errors[item] = floor

    def estimate(self, item: int) -> int:
        return self.counts.get(item, 0)


class StreamingCHH:
    """Bounded-memory approximate CHH over a product stream.

    Keeps a SpaceSaving summary of contexts and, for each retained context,
    a small SpaceSaving summary of successors — the "sparse" algorithm
    family from the CHH papers, adapted to install-base streams.  Intended
    for the real-time setting the paper's Section 1 motivates; accuracy
    versus the exact table is measured in an ablation benchmark.
    """

    def __init__(
        self,
        depth: int = 2,
        *,
        context_capacity: int = 512,
        successor_capacity: int = 16,
    ) -> None:
        self.depth = check_positive_int(depth, "depth")
        self.context_capacity = check_positive_int(context_capacity, "context_capacity")
        self.successor_capacity = check_positive_int(successor_capacity, "successor_capacity")
        self._contexts = _SpaceSaving(context_capacity)
        self._successors: dict[tuple[int, ...], _SpaceSaving] = {}
        self._context_ids: dict[tuple[int, ...], int] = {}
        self._n_seen = 0

    def update_sequence(self, sequence: list[int]) -> None:
        """Consume one company's product sequence."""
        check_non_negative_int(len(sequence), "sequence length")
        padded = [-1] * self.depth + list(sequence)
        for t in range(len(sequence)):
            position = t + self.depth
            token = padded[position]
            context = tuple(padded[position - self.depth : position])
            key = self._context_ids.setdefault(context, len(self._context_ids))
            self._contexts.update(key)
            summary = self._successors.get(context)
            if summary is None:
                if len(self._successors) >= self.context_capacity:
                    # Evict the context with the weakest estimated count.
                    weakest = min(
                        self._successors,
                        key=lambda c: self._contexts.estimate(self._context_ids[c]),
                    )
                    del self._successors[weakest]
                summary = _SpaceSaving(self.successor_capacity)
                self._successors[context] = summary
            summary.update(token)
            self._n_seen += 1

    def conditional(self, context: tuple[int, ...], vocab_size: int) -> np.ndarray:
        """Estimated conditional distribution of the next product.

        Backs off from the full-depth context through BOS-padded shorter
        suffixes (which only exist for sequence-start contexts); a context
        with no retained summary returns the uniform distribution.
        """
        check_positive_int(vocab_size, "vocab_size")
        for level in range(min(len(context), self.depth), 0, -1):
            sub = tuple([-1] * (self.depth - level) + list(context[len(context) - level :]))
            summary = self._successors.get(sub)
            if summary is not None and summary.total > 0:
                proba = np.zeros(vocab_size)
                for token, count in summary.counts.items():
                    if 0 <= token < vocab_size:
                        proba[token] = count
                if proba.sum() > 0:
                    return proba / proba.sum()
        return np.full(vocab_size, 1.0 / vocab_size)

    @property
    def n_seen(self) -> int:
        """Number of stream items consumed."""
        return self._n_seen
