"""Unigram 'bag of words' model — the weakest baseline in Table 1.

Products are modelled i.i.d. from the corpus-wide product frequency
distribution.  The paper reports perplexity 19.5 for this model on its
deployment; it is the reference everything else must beat.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro._validation import check_positive_float
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel

__all__ = ["UnigramModel"]


class UnigramModel(GenerativeModel):
    """Additively smoothed product frequency model.

    Parameters
    ----------
    smoothing:
        Additive (Laplace/Lidstone) pseudo-count per product, keeping
        held-out products with zero training frequency finite in log space.
    """

    name = "unigram"

    def __init__(self, *, smoothing: float = 0.5) -> None:
        super().__init__()
        self.smoothing = check_positive_float(smoothing, "smoothing")
        self._proba: np.ndarray | None = None

    def fit(self, corpus: Corpus) -> "UnigramModel":
        counts = corpus.binary_matrix().sum(axis=0)
        smoothed = counts + self.smoothing
        self._proba = smoothed / smoothed.sum()
        self._vocab_size = corpus.n_products
        return self

    @property
    def proba(self) -> np.ndarray:
        """The fitted product distribution."""
        self._check_fitted()
        assert self._proba is not None
        return self._proba

    def log_prob(self, corpus: Corpus) -> float:
        self._check_fitted()
        if corpus.n_products != self.vocab_size:
            raise ValueError(
                f"corpus has {corpus.n_products} products, model fitted on "
                f"{self.vocab_size}"
            )
        counts = corpus.binary_matrix().sum(axis=0)
        return float(counts @ np.log(self.proba))

    def next_product_proba(self, history: list[int]) -> np.ndarray:
        self._check_history(history)
        return self.proba.copy()

    def _get_state(self) -> dict[str, Any]:
        state = super()._get_state()
        state["smoothing"] = self.smoothing
        state["proba"] = self.proba
        return state

    def _set_state(self, state: dict[str, Any]) -> None:
        super()._set_state(state)
        self.smoothing = float(state["smoothing"])
        self._proba = np.asarray(state["proba"], dtype=np.float64)
