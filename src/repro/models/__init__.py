"""Generative models of company-product data.

All models implement the :class:`repro.models.base.GenerativeModel`
interface so the perplexity comparison (Table 1) and the sliding-window
recommendation harness (Figures 3-4) are model-agnostic:

* :class:`UnigramModel` — the 'bag of words' baseline;
* :class:`NGramModel` — bi-/tri-gram sequential association rules;
* :class:`LatentDirichletAllocation` — the paper's winning model;
* :class:`ConditionalHeavyHitters` — exact CHH recommender (depth <= 2);
* :class:`LSTMModel` — the sequence neural model (LSTM or GRU cells);
* :class:`BayesianPMF` — the matrix-factorization comparison;
* :class:`ProductSkipGram` — word2vec-style product embeddings (extension).
"""

from repro.models.base import GenerativeModel, NotFittedError
from repro.models.bpmf import BayesianPMF
from repro.models.chh import ConditionalHeavyHitters, StreamingCHH
from repro.models.embeddings import ProductSkipGram
from repro.models.fisher import FisherVectorEncoder
from repro.models.lda import LatentDirichletAllocation
from repro.models.lsi import LatentSemanticIndexing
from repro.models.lstm import LSTMModel
from repro.models.ngram import NGramModel
from repro.models.selection import select_lda_topics, select_lstm_architecture
from repro.models.unigram import UnigramModel

__all__ = [
    "GenerativeModel",
    "NotFittedError",
    "UnigramModel",
    "NGramModel",
    "LatentDirichletAllocation",
    "ConditionalHeavyHitters",
    "StreamingCHH",
    "LSTMModel",
    "BayesianPMF",
    "ProductSkipGram",
    "FisherVectorEncoder",
    "LatentSemanticIndexing",
    "select_lda_topics",
    "select_lstm_architecture",
]
