"""Latent Dirichlet Allocation — the paper's best-performing model.

Companies are documents, products are words (Section 3.3).  LDA learns a
``K x M`` topic-product matrix phi and per-company topic mixtures theta; the
mixtures are the company representations B_i used for clustering and
similarity search, and ``theta @ phi`` is the product distribution the
recommender thresholds.

Two inference back-ends are provided and cross-checked in the test suite:

* ``inference="gibbs"`` — collapsed Gibbs sampling (Griffiths & Steyvers),
  the reference implementation for binary inputs;
* ``inference="variational"`` — batch variational Bayes (Blei et al. 2003),
  which also accepts *fractional* counts and therefore supports the paper's
  TF-IDF input variant (Section 4.1 treats the input representation as an
  LDA parameter).

Held-out evaluation uses deterministic EM fold-in with phi held fixed, and
perplexity is computed on the actual (binary) products, matching the
paper's protocol of measuring "average perplexity per product ... on a test
set".  Two scoring modes are available:

* ``score_mode="completion"`` (default) — document completion: each product
  is scored under the mixture inferred from the company's *other* products.
  This is the honest held-out score; it penalises excess topics and
  produces the paper's U-shaped perplexity-vs-K curve (Figure 2).
* ``score_mode="fold_in"`` — the mixture is inferred from the full company
  (including the scored product), the cheaper protocol some libraries use.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro._validation import (
    as_rng,
    check_in_choices,
    check_matrix,
    check_positive_float,
    check_positive_int,
)
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel
from repro.preprocessing.tfidf import TfidfTransform

__all__ = ["LatentDirichletAllocation"]


class LatentDirichletAllocation(GenerativeModel):
    """LDA over company-product data.

    Parameters
    ----------
    n_topics:
        Number of latent topics K (the paper finds 2-4 best).
    alpha:
        Symmetric Dirichlet prior on company-topic mixtures; defaults to
        ``1 / n_topics``.  Pass the string ``"auto"`` (variational
        inference only) to learn the symmetric concentration by Newton
        updates during fitting, the way gensim's ``alpha='auto'`` does.
    beta:
        Symmetric Dirichlet prior on topic-product distributions.
    inference:
        ``"gibbs"`` or ``"variational"``.
    gibbs_sampler:
        ``"blocked"`` (default) vectorizes each sweep over fixed-size
        chunks of the shuffled token stream — same stationary behaviour,
        an order of magnitude faster in pure numpy; ``"token"`` is the
        classic one-token-at-a-time reference sweep.  The two samplers
        follow different chains for the same seed but agree on the fitted
        phi within the tolerance documented in the test suite.
    input_type:
        ``"binary"`` feeds the raw 0/1 matrix; ``"tfidf"`` feeds IDF-weighted
        fractional counts (variational inference only).
    n_iter:
        Gibbs sweeps or variational EM epochs.
    fold_in_iter:
        EM iterations when inferring mixtures for unseen companies.
    score_mode:
        Held-out scoring protocol: ``"completion"`` (leave-one-out, default)
        or ``"fold_in"``.
    seed:
        Randomness control for Gibbs initialisation and sampling.
    """

    name = "lda"

    def __init__(
        self,
        n_topics: int = 3,
        *,
        alpha: float | str | None = None,
        beta: float = 0.1,
        inference: str = "gibbs",
        gibbs_sampler: str = "blocked",
        input_type: str = "binary",
        n_iter: int = 150,
        fold_in_iter: int = 30,
        score_mode: str = "completion",
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__()
        self.n_topics = check_positive_int(n_topics, "n_topics")
        self.learn_alpha = alpha == "auto"
        if self.learn_alpha:
            if inference != "variational":
                raise ValueError("alpha='auto' requires inference='variational'")
            self.alpha = 1.0 / n_topics
        else:
            self.alpha = (
                check_positive_float(alpha, "alpha")
                if alpha is not None
                else 1.0 / n_topics
            )
        self.beta = check_positive_float(beta, "beta")
        self.inference = check_in_choices(inference, "inference", ("gibbs", "variational"))
        self.gibbs_sampler = check_in_choices(
            gibbs_sampler, "gibbs_sampler", ("blocked", "token")
        )
        self.input_type = check_in_choices(input_type, "input_type", ("binary", "tfidf"))
        if self.inference == "gibbs" and self.input_type == "tfidf":
            raise ValueError(
                "TF-IDF input requires fractional counts; use inference='variational'"
            )
        self.n_iter = check_positive_int(n_iter, "n_iter")
        self.fold_in_iter = check_positive_int(fold_in_iter, "fold_in_iter")
        self.score_mode = check_in_choices(
            score_mode, "score_mode", ("completion", "fold_in")
        )
        self._seed = seed
        self._phi: np.ndarray | None = None  # (K, M) topic-product
        self._train_theta: np.ndarray | None = None  # (D_train, K)
        self._tfidf: TfidfTransform | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, corpus: Corpus) -> "LatentDirichletAllocation":
        binary = corpus.binary_matrix()
        if self.input_type == "tfidf":
            self._tfidf = TfidfTransform(norm="l1")
            counts = self._tfidf.fit_transform(binary)
            # Scale each company back to its true product count so document
            # lengths (and hence the prior's pull) stay comparable to the
            # binary input.
            counts = counts * binary.sum(axis=1, keepdims=True)
        else:
            counts = binary
        if self.inference == "gibbs":
            self._fit_gibbs(binary)
        else:
            self._fit_variational(counts)
        self._vocab_size = corpus.n_products
        return self

    def fit_matrix(self, counts: np.ndarray) -> "LatentDirichletAllocation":
        """Fit directly on a non-negative count matrix (power-user entry).

        Gibbs inference requires integer-valued counts; variational accepts
        fractional ones.
        """
        matrix = check_matrix(counts, "counts")
        if np.any(matrix < 0):
            raise ValueError("counts must be non-negative")
        if self.inference == "gibbs":
            if not np.allclose(matrix, np.round(matrix)):
                raise ValueError("Gibbs inference requires integer counts")
            self._fit_gibbs(matrix)
        else:
            self._fit_variational(matrix)
        self._vocab_size = matrix.shape[1]
        return self

    def _token_streams(self, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Doc/word id streams: one entry per (doc, word) occurrence."""
        doc_ids: list[int] = []
        word_ids: list[int] = []
        for d in range(counts.shape[0]):
            for w in np.flatnonzero(counts[d]):
                doc_ids.extend([d] * int(round(counts[d, w])))
                word_ids.extend([w] * int(round(counts[d, w])))
        docs = np.array(doc_ids, dtype=np.int64)
        words = np.array(word_ids, dtype=np.int64)
        if len(docs) == 0:
            raise ValueError("corpus has no products")
        return docs, words

    def _finish_gibbs(
        self,
        phi_accumulator: np.ndarray,
        theta_accumulator: np.ndarray,
        n_saved: int,
    ) -> None:
        self._phi = phi_accumulator / n_saved
        self._phi /= self._phi.sum(axis=1, keepdims=True)
        self._train_theta = theta_accumulator / n_saved

    def _fit_gibbs(self, counts: np.ndarray) -> None:
        """Collapsed Gibbs sampling on integer count data."""
        if self.gibbs_sampler == "token":
            self._fit_gibbs_token(counts)
        else:
            self._fit_gibbs_blocked(counts)

    #: Tokens resampled per vectorized draw in the blocked Gibbs sampler.
    #: Within a chunk, tokens see the counts as of the chunk start (minus
    #: their own contribution); deltas are applied between chunks, so the
    #: staleness is bounded by this constant regardless of corpus size.
    GIBBS_CHUNK: int = 128

    def _fit_gibbs_blocked(self, counts: np.ndarray) -> None:
        """Chunked-block Gibbs: one vectorized draw per 128-token chunk.

        Each sweep shuffles the token stream (like the token sampler) and
        walks it in chunks of :attr:`GIBBS_CHUNK`.  All tokens of a chunk
        compute their conditionals from the current counts minus exactly
        their own contribution (the collapsed-Gibbs exclusion, vectorized
        as a one-hot subtraction), are resampled in a single cumsum +
        row-wise searchsorted pass, and the count deltas are applied before
        the next chunk.  This is the synchronous block update of
        distributed LDA samplers (AD-LDA style) with bounded staleness:
        tokens inside one chunk see each other's previous assignment
        instead of the fresh one, so the chain differs from the token
        sampler's for the same seed but mixes to the same posterior — the
        test suite bounds the resulting perplexity disagreement.
        """
        rng = as_rng(self._seed)
        n_docs, n_words = counts.shape
        k = self.n_topics
        docs, words = self._token_streams(counts)
        n_tokens = len(docs)

        z = rng.integers(k, size=n_tokens)
        n_dk = np.zeros((n_docs, k))
        n_kw = np.zeros((k, n_words))
        n_k = np.zeros(k)
        np.add.at(n_dk, (docs, z), 1.0)
        np.add.at(n_kw, (z, words), 1.0)
        np.add.at(n_k, z, 1.0)

        beta_mass = n_words * self.beta
        topic_eye = np.eye(k)

        burn_in = max(self.n_iter // 2, 1)
        phi_accumulator = np.zeros((k, n_words))
        theta_accumulator = np.zeros((n_docs, k))
        n_saved = 0
        order = np.arange(n_tokens)
        for sweep in range(self.n_iter):
            rng.shuffle(order)
            uniforms = rng.random(n_tokens)
            for start in range(0, n_tokens, self.GIBBS_CHUNK):
                chunk = order[start : start + self.GIBBS_CHUNK]
                chunk_docs = docs[chunk]
                chunk_words = words[chunk]
                old = z[chunk]
                # Each token excludes exactly its own contribution from the
                # three count statistics (one-hot on its current topic).
                own = topic_eye[old]  # (C, k)
                weights = (
                    (n_dk[chunk_docs] - own + self.alpha)
                    * (n_kw[:, chunk_words].T - own + self.beta)
                    / (n_k[None, :] - own + beta_mass)
                )
                cumulative = np.cumsum(weights, axis=1)
                targets = uniforms[chunk] * cumulative[:, -1]
                new = (cumulative < targets[:, None]).sum(axis=1)
                np.clip(new, 0, k - 1, out=new)
                z[chunk] = new
                np.add.at(n_dk, (chunk_docs, old), -1.0)
                np.add.at(n_dk, (chunk_docs, new), 1.0)
                np.add.at(n_kw, (old, chunk_words), -1.0)
                np.add.at(n_kw, (new, chunk_words), 1.0)
                n_k += np.bincount(new, minlength=k) - np.bincount(old, minlength=k)
            if sweep >= burn_in:
                phi_accumulator += (n_kw + self.beta) / (
                    (n_k + beta_mass)[:, None]
                )
                theta_accumulator += (n_dk + self.alpha) / (
                    n_dk.sum(axis=1, keepdims=True) + k * self.alpha
                )
                n_saved += 1
        self._finish_gibbs(phi_accumulator, theta_accumulator, n_saved)

    def _fit_gibbs_token(self, counts: np.ndarray) -> None:
        """Reference per-token sweep (the pre-vectorization implementation)."""
        rng = as_rng(self._seed)
        n_docs, n_words = counts.shape
        k = self.n_topics
        docs, words = self._token_streams(counts)
        n_tokens = len(docs)

        z = rng.integers(k, size=n_tokens)
        n_dk = np.zeros((n_docs, k))
        n_kw = np.zeros((k, n_words))
        n_k = np.zeros(k)
        np.add.at(n_dk, (docs, z), 1.0)
        np.add.at(n_kw, (z, words), 1.0)
        np.add.at(n_k, z, 1.0)

        burn_in = max(self.n_iter // 2, 1)
        phi_accumulator = np.zeros((k, n_words))
        theta_accumulator = np.zeros((n_docs, k))
        n_saved = 0
        order = np.arange(n_tokens)
        uniforms = np.empty(n_tokens)
        for sweep in range(self.n_iter):
            rng.shuffle(order)
            rng.random(out=uniforms)
            for position in order:
                d, w, old = docs[position], words[position], z[position]
                n_dk[d, old] -= 1.0
                n_kw[old, w] -= 1.0
                n_k[old] -= 1.0
                weights = (
                    (n_dk[d] + self.alpha)
                    * (n_kw[:, w] + self.beta)
                    / (n_k + n_words * self.beta)
                )
                cumulative = np.cumsum(weights)
                new = int(np.searchsorted(cumulative, uniforms[position] * cumulative[-1]))
                new = min(new, k - 1)
                z[position] = new
                n_dk[d, new] += 1.0
                n_kw[new, w] += 1.0
                n_k[new] += 1.0
            if sweep >= burn_in:
                phi_accumulator += (n_kw + self.beta) / (
                    (n_k + n_words * self.beta)[:, None]
                )
                theta_accumulator += (n_dk + self.alpha) / (
                    n_dk.sum(axis=1, keepdims=True) + k * self.alpha
                )
                n_saved += 1
        self._finish_gibbs(phi_accumulator, theta_accumulator, n_saved)

    def _fit_variational(self, counts: np.ndarray) -> None:
        """Batch variational Bayes on (possibly fractional) count data."""
        from scipy.special import digamma

        rng = as_rng(self._seed)
        n_docs, n_words = counts.shape
        k = self.n_topics
        lam = rng.gamma(100.0, 0.01, size=(k, n_words))  # topic-word variational
        gamma = np.ones((n_docs, k))
        for __ in range(self.n_iter):
            exp_log_beta = np.exp(
                digamma(lam) - digamma(lam.sum(axis=1, keepdims=True))
            )
            exp_log_theta = np.exp(
                digamma(gamma) - digamma(gamma.sum(axis=1, keepdims=True))
            )
            # phi_dwk ∝ exp_log_theta[d,k] * exp_log_beta[k,w]; we only need
            # the sufficient statistics, computed densely since M is small.
            # norm[d, w] = sum_k exp_log_theta[d,k] exp_log_beta[k,w]
            norm = exp_log_theta @ exp_log_beta + 1e-100
            weighted = counts / norm  # (D, W)
            gamma = self.alpha + exp_log_theta * (weighted @ exp_log_beta.T)
            lam = self.beta + exp_log_beta * (exp_log_theta.T @ weighted)
            if self.learn_alpha:
                self.alpha = self._update_alpha(gamma)
        self._phi = lam / lam.sum(axis=1, keepdims=True)
        self._train_theta = gamma / gamma.sum(axis=1, keepdims=True)

    def _update_alpha(self, gamma: np.ndarray) -> float:
        """One Newton step of the symmetric-Dirichlet MLE for alpha.

        Maximises ``log Gamma(K a) - K log Gamma(a) + (a - 1) sum_k
        logphat_k`` where ``logphat`` is the mean variational expectation of
        ``log theta`` (the gensim ``alpha='auto'`` procedure, restricted to
        a symmetric prior).
        """
        from scipy.special import digamma, polygamma

        k = self.n_topics
        log_theta = digamma(gamma) - digamma(gamma.sum(axis=1, keepdims=True))
        logphat_sum = float(log_theta.mean(axis=0).sum())
        alpha = self.alpha
        gradient = k * digamma(k * alpha) - k * digamma(alpha) + logphat_sum
        hessian = k * k * polygamma(1, k * alpha) - k * polygamma(1, alpha)
        if hessian >= 0.0:  # not concave here; keep the current value
            return alpha
        step = gradient / hessian
        updated = alpha - step
        if not np.isfinite(updated) or updated <= 1e-4:
            return alpha
        # Damp large jumps for stability across epochs.
        return float(np.clip(updated, alpha / 2.0, alpha * 2.0))

    # ------------------------------------------------------------------
    # Parameters and representations
    # ------------------------------------------------------------------
    @property
    def phi(self) -> np.ndarray:
        """Topic-product distributions, shape ``(n_topics, M)``."""
        self._check_fitted()
        assert self._phi is not None
        return self._phi

    @property
    def n_parameters(self) -> int:
        """The paper's LDA parameter count: ``nt + nt * M`` (Section 5)."""
        self._check_fitted()
        return self.n_topics + self.n_topics * self.vocab_size

    def product_embeddings(self) -> np.ndarray:
        """Per-product topic loadings p(topic | product), shape ``(M, K)``.

        These are the embeddings projected by t-SNE in Figures 8 and 9.
        """
        phi = self.phi
        posterior = phi / phi.sum(axis=0, keepdims=True)
        return posterior.T.copy()

    def infer_theta(self, counts: np.ndarray) -> np.ndarray:
        """EM fold-in of topic mixtures for unseen companies.

        ``counts`` is a ``(D, M)`` non-negative matrix; phi stays fixed.
        Deterministic given the fitted model.
        """
        matrix = check_matrix(counts, "counts")
        phi = self.phi
        if matrix.shape[1] != phi.shape[1]:
            raise ValueError(
                f"counts have {matrix.shape[1]} products, model fitted on {phi.shape[1]}"
            )
        n_docs = matrix.shape[0]
        theta = np.full((n_docs, self.n_topics), 1.0 / self.n_topics)
        lengths = matrix.sum(axis=1, keepdims=True)
        for __ in range(self.fold_in_iter):
            # responsibilities r[d, k] summed over words:
            # r_dwk ∝ theta[d,k] phi[k,w]
            mixture = theta @ phi + 1e-100  # (D, W)
            summed = (matrix / mixture) @ phi.T * theta  # (D, K)
            theta = (summed + self.alpha) / (lengths + self.n_topics * self.alpha)
        return theta

    def _representation_counts(self, binary: np.ndarray) -> np.ndarray:
        """Map a binary matrix into the model's input representation."""
        if self.input_type == "tfidf":
            assert self._tfidf is not None
            return self._tfidf.transform(binary) * binary.sum(axis=1, keepdims=True)
        return binary

    def company_features(self, corpus: Corpus) -> np.ndarray:
        """Topic mixtures of the corpus's companies — the B_i vectors."""
        binary = corpus.binary_matrix()
        return self.infer_theta(self._representation_counts(binary))

    # ------------------------------------------------------------------
    # Evaluation and recommendation
    # ------------------------------------------------------------------
    def log_prob(self, corpus: Corpus) -> float:
        self._check_fitted()
        if corpus.n_products != self.vocab_size:
            raise ValueError(
                f"corpus has {corpus.n_products} products, model fitted on "
                f"{self.vocab_size}"
            )
        binary = corpus.binary_matrix()
        if self.score_mode == "fold_in":
            counts = self._representation_counts(binary)
            theta = self.infer_theta(counts)
            mixture = theta @ self.phi + 1e-100
            return float((binary * np.log(mixture)).sum())
        return self._completion_log_prob(binary)

    def _completion_log_prob(self, binary: np.ndarray) -> float:
        """Leave-one-out scoring: each product under the rest of its company.

        For every owned product the company's mixture is re-inferred with
        that product removed, and the product is scored under the resulting
        ``theta @ phi``.  Companies owning a single product fall back to the
        prior mixture.
        """
        counts = self._representation_counts(binary)
        total = 0.0
        for d in range(binary.shape[0]):
            owned = np.flatnonzero(binary[d])
            if len(owned) == 0:
                continue
            variants = np.repeat(counts[d][None, :], len(owned), axis=0)
            variants[np.arange(len(owned)), owned] = 0.0
            theta = self.infer_theta(variants)
            probs = np.einsum("ik,ki->i", theta, self.phi[:, owned]) + 1e-100
            total += float(np.log(probs).sum())
        return total

    def next_product_proba(self, history: list[int]) -> np.ndarray:
        return self.batch_next_product_proba([history])[0]

    def batch_next_product_proba(self, histories: list[list[int]]) -> np.ndarray:
        """Batched recommender scores: one fold-in over all histories."""
        if not histories:
            self._check_fitted()
            return np.zeros((0, self.vocab_size), dtype=np.float64)
        counts = np.zeros((len(histories), self.vocab_size))
        for i, history in enumerate(histories):
            for token in self._check_history(history):
                counts[i, token] = 1.0
        theta = self.infer_theta(counts)
        return theta @ self.phi

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _get_state(self) -> dict[str, Any]:
        state = super()._get_state()
        state.update(
            n_topics=self.n_topics,
            alpha=self.alpha,
            learn_alpha=self.learn_alpha,
            beta=self.beta,
            inference=self.inference,
            gibbs_sampler=self.gibbs_sampler,
            input_type=self.input_type,
            n_iter=self.n_iter,
            fold_in_iter=self.fold_in_iter,
            score_mode=self.score_mode,
            phi=self.phi,
        )
        if self._tfidf is not None:
            state["idf"] = self._tfidf.idf
        return state

    def _set_state(self, state: dict[str, Any]) -> None:
        super()._set_state(state)
        self.n_topics = int(state["n_topics"])
        self.alpha = float(state["alpha"])
        self.learn_alpha = bool(state.get("learn_alpha", False))
        self.beta = float(state["beta"])
        self.inference = str(state["inference"])
        self.gibbs_sampler = str(state.get("gibbs_sampler", "blocked"))
        self.input_type = str(state["input_type"])
        self.n_iter = int(state["n_iter"])
        self.fold_in_iter = int(state["fold_in_iter"])
        self.score_mode = str(state["score_mode"])
        self._seed = 0
        self._phi = np.asarray(state["phi"], dtype=np.float64)
        self._train_theta = None
        self._tfidf = None
        if "idf" in state:
            transform = TfidfTransform(norm="l1")
            transform._idf = np.asarray(state["idf"], dtype=np.float64)
            self._tfidf = transform
