"""Fisher-vector aggregation of product embeddings into company vectors.

Section 3.4 of the paper sketches the word2vec route: learn product
embeddings, then aggregate them per company "using, for example, the
Fisher Kernel Framework (probabilistic modeling of the corpus of documents
using a mixture of Gaussians)" (Clinchant & Perronnin 2013).  This module
implements that route as the library's extension representation:

1. fit a diagonal GMM over all product embeddings;
2. represent each company by the gradient of its products' log-likelihood
   w.r.t. the GMM means and variances (the improved Fisher vector, with
   the usual power- and L2-normalisation).

The resulting ``2 * K * D`` company vectors slot straight into the
clustering / similarity machinery, giving a third representation family
next to raw/TF-IDF and LDA.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_matrix, check_positive_int
from repro.analysis.gmm import DiagonalGMM
from repro.data.corpus import Corpus
from repro.models.embeddings import ProductSkipGram

__all__ = ["FisherVectorEncoder"]


class FisherVectorEncoder:
    """Company representations via Fisher vectors over product embeddings.

    Parameters
    ----------
    n_components:
        GMM mixture size (K).
    embedding_dim:
        Skip-gram embedding dimensionality (D); ignored when a pre-fitted
        :class:`ProductSkipGram` is supplied to :meth:`fit`.
    n_epochs:
        Skip-gram training epochs when the encoder trains its own
        embeddings.
    improved:
        Apply the signed-square-root and L2 normalisation of the improved
        Fisher vector (recommended).
    seed:
        Randomness control.
    """

    def __init__(
        self,
        n_components: int = 4,
        *,
        embedding_dim: int = 16,
        n_epochs: int = 8,
        improved: bool = True,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.n_components = check_positive_int(n_components, "n_components")
        self.embedding_dim = check_positive_int(embedding_dim, "embedding_dim")
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        self.improved = bool(improved)
        self._seed = seed
        self._gmm: DiagonalGMM | None = None
        self._embeddings: np.ndarray | None = None  # (M, D)

    # ------------------------------------------------------------------
    def fit(
        self, corpus: Corpus, *, skipgram: ProductSkipGram | None = None
    ) -> "FisherVectorEncoder":
        """Learn (or accept) product embeddings, then fit the GMM over them."""
        if skipgram is None:
            skipgram = ProductSkipGram(
                dim=self.embedding_dim, n_epochs=self.n_epochs, seed=self._seed
            ).fit(corpus)
        embeddings = skipgram.product_embeddings
        if embeddings.shape[0] != corpus.n_products:
            raise ValueError("embeddings do not cover the corpus vocabulary")
        self._embeddings = np.asarray(embeddings, dtype=np.float64)
        self._gmm = DiagonalGMM(
            self.n_components, n_iter=50, seed=self._seed
        ).fit(self._embeddings)
        return self

    @property
    def dim(self) -> int:
        """Dimensionality of the company vectors: 2 * K * D."""
        if self._embeddings is None:
            raise RuntimeError("FisherVectorEncoder must be fitted first")
        return 2 * self.n_components * self._embeddings.shape[1]

    # ------------------------------------------------------------------
    def _fisher_vector(self, tokens: np.ndarray) -> np.ndarray:
        """Improved Fisher vector of one set of product tokens."""
        assert self._gmm is not None and self._embeddings is not None
        gmm = self._gmm
        points = self._embeddings[tokens]
        responsibilities = gmm.predict_proba(points)  # (n, K)
        assert gmm.means_ is not None and gmm.variances_ is not None
        assert gmm.weights_ is not None
        n = len(points)
        sigma = np.sqrt(gmm.variances_)  # (K, D)
        parts = []
        for k in range(gmm.n_components):
            gamma = responsibilities[:, k][:, None]  # (n, 1)
            normed = (points - gmm.means_[k]) / sigma[k]  # (n, D)
            grad_mu = (gamma * normed).sum(axis=0) / (
                n * np.sqrt(gmm.weights_[k]) + 1e-12
            )
            grad_sigma = (gamma * (normed**2 - 1.0)).sum(axis=0) / (
                n * np.sqrt(2.0 * gmm.weights_[k]) + 1e-12
            )
            parts.append(grad_mu)
            parts.append(grad_sigma)
        vector = np.concatenate(parts)
        if self.improved:
            vector = np.sign(vector) * np.sqrt(np.abs(vector))
            norm = np.linalg.norm(vector)
            if norm > 0.0:
                vector = vector / norm
        return vector

    def company_features(self, corpus: Corpus) -> np.ndarray:
        """Fisher vectors for every company in ``corpus``.

        Companies without products receive the zero vector.
        """
        if self._gmm is None or self._embeddings is None:
            raise RuntimeError("FisherVectorEncoder must be fitted first")
        if corpus.n_products != self._embeddings.shape[0]:
            raise ValueError("corpus vocabulary does not match the embeddings")
        binary = corpus.binary_matrix()
        features = np.zeros((corpus.n_companies, self.dim))
        for i in range(corpus.n_companies):
            tokens = np.flatnonzero(binary[i])
            if len(tokens) == 0:
                continue
            features[i] = self._fisher_vector(tokens)
        return features
