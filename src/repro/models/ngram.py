"""N-gram sequence models / sequential association rules.

The paper's second baseline treats the time-sorted product series A^S as
sentences and fits bi- and tri-gram models; it reports their perplexity as
"not lower than 15.5" (Section 5).  N-gram conditionals are exactly
sequential association rules of the corresponding depth, so the same object
doubles as the rule-based recommender.

Probabilities are Jelinek-Mercer interpolated down to the (additively
smoothed) unigram so that unseen contexts and products stay finite:

``p(a | h) = lam * ML(a | h) + (1 - lam) * p(a | shorter h)``

A beginning-of-sequence token conditions the first products of a company.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any

import numpy as np

from repro._validation import check_positive_float, check_positive_int, check_probability
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel

__all__ = ["NGramModel"]


class NGramModel(GenerativeModel):
    """Interpolated n-gram model over product sequences.

    Parameters
    ----------
    order:
        Context length + 1; ``order=2`` is the bigram, ``order=3`` the
        trigram.  ``order=1`` degenerates to a (sequence-aware) unigram.
    interpolation:
        Jelinek-Mercer weight ``lam`` on the maximum-likelihood estimate of
        each level; the remaining mass backs off to the next-shorter
        context.
    smoothing:
        Additive pseudo-count of the level-0 (unigram) distribution.
    """

    name = "ngram"

    #: Sentinel token id for the beginning of a sequence; stored in contexts
    #: only, never predicted.
    BOS = -1

    def __init__(
        self,
        order: int = 2,
        *,
        interpolation: float = 0.75,
        smoothing: float = 0.5,
    ) -> None:
        super().__init__()
        self.order = check_positive_int(order, "order")
        self.interpolation = check_probability(interpolation, "interpolation")
        self.smoothing = check_positive_float(smoothing, "smoothing")
        self._unigram: np.ndarray | None = None
        #: level -> {context tuple -> Counter of next tokens}
        self._counts: list[dict[tuple[int, ...], Counter]] = []
        #: level -> {context tuple -> total count}
        self._totals: list[dict[tuple[int, ...], int]] = []

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, corpus: Corpus) -> "NGramModel":
        sequences = corpus.sequences()
        vocab = corpus.n_products
        unigram_counts = np.full(vocab, self.smoothing)
        self._counts = [defaultdict(Counter) for __ in range(self.order - 1)]
        self._totals = [defaultdict(int) for __ in range(self.order - 1)]
        for seq in sequences:
            padded = [self.BOS] * (self.order - 1) + seq
            for t, token in enumerate(seq):
                unigram_counts[token] += 1.0
                position = t + self.order - 1
                for level in range(1, self.order):
                    context = tuple(padded[position - level : position])
                    self._counts[level - 1][context][token] += 1
                    self._totals[level - 1][context] += 1
        self._unigram = unigram_counts / unigram_counts.sum()
        # Freeze defaultdicts so lookups after fit never mutate state.
        self._counts = [dict(level) for level in self._counts]
        self._totals = [dict(level) for level in self._totals]
        self._vocab_size = vocab
        return self

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------
    def _conditional(self, context: tuple[int, ...]) -> np.ndarray:
        """Interpolated distribution over the next product given a context."""
        assert self._unigram is not None
        proba = self._unigram
        for level in range(1, self.order):
            sub_context = context[len(context) - level :]
            total = self._totals[level - 1].get(sub_context, 0)
            if total == 0:
                continue
            ml = np.zeros_like(proba)
            for token, count in self._counts[level - 1][sub_context].items():
                ml[token] = count / total
            proba = self.interpolation * ml + (1.0 - self.interpolation) * proba
        return proba

    def sequence_log_prob(self, sequence: list[int]) -> float:
        """Teacher-forced log-probability of one product sequence."""
        self._check_fitted()
        padded = [self.BOS] * (self.order - 1) + list(sequence)
        total = 0.0
        for t, token in enumerate(sequence):
            position = t + self.order - 1
            context = tuple(padded[position - (self.order - 1) : position])
            total += float(np.log(self._conditional(context)[token]))
        return total

    def log_prob(self, corpus: Corpus) -> float:
        self._check_fitted()
        if corpus.n_products != self.vocab_size:
            raise ValueError(
                f"corpus has {corpus.n_products} products, model fitted on "
                f"{self.vocab_size}"
            )
        return sum(self.sequence_log_prob(seq) for seq in corpus.sequences())

    def next_product_proba(self, history: list[int]) -> np.ndarray:
        clean = self._check_history(history)
        padded = [self.BOS] * (self.order - 1) + clean
        context = tuple(padded[len(padded) - (self.order - 1) :]) if self.order > 1 else ()
        return self._conditional(context)

    # ------------------------------------------------------------------
    # Association-rule view
    # ------------------------------------------------------------------
    def rules(self, *, min_count: int = 5, min_confidence: float = 0.1) -> list[tuple[tuple[int, ...], int, float, int]]:
        """Sequential association rules mined from the top-level counts.

        Returns ``(context, consequent, confidence, support_count)`` tuples
        sorted by confidence, for contexts of the model's full depth.
        """
        self._check_fitted()
        check_positive_int(min_count, "min_count")
        check_probability(min_confidence, "min_confidence")
        if self.order < 2:
            return []
        level = self.order - 2
        found = []
        for context, counter in self._counts[level].items():
            total = self._totals[level][context]
            if total < min_count:
                continue
            for token, count in counter.items():
                confidence = count / total
                if confidence >= min_confidence:
                    found.append((context, token, confidence, count))
        found.sort(key=lambda rule: (-rule[2], -rule[3], rule[0], rule[1]))
        return found

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _get_state(self) -> dict[str, Any]:
        state = super()._get_state()
        state["order"] = self.order
        state["interpolation"] = self.interpolation
        state["smoothing"] = self.smoothing
        state["unigram"] = self._unigram
        # Flatten count tables into parallel arrays per level.
        for level in range(self.order - 1):
            rows = []
            for context, counter in self._counts[level].items():
                for token, count in counter.items():
                    rows.append(list(context) + [token, count])
            state[f"level_{level}"] = (
                np.array(rows, dtype=np.int64)
                if rows
                else np.empty((0, level + 3), dtype=np.int64)
            )
        return state

    def _set_state(self, state: dict[str, Any]) -> None:
        super()._set_state(state)
        self.order = int(state["order"])
        self.interpolation = float(state["interpolation"])
        self.smoothing = float(state["smoothing"])
        self._unigram = np.asarray(state["unigram"], dtype=np.float64)
        self._counts = []
        self._totals = []
        for level in range(self.order - 1):
            counts: dict[tuple[int, ...], Counter] = defaultdict(Counter)
            totals: dict[tuple[int, ...], int] = defaultdict(int)
            for row in np.asarray(state[f"level_{level}"]):
                context = tuple(int(v) for v in row[: level + 1])
                token, count = int(row[-2]), int(row[-1])
                counts[context][token] = count
                totals[context] += count
            self._counts.append(dict(counts))
            self._totals.append(dict(totals))
