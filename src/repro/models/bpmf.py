"""Bayesian Probabilistic Matrix Factorization (Salakhutdinov & Mnih 2008).

The paper compares its hidden-layer models against BPMF (Section 5.2),
feeding it rankings derived from the binary install-base matrix ("if a
company has product x, its ranking is equal to 1").  Because that matrix is
dense and far from low-rank, BPMF degenerates: predicted scores pile up in
[0.9, 1.0] (Figure 5) and essentially every product is recommended at any
threshold below ~0.94 (Figure 6).  This implementation reproduces the model
family — Gibbs sampling with Normal-Wishart hyperpriors over user and item
factor distributions — so that the degeneracy can be demonstrated rather
than asserted.

The model consumes a rating triple list ``(row, col, value)``; the paper's
protocol of observing only the positive (owned) cells is the default when
fitting from a corpus.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.stats import wishart

from repro._validation import as_rng, check_positive_float, check_positive_int
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel

__all__ = ["BayesianPMF"]


class BayesianPMF(GenerativeModel):
    """Gibbs-sampled Bayesian PMF over company x product ratings.

    Parameters
    ----------
    n_factors:
        Latent dimensionality D of company and product factors.
    n_iter:
        Gibbs sweeps; the second half is averaged for prediction.
    beta0, nu_extra:
        Normal-Wishart hyperprior strength (precision scaling and extra
        degrees of freedom beyond the minimum D).
    rating_precision:
        Observation noise precision (alpha in the original paper).
    observe_negatives:
        When fitting from a corpus: include the 0-cells as observed ratings
        (the paper's protocol observes only the 1s; setting this True is the
        ablation showing how much the negatives change the scores).
    seed:
        Randomness control.
    """

    name = "bpmf"

    def __init__(
        self,
        n_factors: int = 8,
        *,
        n_iter: int = 60,
        beta0: float = 2.0,
        nu_extra: int = 1,
        rating_precision: float = 2.0,
        observe_negatives: bool = False,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__()
        self.n_factors = check_positive_int(n_factors, "n_factors")
        self.n_iter = check_positive_int(n_iter, "n_iter")
        self.beta0 = check_positive_float(beta0, "beta0")
        self.nu_extra = check_positive_int(nu_extra, "nu_extra")
        self.rating_precision = check_positive_float(rating_precision, "rating_precision")
        self.observe_negatives = bool(observe_negatives)
        self._seed = seed
        self._prediction: np.ndarray | None = None  # (N_train, M) posterior mean
        self._item_factors: np.ndarray | None = None  # (M, D) last-sample mean
        self._global_mean: float = 0.0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, corpus: Corpus) -> "BayesianPMF":
        binary = corpus.binary_matrix()
        rows, cols = np.nonzero(
            np.ones_like(binary) if self.observe_negatives else binary
        )
        values = binary[rows, cols]
        self.fit_ratings(rows, cols, values, shape=binary.shape)
        return self

    def fit_ratings(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        *,
        shape: tuple[int, int],
    ) -> "BayesianPMF":
        """Fit from an explicit rating triple list."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (len(rows) == len(cols) == len(values)):
            raise ValueError("rows, cols and values must have equal length")
        if len(rows) == 0:
            raise ValueError("at least one rating is required")
        n_rows, n_cols = shape
        if rows.max() >= n_rows or cols.max() >= n_cols:
            raise ValueError("rating indices exceed the declared shape")
        rng = as_rng(self._seed)
        d = self.n_factors
        mean = float(values.mean())
        centered = values - mean

        user = rng.normal(0.0, 0.1, size=(n_rows, d))
        item = rng.normal(0.0, 0.1, size=(n_cols, d))

        # Pre-index ratings by row and by column for the conditional draws.
        by_row: list[tuple[np.ndarray, np.ndarray]] = []
        order = np.argsort(rows, kind="stable")
        sorted_rows, row_starts = np.unique(rows[order], return_index=True)
        row_map: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        boundaries = list(row_starts) + [len(order)]
        for idx, r in enumerate(sorted_rows):
            sel = order[boundaries[idx] : boundaries[idx + 1]]
            row_map[int(r)] = (cols[sel], centered[sel])
        col_map: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        order_c = np.argsort(cols, kind="stable")
        sorted_cols, col_starts = np.unique(cols[order_c], return_index=True)
        boundaries_c = list(col_starts) + [len(order_c)]
        for idx, c in enumerate(sorted_cols):
            sel = order_c[boundaries_c[idx] : boundaries_c[idx + 1]]
            col_map[int(c)] = (rows[sel], centered[sel])

        prediction_sum = np.zeros((n_rows, n_cols))
        item_sum = np.zeros((n_cols, d))
        n_saved = 0
        burn_in = self.n_iter // 2
        for sweep in range(self.n_iter):
            user_hyper = self._sample_hyper(user, rng)
            item_hyper = self._sample_hyper(item, rng)
            user = self._sample_factors(user, item, row_map, user_hyper, rng)
            item = self._sample_factors(item, user, col_map, item_hyper, rng)
            if sweep >= burn_in:
                prediction_sum += user @ item.T + mean
                item_sum += item
                n_saved += 1
        self._prediction = np.clip(prediction_sum / n_saved, 0.0, 1.0)
        self._item_factors = item_sum / n_saved
        self._global_mean = mean
        self._vocab_size = n_cols
        return self

    def _sample_hyper(
        self, factors: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw (mu, Lambda) from the Normal-Wishart conditional."""
        n, d = factors.shape
        mean = factors.mean(axis=0)
        scatter = (factors - mean).T @ (factors - mean)
        beta_post = self.beta0 + n
        nu_post = d + self.nu_extra + n
        mu0 = np.zeros(d)
        scale_inv = (
            np.eye(d)
            + scatter
            + (self.beta0 * n / beta_post) * np.outer(mean - mu0, mean - mu0)
        )
        scale = np.linalg.inv(scale_inv)
        scale = (scale + scale.T) / 2.0
        precision = wishart.rvs(df=nu_post, scale=scale, random_state=rng)
        precision = np.atleast_2d(precision)
        mu_mean = (self.beta0 * mu0 + n * mean) / beta_post
        cov = np.linalg.inv(beta_post * precision)
        mu = rng.multivariate_normal(mu_mean, (cov + cov.T) / 2.0)
        return mu, precision

    def _sample_factors(
        self,
        factors: np.ndarray,
        other: np.ndarray,
        index: dict[int, tuple[np.ndarray, np.ndarray]],
        hyper: tuple[np.ndarray, np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw each factor row from its Gaussian conditional.

        The data-dependent contributions ``(alpha * V_i.T) @ V_i`` and
        ``(alpha * V_i.T) @ r_i`` are pre-assembled with one *stacked*
        matmul per distinct rating count instead of two small GEMMs per
        row.  Batched matmul over equal-shaped slices reproduces the
        per-row products bit-for-bit (each output slice is an independent
        GEMM), and the Gibbs draws stay in original row order, so the
        sampled chain is bit-identical to the historical per-row loop.
        """
        mu, precision = hyper
        alpha = self.rating_precision
        fresh = np.empty_like(factors)
        prior_term = precision @ mu
        n_rows = factors.shape[0]

        grams: list[np.ndarray | None] = [None] * n_rows
        rhs: list[np.ndarray | None] = [None] * n_rows
        by_count: dict[int, list[int]] = {}
        for i in range(n_rows):
            entry = index.get(i)
            if entry is not None:
                by_count.setdefault(len(entry[0]), []).append(i)
        for members in by_count.values():
            v_stack = np.stack([other[index[i][0]] for i in members])  # (g, k, d)
            r_stack = np.stack([index[i][1] for i in members])  # (g, k)
            # Replays the reference expression `alpha * v.T @ v`, which by
            # left associativity scales v.T before the product.
            scaled_t = alpha * v_stack.transpose(0, 2, 1)  # (g, d, k)
            gram_stack = np.matmul(scaled_t, v_stack)  # (g, d, d)
            rhs_stack = np.matmul(scaled_t, r_stack[..., None])[..., 0]  # (g, d)
            for pos, i in enumerate(members):
                grams[i] = gram_stack[pos]
                rhs[i] = rhs_stack[pos]

        # Rows with no observed ratings share one prior covariance; the
        # historical loop recomputed the same inverse for each of them.
        prior_cov: np.ndarray | None = None
        for i in range(n_rows):
            gram = grams[i]
            if gram is None:
                if prior_cov is None:
                    cov = np.linalg.inv(precision)
                    prior_cov = (cov + cov.T) / 2.0
                fresh[i] = rng.multivariate_normal(mu, prior_cov)
                continue
            post_precision = precision + gram
            post_cov = np.linalg.inv(post_precision)
            post_mean = post_cov @ (prior_term + rhs[i])
            fresh[i] = rng.multivariate_normal(post_mean, (post_cov + post_cov.T) / 2.0)
        return fresh

    # ------------------------------------------------------------------
    # Predictions
    # ------------------------------------------------------------------
    @property
    def prediction_matrix(self) -> np.ndarray:
        """Posterior-mean recommendation scores for the training companies."""
        self._check_fitted()
        assert self._prediction is not None
        return self._prediction

    def recommendation_scores(self) -> np.ndarray:
        """Flat view of all scores — the distribution boxed in Figure 5."""
        return self.prediction_matrix.ravel().copy()

    def log_prob(self, corpus: Corpus) -> float:
        """Bernoulli log-likelihood of held-out ownership under the scores.

        BPMF is not a generative product model, so Table 1 does not include
        it; this scoring exists for completeness and treats the clipped
        posterior mean as a Bernoulli parameter matched by item profile.
        """
        self._check_fitted()
        binary = corpus.binary_matrix()
        if binary.shape[1] != self.vocab_size:
            raise ValueError("product dimension mismatch")
        item_mean = np.clip(self.prediction_matrix.mean(axis=0), 1e-6, 1 - 1e-6)
        return float(
            (binary * np.log(item_mean) + (1 - binary) * np.log(1 - item_mean)).sum()
        )

    def next_product_proba(self, history: list[int]) -> np.ndarray:
        """Score products for a company described only by its history.

        A cold-start company is matched by averaging the posterior scores of
        the training rows; BPMF has no sequential component, so the history
        only serves input validation.  The point of the paper's Figure 5/6
        experiment is precisely that these scores are indiscriminate.
        """
        self._check_history(history)
        return self.prediction_matrix.mean(axis=0)

    def scores_for_company(self, binary_row: np.ndarray) -> np.ndarray:
        """Posterior scores for one company via ridge-projected factors."""
        self._check_fitted()
        assert self._item_factors is not None
        row = np.asarray(binary_row, dtype=np.float64).ravel()
        if row.shape[0] != self.vocab_size:
            raise ValueError("binary_row length must equal the product count")
        owned = np.flatnonzero(row)
        if len(owned) == 0:
            return self.prediction_matrix.mean(axis=0)
        v = self._item_factors[owned]
        gram = v.T @ v + 0.1 * np.eye(self.n_factors)
        user = np.linalg.solve(gram, v.T @ (row[owned] - self._global_mean))
        return np.clip(self._item_factors @ user + self._global_mean, 0.0, 1.0)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _get_state(self) -> dict[str, Any]:
        state = super()._get_state()
        state.update(
            n_factors=self.n_factors,
            n_iter=self.n_iter,
            beta0=self.beta0,
            nu_extra=self.nu_extra,
            rating_precision=self.rating_precision,
            observe_negatives=self.observe_negatives,
            global_mean=self._global_mean,
            prediction=self.prediction_matrix,
            item_factors=self._item_factors,
        )
        return state

    def _set_state(self, state: dict[str, Any]) -> None:
        super()._set_state(state)
        self.n_factors = int(state["n_factors"])
        self.n_iter = int(state["n_iter"])
        self.beta0 = float(state["beta0"])
        self.nu_extra = int(state["nu_extra"])
        self.rating_precision = float(state["rating_precision"])
        self.observe_negatives = bool(state["observe_negatives"])
        self._global_mean = float(state["global_mean"])
        self._prediction = np.asarray(state["prediction"], dtype=np.float64)
        self._item_factors = np.asarray(state["item_factors"], dtype=np.float64)
        self._seed = 0
