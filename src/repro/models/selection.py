"""Model-selection utilities: the paper's parameter-search procedures.

Section 4.1: "We select the parameters of LDA and LSTM by minimizing the
perplexity level of a model" on a validation split.  These helpers wrap
that procedure so applications do not re-implement the grids:

* :func:`select_lda_topics` — sweep the topic count (and optionally the
  input representation) and return the fitted winner;
* :func:`select_lstm_architecture` — sweep the (layers, nodes) grid of
  Figure 1 and return the fitted winner.

Both return ``(best_model, leaderboard)`` where the leaderboard lists every
candidate's validation perplexity for reporting.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.corpus import Corpus, CorpusSplit
from repro.models.lda import LatentDirichletAllocation
from repro.models.lstm import LSTMModel

__all__ = ["select_lda_topics", "select_lstm_architecture"]


def _validation_pair(data: Corpus | CorpusSplit) -> tuple[Corpus, Corpus]:
    """(train, validation) corpora from either a split or a raw corpus."""
    if isinstance(data, CorpusSplit):
        return data.train, data.validation
    if isinstance(data, Corpus):
        split = data.split((0.8, 0.2, 0.0), seed=0)
        return split.train, split.validation
    raise TypeError(f"expected Corpus or CorpusSplit, got {type(data).__name__}")


def select_lda_topics(
    data: Corpus | CorpusSplit,
    *,
    topic_grid: Sequence[int] = (2, 3, 4, 6, 8),
    input_types: Sequence[str] = ("binary",),
    n_iter: int = 80,
    seed: int = 0,
) -> tuple[LatentDirichletAllocation, list[dict[str, float | str]]]:
    """Pick the LDA configuration with the lowest validation perplexity."""
    if not topic_grid or not input_types:
        raise ValueError("topic_grid and input_types must be non-empty")
    train, validation = _validation_pair(data)
    leaderboard: list[dict[str, float | str]] = []
    best_model: LatentDirichletAllocation | None = None
    best_score = float("inf")
    for input_type in input_types:
        for n_topics in topic_grid:
            model = LatentDirichletAllocation(
                n_topics=n_topics,
                inference="variational",
                input_type=input_type,
                n_iter=n_iter,
                seed=seed,
            ).fit(train)
            score = model.perplexity(validation)
            leaderboard.append(
                {
                    "n_topics": float(n_topics),
                    "input": input_type,
                    "validation_perplexity": score,
                }
            )
            if score < best_score:
                best_score = score
                best_model = model
    leaderboard.sort(key=lambda row: row["validation_perplexity"])
    assert best_model is not None
    return best_model, leaderboard


def select_lstm_architecture(
    data: Corpus | CorpusSplit,
    *,
    layer_grid: Sequence[int] = (1, 2),
    node_grid: Sequence[int] = (50, 100, 200),
    n_epochs: int = 14,
    seed: int = 0,
) -> tuple[LSTMModel, list[dict[str, float]]]:
    """Pick the LSTM architecture with the lowest validation perplexity."""
    if not layer_grid or not node_grid:
        raise ValueError("layer_grid and node_grid must be non-empty")
    train, validation = _validation_pair(data)
    leaderboard: list[dict[str, float]] = []
    best_model: LSTMModel | None = None
    best_score = float("inf")
    for n_layers in layer_grid:
        for nodes in node_grid:
            model = LSTMModel(
                hidden=nodes,
                n_layers=n_layers,
                n_epochs=n_epochs,
                validation=validation,
                seed=seed,
            ).fit(train)
            score = model.perplexity(validation)
            leaderboard.append(
                {
                    "n_layers": float(n_layers),
                    "nodes": float(nodes),
                    "validation_perplexity": score,
                }
            )
            if score < best_score:
                best_score = score
                best_model = model
    leaderboard.sort(key=lambda row: row["validation_perplexity"])
    assert best_model is not None
    return best_model, leaderboard
