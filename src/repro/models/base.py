"""The model interface shared by every generative model in the library.

Section 4.1 of the paper evaluates all models with a single yardstick — the
average perplexity per product on a test set — and Section 4.3 turns any of
them into a recommender by thresholding the conditional probability of a
product given the company's history.  :class:`GenerativeModel` encodes that
contract:

* ``fit(corpus)`` — estimate parameters on a training corpus;
* ``log_prob(corpus)`` — total log-probability of the corpus's products
  (each model defines its own conditioning: marginal for the unigram,
  teacher-forced for sequence models, fold-in for LDA);
* ``perplexity(corpus)`` — ``exp(-log_prob / n_products)``, derived;
* ``next_product_proba(history)`` — length-M vector of conditional product
  probabilities given the time-ordered token history, the recommender
  input;
* ``company_features(corpus)`` — the learned representation B_i used for
  clustering and similarity search (models without a natural representation
  raise :class:`NotImplementedError`).

Models are also persistable: ``save(path)`` / ``load(path)`` round-trip the
fitted state through a single ``.npz`` file.
"""

from __future__ import annotations

import abc
import json
import zipfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.data.corpus import Corpus
from repro.obs.instrument import InstrumentedModel

__all__ = ["GenerativeModel", "NotFittedError", "mmap_npz_arrays"]


class NotFittedError(RuntimeError):
    """Raised when a model is used before :meth:`GenerativeModel.fit`."""


def mmap_npz_arrays(
    path: str | Path, mode: str = "r"
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Memory-map every array member of an uncompressed ``.npz`` in place.

    ``np.savez`` stores members with ``ZIP_STORED`` (no compression), so
    each embedded ``.npy`` payload sits contiguously in the archive and
    can be mapped read-only at its absolute offset — N processes loading
    the same artifact then share one page-cache copy of the weights
    instead of N heap copies.  Returns ``(meta, arrays)`` where ``meta``
    is the parsed ``__meta__`` JSON header and ``arrays`` maps member
    names to :class:`numpy.memmap` views.

    Raises :class:`ValueError` for compressed members, object dtypes, or
    a missing ``__meta__`` — callers fall back to the eager loader.
    """
    storage = Path(path)
    arrays: dict[str, np.ndarray] = {}
    meta: dict[str, Any] | None = None
    with zipfile.ZipFile(storage) as bundle:
        with open(storage, "rb") as raw:
            for info in bundle.infolist():
                name = info.filename
                name = name[:-4] if name.endswith(".npy") else name
                if name == "__meta__":
                    meta = json.loads(str(np.load(bundle.open(info.filename))))
                    continue
                if info.compress_type != zipfile.ZIP_STORED:
                    raise ValueError(
                        f"member {name!r} of {storage} is compressed; "
                        "only np.savez (stored) archives can be memory-mapped"
                    )
                # Local file header: 30 fixed bytes + name + extra field.
                # The central directory's sizes can differ from the local
                # header's extra length, so read it from the local record.
                raw.seek(info.header_offset)
                local = raw.read(30)
                if local[:4] != b"PK\x03\x04":
                    raise ValueError(f"bad local header for {name!r} in {storage}")
                name_len = int.from_bytes(local[26:28], "little")
                extra_len = int.from_bytes(local[28:30], "little")
                payload = info.header_offset + 30 + name_len + extra_len
                raw.seek(payload)
                version = np.lib.format.read_magic(raw)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
                else:
                    raise ValueError(f"unsupported .npy version {version} for {name!r}")
                if dtype.hasobject:
                    raise ValueError(f"member {name!r} has object dtype; cannot map")
                arrays[name] = np.memmap(
                    storage,
                    dtype=dtype,
                    mode=mode,
                    offset=raw.tell(),
                    shape=tuple(shape),
                    order="F" if fortran else "C",
                )
    if meta is None:
        raise ValueError(f"{storage} carries no __meta__ member")
    return meta, arrays


class GenerativeModel(InstrumentedModel, abc.ABC):
    """Abstract base for generative company-product models.

    Through :class:`~repro.obs.instrument.InstrumentedModel`, every
    concrete subclass's ``fit`` / ``log_prob`` / ``next_product_proba`` /
    ``batch_next_product_proba`` is wrapped in a ``model.<name>.<method>``
    span and call counter — active only while tracing is enabled.
    """

    #: Short display name used in benchmark tables.
    name: str = "model"

    #: Concrete subclasses by class name, populated automatically; the
    #: dispatch table of :meth:`load_any`.
    _registry: dict[str, type["GenerativeModel"]] = {}

    def __init__(self) -> None:
        self._vocab_size: int | None = None

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        GenerativeModel._registry[cls.__name__] = cls

    # ------------------------------------------------------------------
    # Core contract
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, corpus: Corpus) -> "GenerativeModel":
        """Estimate model parameters on a training corpus.

        Implementations must set ``self._vocab_size`` and return ``self``.
        """

    @abc.abstractmethod
    def log_prob(self, corpus: Corpus) -> float:
        """Total natural-log probability of all products in ``corpus``."""

    @abc.abstractmethod
    def next_product_proba(self, history: list[int]) -> np.ndarray:
        """Conditional probability of each product given a token history.

        ``history`` is the time-ordered list of products the company has
        acquired so far (possibly empty).  Returns a length-M vector of
        values in [0, 1].  Entries need not sum to one for models whose
        natural output is one probability per product (e.g. CHH backoff
        scores); the recommender only thresholds them.
        """

    # ------------------------------------------------------------------
    # Derived functionality
    # ------------------------------------------------------------------
    def batch_next_product_proba(self, histories: list[list[int]]) -> np.ndarray:
        """Vector form of :meth:`next_product_proba`, shape ``(n, M)``.

        The default loops; models with a cheaper batched path (LDA's batch
        fold-in, the LSTM's padded forward) override it.  The sliding-window
        evaluator calls this once per window per model.  An empty history
        list yields an empty ``(0, M)`` array so evaluation loops over
        empty windows need no special case.
        """
        if not histories:
            self._check_fitted()
            return np.zeros((0, self.vocab_size), dtype=np.float64)
        return np.vstack([self.next_product_proba(h) for h in histories])

    def perplexity(self, corpus: Corpus) -> float:
        """Average perplexity per product (Section 4.1's measure)."""
        n = corpus.total_products()
        if n == 0:
            raise ValueError("corpus has no products to evaluate")
        return float(np.exp(-self.log_prob(corpus) / n))

    def company_features(self, corpus: Corpus) -> np.ndarray:
        """Learned company representations B (shape ``(N, L)``).

        Models that do not produce a representation (pure count models)
        raise :class:`NotImplementedError`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not learn company representations"
        )

    @property
    def vocab_size(self) -> int:
        """Vocabulary size captured at fit time."""
        self._check_fitted()
        assert self._vocab_size is not None
        return self._vocab_size

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._vocab_size is not None

    def _check_fitted(self) -> None:
        if self._vocab_size is None:
            raise NotFittedError(f"{type(self).__name__} must be fitted first")

    def validate_history(self, history: list[int]) -> list[int]:
        """Validate a recommender history against the fitted vocabulary.

        Returns the history as plain ``int`` tokens.  Non-integer entries
        raise :class:`TypeError`; out-of-range tokens raise a
        :class:`ValueError` naming the vocabulary size — callers holding
        user-supplied histories (the serving layer, the recommender) get a
        clear rejection instead of an ``IndexError`` deep in numpy.
        """
        self._check_fitted()
        assert self._vocab_size is not None
        clean: list[int] = []
        for token in history:
            if isinstance(token, bool) or not isinstance(token, (int, np.integer)):
                raise TypeError(f"history contains non-integer token {token!r}")
            if not 0 <= int(token) < self._vocab_size:
                raise ValueError(
                    f"history token {token} outside vocabulary of size {self._vocab_size}"
                )
            clean.append(int(token))
        return clean

    def _check_history(self, history: list[int]) -> list[int]:
        """Internal alias of :meth:`validate_history` used by subclasses."""
        return self.validate_history(history)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _get_state(self) -> dict[str, Any]:
        """Serialisable state; subclasses extend the base dict.

        Values must be numpy arrays or JSON-encodable scalars/containers.
        """
        return {"vocab_size": self._vocab_size}

    def _set_state(self, state: dict[str, Any]) -> None:
        """Restore from :meth:`_get_state` output; subclasses extend."""
        self._vocab_size = (
            int(state["vocab_size"]) if state["vocab_size"] is not None else None
        )

    @staticmethod
    def _storage_path(path: str | Path) -> Path:
        """The on-disk ``.npz`` path for a user-supplied path.

        ``np.savez`` silently appends ``.npz`` to paths lacking it, which
        used to break ``save("model.bin")`` / ``load("model.bin")``
        round-trips; both endpoints normalise through this helper instead.
        """
        p = Path(path)
        return p if p.suffix == ".npz" else p.with_name(p.name + ".npz")

    def save(self, path: str | Path) -> None:
        """Persist the fitted model to a single ``.npz`` file.

        Paths without a ``.npz`` suffix have it appended (matching what
        ``np.savez`` writes), and :meth:`load` applies the same rule, so
        any path round-trips.
        """
        self._check_fitted()
        state = self._get_state()
        arrays = {k: v for k, v in state.items() if isinstance(v, np.ndarray)}
        scalars = {k: v for k, v in state.items() if not isinstance(v, np.ndarray)}
        meta = json.dumps({"class": type(self).__name__, "scalars": scalars})
        np.savez(self._storage_path(path), __meta__=np.array(meta), **arrays)

    @classmethod
    def load(cls, path: str | Path, *, mmap_mode: str | None = None) -> "GenerativeModel":
        """Load a model saved by :meth:`save`.

        Must be called on the concrete class that was saved; loading through
        the wrong class raises :class:`ValueError`.

        ``mmap_mode="r"`` maps the arrays read-only in place instead of
        copying them onto the heap (see :func:`mmap_npz_arrays`) — the
        serving path uses this so a fleet of workers shares one page-cache
        copy of the weights.  Scores and perplexities are bit-identical to
        the eager load; the arrays simply stay lazily mapped.
        """
        storage = cls._storage_path(path)
        if mmap_mode is not None:
            meta, arrays = mmap_npz_arrays(storage, mode=mmap_mode)
            if meta["class"] != cls.__name__:
                raise ValueError(
                    f"file contains a {meta['class']}, not a {cls.__name__}"
                )
            state: dict[str, Any] = dict(meta["scalars"])
            state.update(arrays)
        else:
            with np.load(storage, allow_pickle=False) as bundle:
                meta = json.loads(str(bundle["__meta__"]))
                if meta["class"] != cls.__name__:
                    raise ValueError(
                        f"file contains a {meta['class']}, not a {cls.__name__}"
                    )
                state = dict(meta["scalars"])
                for key in bundle.files:
                    if key != "__meta__":
                        state[key] = bundle[key]
        model = cls.__new__(cls)
        GenerativeModel.__init__(model)
        model._set_state(state)
        return model

    @staticmethod
    def load_any(
        path: str | Path, *, mmap_mode: str | None = None
    ) -> "GenerativeModel":
        """Load a saved model, dispatching on the class recorded in the file.

        The serving layer's hot-swap endpoint receives bare artifact paths;
        this reads the ``__meta__`` class name and delegates to the matching
        concrete subclass's :meth:`load`.  Unknown classes and unreadable
        or corrupted files raise :class:`ValueError`.  ``mmap_mode`` is
        forwarded to :meth:`load` for shared read-only weight mapping.
        """
        storage = GenerativeModel._storage_path(path)
        try:
            with np.load(storage, allow_pickle=False) as bundle:
                meta = json.loads(str(bundle["__meta__"]))
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise ValueError(f"cannot read model file {storage}: {exc}") from exc
        class_name = str(meta.get("class", ""))
        target = GenerativeModel._registry.get(class_name)
        if target is None:
            raise ValueError(
                f"file contains unknown model class {class_name!r}; known: "
                f"{sorted(GenerativeModel._registry)}"
            )
        return target.load(storage, mmap_mode=mmap_mode)
