"""Stacked recurrent language model over product sequences.

Mirrors the architecture of the paper's LSTM experiments (Section 5): an
embedding layer whose dimensionality equals the number of nodes per layer,
1-3 stacked LSTM (or GRU) layers, dropout on the non-recurrent connections
(the Zaremba et al. regularisation the paper cites), and a softmax output
over the product vocabulary.

A dedicated beginning-of-sequence token (id ``vocab_size``) conditions the
first prediction, so the model also yields a distribution over a company's
*first* product.

Two compute kernels are available.  ``kernel="fused"`` (the default) runs
each layer's whole truncated-BPTT window through the cell's fused
sequence kernels — one time-fused input-projection GEMM per layer and
direction, gate caches in preallocated contiguous workspaces reused across
minibatches.  ``kernel="reference"`` replays the original per-timestep
recurrence with list-of-dict caches; under float64 both kernels produce
bit-identical forward activations (see ``models/nn/cells.py``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro._validation import (
    as_rng,
    check_in_choices,
    check_positive_int,
    check_probability,
)
from repro.models.nn.cells import GRUCell, LSTMCell
from repro.models.nn.layers import Dense, Embedding
from repro.models.nn.workspace import Workspace

__all__ = ["RecurrentLM"]


class RecurrentLM:
    """Embedding -> stacked recurrent cells -> dropout -> softmax logits.

    Parameters
    ----------
    vocab_size:
        Number of real tokens (products); the BOS sentinel is added
        internally as id ``vocab_size``.
    hidden:
        Nodes per layer == embedding size (the paper ties them).
    n_layers:
        Number of stacked recurrent layers (the paper sweeps 1-3).
    cell:
        ``"lstm"`` (default) or ``"gru"``.
    dropout:
        Drop probability on non-recurrent connections during training.
    seed:
        Initialisation randomness.
    dtype:
        Parameter/activation dtype, ``"float64"`` (default, reference
        precision) or ``"float32"`` (the fast training dtype).
    kernel:
        ``"fused"`` (default) or ``"reference"`` — see the module docstring.
    """

    def __init__(
        self,
        vocab_size: int,
        hidden: int,
        n_layers: int = 1,
        *,
        cell: str = "lstm",
        dropout: float = 0.3,
        seed=None,
        dtype: str = "float64",
        kernel: str = "fused",
    ) -> None:
        check_positive_int(vocab_size, "vocab_size")
        check_positive_int(hidden, "hidden")
        check_positive_int(n_layers, "n_layers")
        check_in_choices(cell, "cell", ("lstm", "gru"))
        check_in_choices(str(dtype), "dtype", ("float32", "float64"))
        check_in_choices(kernel, "kernel", ("fused", "reference"))
        check_probability(dropout, "dropout")
        if dropout >= 1.0:
            raise ValueError("dropout must be < 1")
        rng = as_rng(seed)
        self.vocab_size = vocab_size
        self.hidden = hidden
        self.n_layers = n_layers
        self.cell_type = cell
        self.dropout = dropout
        self.dtype = np.dtype(str(dtype))
        self.kernel = kernel
        cell_cls = LSTMCell if cell == "lstm" else GRUCell
        self.embedding = Embedding(vocab_size + 1, hidden, seed=rng, dtype=self.dtype)
        self.cells = [
            cell_cls(hidden, hidden, seed=rng, dtype=self.dtype) for __ in range(n_layers)
        ]
        self.output = Dense(hidden, vocab_size, seed=rng, dtype=self.dtype)
        # One workspace per layer so stacked layers never alias buffers.
        self._workspaces = [Workspace() for __ in range(n_layers)]

    @property
    def bos_token(self) -> int:
        """Sentinel id prepended to every sequence."""
        return self.vocab_size

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    def params(self) -> dict[str, np.ndarray]:
        """All parameters in a flat, prefixed dict (live views)."""
        flat = {f"emb.{k}": v for k, v in self.embedding.params.items()}
        for i, cell in enumerate(self.cells):
            flat.update({f"l{i}.{k}": v for k, v in cell.params.items()})
        flat.update({f"out.{k}": v for k, v in self.output.params.items()})
        return flat

    def grads(self) -> dict[str, np.ndarray]:
        """All gradients, keyed identically to :meth:`params`."""
        flat = {f"emb.{k}": v for k, v in self.embedding.grads.items()}
        for i, cell in enumerate(self.cells):
            flat.update({f"l{i}.{k}": v for k, v in cell.grads.items()})
        flat.update({f"out.{k}": v for k, v in self.output.grads.items()})
        return flat

    def zero_grads(self) -> None:
        """Reset all accumulated gradients."""
        self.embedding.zero_grads()
        for cell in self.cells:
            cell.zero_grads()
        self.output.zero_grads()

    def n_parameters(self) -> int:
        """Total trainable parameter count."""
        return sum(int(np.prod(p.shape)) for p in self.params().values())

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def initial_states(self, batch: int) -> list[tuple[np.ndarray, ...]]:
        """Zero state for every layer, for a batch of the given size."""
        return [cell.initial_state(batch) for cell in self.cells]

    def forward(
        self,
        tokens: np.ndarray,
        *,
        train: bool = False,
        rng: np.random.Generator | None = None,
        states: list[tuple[np.ndarray, ...]] | None = None,
        validate: bool = False,
        project: bool = True,
    ) -> tuple[np.ndarray | None, dict[str, Any]]:
        """Run the network over a padded batch.

        ``tokens`` is ``(batch, time)`` of token ids (pad positions must
        hold a valid id, e.g. the BOS sentinel; masking happens in the
        loss).  ``states`` optionally carries per-layer recurrent state from
        a previous window (truncated-BPTT streaming); gradients do not flow
        into carried state.  ``validate=True`` range-checks the token ids
        (otherwise the embedding lookup is a pure gather).  Returns
        ``(logits, cache)`` with logits ``(batch, time, vocab_size)``; the
        final per-layer states are in ``cache["final_states"]``.

        ``project=False`` skips the output projection and returns ``None``
        logits — callers that only need hidden states (company embeddings,
        last-position scoring) avoid a ``time x vocab`` GEMM per batch and
        can project just the rows they gather from ``cache["dense_input"]``.
        """
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be 2-D, got shape {tokens.shape}")
        if train and self.dropout > 0.0 and rng is None:
            raise ValueError("training with dropout requires an rng")
        batch, time = tokens.shape
        if states is None:
            states = self.initial_states(batch)
        if len(states) != self.n_layers:
            raise ValueError(f"expected {self.n_layers} layer states, got {len(states)}")
        x = self.embedding.forward(tokens, validate=validate)
        fused = self.kernel == "fused"
        cache: dict[str, Any] = {
            "tokens": tokens,
            "kernel": self.kernel,
            "layer_inputs": [],
            "step_caches": [],
            "dropout_masks": [],
            "final_states": [],
        }
        h = x
        for layer, (cell, state) in enumerate(zip(self.cells, states)):
            mask = self._dropout_mask(h.shape, train, rng)
            if mask is not None:
                h = h * mask
            cache["dropout_masks"].append(mask)
            cache["layer_inputs"].append(h)
            if fused:
                outputs, state, seq_cache = cell.forward_sequence(
                    h, state, self._workspaces[layer]
                )
                cache["step_caches"].append(seq_cache)
            else:
                outputs = np.empty((batch, time, self.hidden), dtype=self.dtype)
                steps = []
                for t in range(time):
                    out, state, step_cache = cell.step(h[:, t], state)
                    outputs[:, t] = out
                    steps.append(step_cache)
                cache["step_caches"].append(steps)
            cache["final_states"].append(state)
            h = outputs
        out_mask = self._dropout_mask(h.shape, train, rng)
        if out_mask is not None:
            h = h * out_mask
        cache["out_mask"] = out_mask
        cache["dense_input"] = h
        logits = self.output.forward(h) if project else None
        return logits, cache

    def _dropout_mask(
        self, shape: tuple[int, ...], train: bool, rng: np.random.Generator | None
    ) -> np.ndarray | None:
        if not train or self.dropout <= 0.0:
            return None
        assert rng is not None
        keep = 1.0 - self.dropout
        # The float64 draw happens regardless of dtype so the rng stream is
        # shared by both precisions; the mask is cast before scaling.
        return (rng.random(shape) < keep).astype(self.dtype) / keep

    def backward(self, dlogits: np.ndarray, cache: dict[str, Any]) -> None:
        """Accumulate gradients for a forward pass (call after zero_grads)."""
        dh = self.output.backward(cache["dense_input"], dlogits)
        if cache["out_mask"] is not None:
            dh = dh * cache["out_mask"]
        batch, time = cache["tokens"].shape
        fused = cache["kernel"] == "fused"
        for layer in reversed(range(self.n_layers)):
            cell = self.cells[layer]
            if fused:
                zero = cell.initial_state(batch)
                dinput, __ = cell.backward_sequence(
                    dh, zero, cache["step_caches"][layer], self._workspaces[layer]
                )
            else:
                steps = cache["step_caches"][layer]
                dinput = np.empty((batch, time, self.hidden), dtype=self.dtype)
                dstate = tuple(
                    np.zeros((batch, self.hidden), dtype=self.dtype)
                    for __ in cell.initial_state(batch)
                )
                for t in reversed(range(time)):
                    dx, dstate = cell.backward_step(dh[:, t], dstate, steps[t])
                    dinput[:, t] = dx
            mask = cache["dropout_masks"][layer]
            if mask is not None:
                dinput = dinput * mask
            dh = dinput
        self.embedding.backward(cache["tokens"], dh)

    # ------------------------------------------------------------------
    # Inference helpers
    # ------------------------------------------------------------------
    def final_hidden(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Top-layer hidden state at each sequence's last real position.

        These are the company embeddings the paper's RNN representation
        uses.  ``lengths`` counts real tokens per row (>= 1).
        """
        if np.any(lengths < 1) or np.any(lengths > tokens.shape[1]):
            raise ValueError("lengths must be in [1, time]")
        __, cache = self.forward(tokens, train=False, project=False)
        # In eval mode dense_input is the (pre-softmax) top-layer output,
        # so a single gather picks each row's last real hidden state.
        batch = tokens.shape[0]
        return cache["dense_input"][np.arange(batch), np.asarray(lengths) - 1].copy()
