"""Optimisers and gradient clipping for the numpy networks.

Parameters are referenced through ``(params, grads)`` dict pairs gathered
from all layers; each optimiser keeps per-slot state keyed by the slot name
supplied at registration.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_positive_float

__all__ = ["clip_gradients", "SGD", "Adam"]


def clip_gradients(grads: dict[str, np.ndarray], max_norm: float) -> float:
    """Scale all gradients in place so the global L2 norm <= ``max_norm``.

    Returns the pre-clip global norm (useful for monitoring).
    """
    check_positive_float(max_norm, "max_norm")
    total = 0.0
    for grad in grads.values():
        if grad.dtype == np.float64:
            # Historical computation, kept bit-for-bit for float64 runs.
            total += float((grad**2).sum(dtype=np.float64))
        else:
            # Single-pass BLAS dot: no grad**2 temporary.  The clip decision
            # tolerates float32 accumulation error on the squared norm.
            total += float(np.vdot(grad, grad))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        # Python-float scalar keeps the in-place multiply dtype-preserving.
        scale = max_norm / (norm + 1e-12)
        for grad in grads.values():
            grad *= scale
    return norm


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, lr: float = 0.1, *, momentum: float = 0.0) -> None:
        self.lr = check_positive_float(lr, "lr")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def update(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """Apply one update step in place."""
        for key, param in params.items():
            grad = grads[key]
            if self.momentum > 0.0:
                # Optimiser state mirrors the parameter dtype; all updates
                # are in-place with Python-float scalars so float32 params
                # never round-trip through float64.
                velocity = self._velocity.setdefault(key, np.zeros_like(param))
                velocity *= self.momentum
                velocity -= self.lr * grad
                param += velocity
            else:
                # Scale the gradient in place instead of allocating lr*grad;
                # callers zero grads before the next accumulation, so the
                # mutation is safe, and lr*grad followed by the subtraction
                # is elementwise identical to `param -= self.lr * grad`.
                grad *= self.lr
                param -= grad


class Adam:
    """Adam optimiser (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        lr: float = 0.002,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.lr = check_positive_float(lr, "lr")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = check_positive_float(eps, "eps")
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def update(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """Apply one Adam step in place."""
        self._t += 1
        correct1 = 1.0 - self.beta1**self._t
        correct2 = 1.0 - self.beta2**self._t
        for key, param in params.items():
            grad = grads[key]
            # Moments are allocated with np.zeros_like so they inherit the
            # parameter dtype; every op below is dtype-preserving.
            m = self._m.setdefault(key, np.zeros_like(param))
            v = self._v.setdefault(key, np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / correct1
            v_hat = v / correct2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
