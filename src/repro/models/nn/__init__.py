"""Minimal neural-network substrate for the sequence models.

The paper trains its LSTMs with TensorFlow; this package is the from-scratch
numpy equivalent: embedding and dense layers, LSTM and GRU cells with
hand-derived backward passes, masked softmax cross-entropy, Adam/SGD
optimisers, and a stacked recurrent language model that ties them together.
Gradient correctness is enforced by finite-difference tests in the suite.
"""

from repro.models.nn.cells import GRUCell, LSTMCell
from repro.models.nn.layers import Dense, Embedding
from repro.models.nn.losses import masked_softmax_cross_entropy, softmax
from repro.models.nn.network import RecurrentLM
from repro.models.nn.optim import SGD, Adam, clip_gradients

__all__ = [
    "LSTMCell",
    "GRUCell",
    "Embedding",
    "Dense",
    "softmax",
    "masked_softmax_cross_entropy",
    "RecurrentLM",
    "Adam",
    "SGD",
    "clip_gradients",
]
