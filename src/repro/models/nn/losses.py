"""Masked softmax cross-entropy for sequence prediction."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "masked_softmax_cross_entropy"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def masked_softmax_cross_entropy(
    logits: np.ndarray,
    targets: np.ndarray,
    mask: np.ndarray,
) -> tuple[float, np.ndarray]:
    """Mean NLL over unmasked positions, plus the logits gradient.

    Parameters
    ----------
    logits:
        ``(batch, time, vocab)`` unnormalised scores.
    targets:
        ``(batch, time)`` integer target ids; values at masked positions are
        ignored (and may be any valid id).
    mask:
        ``(batch, time)`` boolean; True marks real (scored) positions.

    Returns
    -------
    (loss, dlogits):
        ``loss`` is the mean negative log-likelihood per unmasked token;
        ``dlogits`` is the gradient of that mean w.r.t. ``logits`` (zero at
        masked positions).
    """
    if logits.ndim != 3:
        raise ValueError(f"logits must be 3-D, got shape {logits.shape}")
    if targets.shape != logits.shape[:2] or mask.shape != logits.shape[:2]:
        raise ValueError(
            f"targets/mask shape {targets.shape}/{mask.shape} does not match "
            f"logits {logits.shape[:2]}"
        )
    n_tokens = int(mask.sum())
    if n_tokens == 0:
        raise ValueError("mask selects no tokens")
    probs = softmax(logits)
    batch, time = targets.shape
    rows = np.repeat(np.arange(batch), time)
    cols = np.tile(np.arange(time), batch)
    # Use a safe target everywhere; masked entries are zeroed afterwards.
    safe_targets = np.where(mask, targets, 0)
    picked = probs[rows, cols, safe_targets.reshape(-1)].reshape(batch, time)
    # Guard log(0) with the smallest normal of the working dtype (1e-300
    # underflows to zero in float32, which would defeat the guard there).
    tiny = 1e-300 if picked.dtype == np.float64 else float(np.finfo(picked.dtype).tiny)
    log_likelihood = np.where(mask, np.log(picked + tiny), 0.0)
    loss = float(-log_likelihood.sum() / n_tokens)

    dlogits = probs.copy()
    one_hot_rows = dlogits.reshape(-1, logits.shape[2])
    one_hot_rows[np.arange(batch * time), safe_targets.reshape(-1)] -= 1.0
    dlogits *= (mask[..., None] / n_tokens)
    return loss, dlogits
