"""Embedding and dense layers with explicit backward passes.

Every layer follows the same convention: parameters live in a dict of numpy
arrays (``layer.params``), gradients accumulate into a same-shaped dict
(``layer.grads``), ``forward`` returns outputs plus whatever cache backward
needs, and ``zero_grads`` resets accumulation between minibatches.

Parameters are drawn in float64 and rounded to the layer's ``dtype`` so the
float64 path reproduces the historical initialisation bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_rng, check_positive_int

__all__ = ["Embedding", "Dense"]


class Embedding:
    """Token-id -> vector lookup table.

    Parameters
    ----------
    vocab_size:
        Number of distinct token ids (including any sentinel tokens).
    dim:
        Embedding dimensionality.
    seed:
        Initialisation randomness; weights start at ``N(0, 0.1)``.
    dtype:
        Parameter and activation dtype (default float64).
    """

    def __init__(self, vocab_size: int, dim: int, *, seed=None, dtype=np.float64) -> None:
        check_positive_int(vocab_size, "vocab_size")
        check_positive_int(dim, "dim")
        rng = as_rng(seed)
        self.vocab_size = vocab_size
        self.dim = dim
        self.dtype = np.dtype(dtype)
        self.params = {
            "W": rng.normal(0.0, 0.1, size=(vocab_size, dim)).astype(self.dtype, copy=False)
        }
        self.grads = {"W": np.zeros_like(self.params["W"])}

    def forward(self, tokens: np.ndarray, *, validate: bool = False) -> np.ndarray:
        """Look up ``tokens`` (any shape of ids) -> embeddings ``(*, dim)``.

        Padded positions must be filled with a *valid* id (conventionally
        the sentinel); the loss mask keeps them out of the gradient.

        ``validate=True`` range-checks the whole id array before the
        gather.  It is opt-in because the scan costs a full pass over the
        ids on every call, and the trainers validate token ranges once at
        the corpus boundary; steady-state lookups are pure gathers.
        """
        if validate and (
            tokens.min(initial=0) < 0 or tokens.max(initial=0) >= self.vocab_size
        ):
            raise ValueError(
                f"token ids must lie in [0, {self.vocab_size}), got range "
                f"[{tokens.min()}, {tokens.max()}]"
            )
        return self.params["W"][tokens]

    # Above this vocab size the one-hot indicator matrix used by the GEMM
    # scatter stops being negligible and np.add.at wins on memory.
    _GEMM_SCATTER_MAX_VOCAB = 2048

    def backward(self, tokens: np.ndarray, grad_output: np.ndarray) -> None:
        """Scatter-add ``grad_output`` into the embedding gradient.

        For float32 and a small vocabulary the scatter is expressed as an
        indicator-matrix GEMM (``S.T @ grad``), which is an order of
        magnitude faster than ``np.add.at``'s per-element buffered loop.
        The GEMM sums duplicate-token contributions in a different order
        than sequential scatter-add, so the float64 path keeps the
        historical scatter to stay bit-identical to the reference
        implementation.
        """
        flat_tokens = tokens.reshape(-1)
        flat_grad = grad_output.reshape(-1, self.dim)
        if (
            flat_grad.dtype != np.float64
            and self.vocab_size <= self._GEMM_SCATTER_MAX_VOCAB
        ):
            onehot = np.zeros((flat_tokens.shape[0], self.vocab_size), dtype=flat_grad.dtype)
            onehot[np.arange(flat_tokens.shape[0]), flat_tokens] = 1.0
            self.grads["W"] += onehot.T @ flat_grad
        else:
            np.add.at(self.grads["W"], flat_tokens, flat_grad)

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        self.grads["W"].fill(0.0)


class Dense:
    """Affine projection ``y = x W + b``."""

    def __init__(self, in_dim: int, out_dim: int, *, seed=None, dtype=np.float64) -> None:
        check_positive_int(in_dim, "in_dim")
        check_positive_int(out_dim, "out_dim")
        rng = as_rng(seed)
        scale = 1.0 / np.sqrt(in_dim)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.dtype = np.dtype(dtype)
        self.params = {
            "W": rng.uniform(-scale, scale, size=(in_dim, out_dim)).astype(
                self.dtype, copy=False
            ),
            "b": np.zeros(out_dim, dtype=self.dtype),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Project the last axis of ``x`` from ``in_dim`` to ``out_dim``.

        Leading axes are flattened so the projection is one GEMM rather
        than a batched loop over ``x``'s outer dimensions.
        """
        if x.shape[-1] != self.in_dim:
            raise ValueError(f"expected last dim {self.in_dim}, got {x.shape[-1]}")
        flat = np.ascontiguousarray(x).reshape(-1, self.in_dim)
        out = flat @ self.params["W"] + self.params["b"]
        return out.reshape(x.shape[:-1] + (self.out_dim,))

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. ``x``."""
        flat_x = x.reshape(-1, self.in_dim)
        flat_g = grad_output.reshape(-1, self.out_dim)
        self.grads["W"] += flat_x.T @ flat_g
        self.grads["b"] += flat_g.sum(axis=0)
        return (flat_g @ self.params["W"].T).reshape(x.shape)

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for grad in self.grads.values():
            grad.fill(0.0)
