"""Embedding and dense layers with explicit backward passes.

Every layer follows the same convention: parameters live in a dict of numpy
arrays (``layer.params``), gradients accumulate into a same-shaped dict
(``layer.grads``), ``forward`` returns outputs plus whatever cache backward
needs, and ``zero_grads`` resets accumulation between minibatches.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_rng, check_positive_int

__all__ = ["Embedding", "Dense"]


class Embedding:
    """Token-id -> vector lookup table.

    Parameters
    ----------
    vocab_size:
        Number of distinct token ids (including any sentinel tokens).
    dim:
        Embedding dimensionality.
    seed:
        Initialisation randomness; weights start at ``N(0, 0.1)``.
    """

    def __init__(self, vocab_size: int, dim: int, *, seed=None) -> None:
        check_positive_int(vocab_size, "vocab_size")
        check_positive_int(dim, "dim")
        rng = as_rng(seed)
        self.vocab_size = vocab_size
        self.dim = dim
        self.params = {"W": rng.normal(0.0, 0.1, size=(vocab_size, dim))}
        self.grads = {"W": np.zeros_like(self.params["W"])}

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """Look up ``tokens`` (any shape of ids) -> embeddings ``(*, dim)``.

        Padded positions must be filled with a *valid* id (conventionally
        the sentinel); the loss mask keeps them out of the gradient.
        """
        if tokens.min(initial=0) < 0 or tokens.max(initial=0) >= self.vocab_size:
            raise ValueError(
                f"token ids must lie in [0, {self.vocab_size}), got range "
                f"[{tokens.min()}, {tokens.max()}]"
            )
        return self.params["W"][tokens]

    def backward(self, tokens: np.ndarray, grad_output: np.ndarray) -> None:
        """Scatter-add ``grad_output`` into the embedding gradient."""
        np.add.at(self.grads["W"], tokens.reshape(-1), grad_output.reshape(-1, self.dim))

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        self.grads["W"].fill(0.0)


class Dense:
    """Affine projection ``y = x W + b``."""

    def __init__(self, in_dim: int, out_dim: int, *, seed=None) -> None:
        check_positive_int(in_dim, "in_dim")
        check_positive_int(out_dim, "out_dim")
        rng = as_rng(seed)
        scale = 1.0 / np.sqrt(in_dim)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.params = {
            "W": rng.uniform(-scale, scale, size=(in_dim, out_dim)),
            "b": np.zeros(out_dim),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Project the last axis of ``x`` from ``in_dim`` to ``out_dim``."""
        if x.shape[-1] != self.in_dim:
            raise ValueError(f"expected last dim {self.in_dim}, got {x.shape[-1]}")
        return x @ self.params["W"] + self.params["b"]

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. ``x``."""
        flat_x = x.reshape(-1, self.in_dim)
        flat_g = grad_output.reshape(-1, self.out_dim)
        self.grads["W"] += flat_x.T @ flat_g
        self.grads["b"] += flat_g.sum(axis=0)
        return (flat_g @ self.params["W"].T).reshape(x.shape)

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for grad in self.grads.values():
            grad.fill(0.0)
