"""Recurrent cells (LSTM and GRU) with hand-derived backward passes.

Both cells expose two equivalent compute paths:

* ``step`` / ``backward_step`` — the per-timestep *reference* recurrence:
  ``step`` maps ``(x, state)`` to ``(h, state, cache)`` and
  ``backward_step`` consumes the upstream gradients plus the cache,
  accumulates parameter gradients, and returns the gradients flowing to
  the input and the previous state.
* ``forward_sequence`` / ``backward_sequence`` — the *fused* kernels used
  by the trainer.  The input projection ``X @ Wx`` for a whole truncated-
  BPTT window is a single ``(batch * time, in_dim) @ (in_dim, G * hidden)``
  GEMM per layer (and likewise ``dZ @ Wx.T`` and the weight gradients on
  the way back), leaving only the unavoidable ``h_prev @ Wh`` recurrence
  inside the step loop.  All gate activations live in preallocated
  contiguous ``(batch, time, hidden)`` workspace buffers — zero per-step
  allocation.

Under ``float64`` the fused forward pass is **bit-identical** to the
reference recurrence: GEMM rows are independent of the other rows in the
matrix, every elementwise kernel replays the reference expression's
operation order, and for the LSTM the bias is deliberately *not* folded
into the fused projection so the reference's ``(x@Wx + h@Wh) + b``
addition order is preserved (the GRU reference computes ``x@Wx + b``
first, so there the bias is folded).  Only the fused weight-gradient
GEMMs differ from per-step accumulation, at the reordering level of
floating-point summation (~1e-11 relative).

Weight layout follows the fused convention: a single input matrix ``Wx``
of shape ``(in_dim, G * hidden)`` and a recurrent matrix ``Wh`` of shape
``(hidden, G * hidden)``, with ``G = 4`` gates for the LSTM (input, forget,
candidate, output) and ``G = 3`` for the GRU (reset, update, candidate).
The LSTM forget-gate bias is initialised to 1, the standard trick for
gradient flow early in training.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro._validation import as_rng, check_positive_int
from repro.models.nn.workspace import Workspace

__all__ = ["LSTMCell", "GRUCell"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Clip to keep exp() finite; sigmoid saturates far before +-40 anyway.
    return 1.0 / (1.0 + np.exp(-np.clip(x, -40.0, 40.0)))


def _sigmoid_into(x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[:] = sigmoid(x)`` replaying :func:`_sigmoid`'s exact op order.

    The clamp is spelled as min/max ufuncs — value-identical to ``np.clip``
    but without its Python dispatch overhead, which is measurable at one
    call per gate per timestep.
    """
    np.minimum(x, 40.0, out=out)
    np.maximum(out, -40.0, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    out += 1.0
    np.divide(1.0, out, out=out)
    return out


def _init_params(rng, in_dim: int, hidden: int, n_gates: int, bias, dtype):
    """Draw the fused weight matrices.

    Draws always happen in float64 so the float64 path is bit-identical to
    the historical initialisation; float32 parameters are the rounded copy.
    """
    scale = 1.0 / np.sqrt(hidden)
    return {
        "Wx": rng.uniform(-scale, scale, size=(in_dim, n_gates * hidden)).astype(
            dtype, copy=False
        ),
        "Wh": rng.uniform(-scale, scale, size=(hidden, n_gates * hidden)).astype(
            dtype, copy=False
        ),
        "b": bias.astype(dtype, copy=False),
    }


class LSTMCell:
    """Long Short-Term Memory cell (Hochreiter & Schmidhuber).

    State is the pair ``(h, c)``; gate order inside the fused matrices is
    input, forget, candidate, output.
    """

    N_GATES = 4

    def __init__(self, in_dim: int, hidden: int, *, seed=None, dtype=np.float64) -> None:
        check_positive_int(in_dim, "in_dim")
        check_positive_int(hidden, "hidden")
        rng = as_rng(seed)
        self.in_dim = in_dim
        self.hidden = hidden
        self.dtype = np.dtype(dtype)
        bias = np.zeros(self.N_GATES * hidden)
        bias[hidden : 2 * hidden] = 1.0  # forget-gate bias
        self.params = _init_params(rng, in_dim, hidden, self.N_GATES, bias, self.dtype)
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}

    def initial_state(self, batch: int) -> tuple[np.ndarray, np.ndarray]:
        """Zero hidden and cell state for a batch."""
        return (
            np.zeros((batch, self.hidden), dtype=self.dtype),
            np.zeros((batch, self.hidden), dtype=self.dtype),
        )

    # ------------------------------------------------------------------
    # Reference per-timestep path
    # ------------------------------------------------------------------
    def step(
        self, x: np.ndarray, state: tuple[np.ndarray, np.ndarray]
    ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray], dict[str, Any]]:
        """One timestep: returns ``(h, (h, c), cache)``."""
        h_prev, c_prev = state
        hid = self.hidden
        z = x @ self.params["Wx"] + h_prev @ self.params["Wh"] + self.params["b"]
        i = _sigmoid(z[:, :hid])
        f = _sigmoid(z[:, hid : 2 * hid])
        g = np.tanh(z[:, 2 * hid : 3 * hid])
        o = _sigmoid(z[:, 3 * hid :])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        cache = {
            "x": x,
            "h_prev": h_prev,
            "c_prev": c_prev,
            "i": i,
            "f": f,
            "g": g,
            "o": o,
            "tanh_c": tanh_c,
        }
        return h, (h, c), cache

    def backward_step(
        self,
        dh: np.ndarray,
        dstate: tuple[np.ndarray, np.ndarray],
        cache: dict[str, Any],
    ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        """Backward through one timestep.

        ``dh`` is the gradient arriving at the step's output; ``dstate`` is
        ``(dh_next, dc_next)`` flowing back from the following timestep
        (``dh_next`` is added to ``dh`` by the caller's convention of
        keeping them separate, so pass zeros when not applicable).
        Returns ``(dx, (dh_prev, dc_prev))``.
        """
        dh_next, dc_next = dstate
        i, f, g, o = cache["i"], cache["f"], cache["g"], cache["o"]
        tanh_c = cache["tanh_c"]
        total_dh = dh + dh_next
        do = total_dh * tanh_c
        dc = dc_next + total_dh * o * (1.0 - tanh_c**2)
        df = dc * cache["c_prev"]
        dc_prev = dc * f
        di = dc * g
        dg = dc * i
        dz = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g**2),
                do * o * (1.0 - o),
            ],
            axis=1,
        )
        self.grads["Wx"] += cache["x"].T @ dz
        self.grads["Wh"] += cache["h_prev"].T @ dz
        self.grads["b"] += dz.sum(axis=0)
        dx = dz @ self.params["Wx"].T
        dh_prev = dz @ self.params["Wh"].T
        return dx, (dh_prev, dc_prev)

    # ------------------------------------------------------------------
    # Fused whole-window path
    # ------------------------------------------------------------------
    def forward_sequence(
        self,
        x: np.ndarray,
        state: tuple[np.ndarray, np.ndarray],
        ws: Workspace | None = None,
    ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray], dict[str, Any]]:
        """Run a whole ``(batch, time, in_dim)`` window through the cell.

        Returns ``(outputs, final_state, cache)`` where ``outputs`` is the
        ``(batch, time, hidden)`` stack of hidden states.  ``outputs`` and
        the cache arrays live in ``ws`` and are overwritten by the next
        call; ``final_state`` is copied out and safe to carry across
        windows.
        """
        if ws is None:
            ws = Workspace()
        batch, time, _ = x.shape
        hid = self.hidden
        dt = self.dtype
        Wx, Wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]

        # Initial state may alias last window's output buffers: copy first.
        h_prev = ws.get("h0", (batch, hid), dt)
        c_prev = ws.get("c0", (batch, hid), dt)
        np.copyto(h_prev, state[0])
        np.copyto(c_prev, state[1])

        # One GEMM for every timestep's input projection.  The bias is NOT
        # folded in: the reference computes (x@Wx + h@Wh) + b and float64
        # bit-equality requires the same addition order.
        zx = ws.get("zx", (batch, time, self.N_GATES * hid), dt)
        np.matmul(x.reshape(batch * time, -1), Wx, out=zx.reshape(batch * time, -1))

        gi = ws.get("gate_i", (batch, time, hid), dt)
        gf = ws.get("gate_f", (batch, time, hid), dt)
        gg = ws.get("gate_g", (batch, time, hid), dt)
        go = ws.get("gate_o", (batch, time, hid), dt)
        tanh_c = ws.get("tanh_c", (batch, time, hid), dt)
        cells = ws.get("c", (batch, time, hid), dt)
        outputs = ws.get("h", (batch, time, hid), dt)
        z = ws.get("z", (batch, self.N_GATES * hid), dt)
        tmp = ws.get("tmp", (batch, hid), dt)

        # float32 fast path: the skinny recurrent GEMM runs noticeably
        # faster with a contiguous transposed weight matrix producing a
        # transposed output.  Reordering BLAS accumulation is off-limits
        # for float64, where bit-equality with the reference is promised.
        # The transpose is reused by backward_sequence (same params).
        transposed_rec = dt == np.float32
        if transposed_rec:
            wh_t = ws.get("wh_t", (self.N_GATES * hid, hid), dt)
            np.copyto(wh_t, Wh.T)
            z_t = ws.get("z_t", (self.N_GATES * hid, batch), dt)

        for t in range(time):
            if transposed_rec:
                np.matmul(wh_t, h_prev.T, out=z_t)
                np.add(zx[:, t], z_t.T, out=z)
            else:
                np.matmul(h_prev, Wh, out=z)
                np.add(zx[:, t], z, out=z)
            z += b
            i = _sigmoid_into(z[:, :hid], gi[:, t])
            f = _sigmoid_into(z[:, hid : 2 * hid], gf[:, t])
            g = np.tanh(z[:, 2 * hid : 3 * hid], out=gg[:, t])
            o = _sigmoid_into(z[:, 3 * hid :], go[:, t])
            c = cells[:, t]
            np.multiply(f, c_prev, out=c)
            np.multiply(i, g, out=tmp)
            c += tmp  # c = f*c_prev + i*g, reference order
            tc = np.tanh(c, out=tanh_c[:, t])
            h = np.multiply(o, tc, out=outputs[:, t])
            h_prev, c_prev = h, c

        cache = {
            "x": x,
            "h0": ws.get("h0", (batch, hid), dt),
            "c0": ws.get("c0", (batch, hid), dt),
            "i": gi,
            "f": gf,
            "g": gg,
            "o": go,
            "tanh_c": tanh_c,
            "c": cells,
            "h": outputs,
        }
        final = (outputs[:, time - 1].copy(), cells[:, time - 1].copy())
        return outputs, final, cache

    def backward_sequence(
        self,
        dh: np.ndarray,
        dstate: tuple[np.ndarray, np.ndarray],
        cache: dict[str, Any],
        ws: Workspace | None = None,
    ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        """Backward through a whole window; mirrors :meth:`forward_sequence`.

        ``dh`` is ``(batch, time, hidden)``; ``dstate`` is the gradient
        flowing back from after the window (zeros for truncated BPTT).
        Parameter gradients accumulate as three fused GEMMs.  Returns
        ``(dx, (dh_prev, dc_prev))``; both live in workspace buffers.
        """
        if ws is None:
            ws = Workspace()
        x = cache["x"]
        batch, time, _ = x.shape
        hid = self.hidden
        dt = self.dtype
        Wx, Wh = self.params["Wx"], self.params["Wh"]
        gi, gf, gg, go = cache["i"], cache["f"], cache["g"], cache["o"]
        tanh_c, cells = cache["tanh_c"], cache["c"]

        dz_seq = ws.get("dz_seq", (batch, time, self.N_GATES * hid), dt)
        dh_next = ws.get("dh_next", (batch, hid), dt)
        dc_next = ws.get("dc_next", (batch, hid), dt)
        np.copyto(dh_next, dstate[0])
        np.copyto(dc_next, dstate[1])
        # One contiguous transpose up front makes the per-step dz @ Wh.T
        # GEMM measurably faster than handing BLAS the transposed view.
        # The float32 forward already built it for this parameter state
        # (the cache ties this call to that forward), so skip the copy.
        wh_t = ws.get("wh_t", (self.N_GATES * hid, hid), dt)
        if dt != np.float32:
            np.copyto(wh_t, Wh.T)
        total = ws.get("btotal", (batch, hid), dt)
        dc = ws.get("bdc", (batch, hid), dt)
        tmp = ws.get("btmp", (batch, hid), dt)
        tmp2 = ws.get("btmp2", (batch, hid), dt)

        for t in reversed(range(time)):
            i, f, g, o = gi[:, t], gf[:, t], gg[:, t], go[:, t]
            tc = tanh_c[:, t]
            c_prev = cells[:, t - 1] if t > 0 else cache["c0"]
            dz = dz_seq[:, t]
            dzi, dzf = dz[:, :hid], dz[:, hid : 2 * hid]
            dzg, dzo = dz[:, 2 * hid : 3 * hid], dz[:, 3 * hid :]

            np.add(dh[:, t], dh_next, out=total)
            # dc = dc_next + total*o*(1 - tanh_c^2)
            np.multiply(tc, tc, out=tmp)
            np.subtract(1.0, tmp, out=tmp)
            np.multiply(total, o, out=dc)
            dc *= tmp
            dc += dc_next
            # do*o*(1-o)
            np.multiply(total, tc, out=tmp)  # do
            np.multiply(tmp, o, out=tmp)
            np.subtract(1.0, o, out=tmp2)
            np.multiply(tmp, tmp2, out=dzo)
            # di*i*(1-i) with di = dc*g
            np.multiply(dc, g, out=tmp)
            np.multiply(tmp, i, out=tmp)
            np.subtract(1.0, i, out=tmp2)
            np.multiply(tmp, tmp2, out=dzi)
            # df*f*(1-f) with df = dc*c_prev
            np.multiply(dc, c_prev, out=tmp)
            np.multiply(tmp, f, out=tmp)
            np.subtract(1.0, f, out=tmp2)
            np.multiply(tmp, tmp2, out=dzf)
            # dg*(1-g^2) with dg = dc*i
            np.multiply(g, g, out=tmp2)
            np.subtract(1.0, tmp2, out=tmp2)
            np.multiply(dc, i, out=tmp)
            np.multiply(tmp, tmp2, out=dzg)

            np.matmul(dz, wh_t, out=dh_next)
            np.multiply(dc, f, out=dc_next)

        dz_flat = dz_seq.reshape(batch * time, -1)
        x_flat = x.reshape(batch * time, -1)
        # Previous-h stack: [h0, h_0..h_{T-2}] for the fused Wh gradient.
        h_prev_seq = ws.get("h_prev_seq", (batch, time, hid), dt)
        h_prev_seq[:, 0] = cache["h0"]
        h_prev_seq[:, 1:] = cache["h"][:, :-1]

        gwx = ws.get("gwx", self.params["Wx"].shape, dt)
        gwh = ws.get("gwh", self.params["Wh"].shape, dt)
        np.matmul(x_flat.T, dz_flat, out=gwx)
        np.matmul(h_prev_seq.reshape(batch * time, -1).T, dz_flat, out=gwh)
        self.grads["Wx"] += gwx
        self.grads["Wh"] += gwh
        self.grads["b"] += dz_flat.sum(axis=0)

        dx = ws.get("dx", x.shape, dt)
        np.matmul(dz_flat, Wx.T, out=dx.reshape(batch * time, -1))
        return dx, (dh_next, dc_next)

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for grad in self.grads.values():
            grad.fill(0.0)


class GRUCell:
    """Gated Recurrent Unit cell (Cho et al.), the LSTM's lighter sibling.

    State is ``(h,)``; gate order is reset, update, candidate.  Included for
    the paper's related-work comparison (Section 3.4 cites the GRU-vs-LSTM
    study) and benchmarked in the GRU ablation.
    """

    N_GATES = 3

    def __init__(self, in_dim: int, hidden: int, *, seed=None, dtype=np.float64) -> None:
        check_positive_int(in_dim, "in_dim")
        check_positive_int(hidden, "hidden")
        rng = as_rng(seed)
        self.in_dim = in_dim
        self.hidden = hidden
        self.dtype = np.dtype(dtype)
        bias = np.zeros(self.N_GATES * hidden)
        self.params = _init_params(rng, in_dim, hidden, self.N_GATES, bias, self.dtype)
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}

    def initial_state(self, batch: int) -> tuple[np.ndarray]:
        """Zero hidden state for a batch."""
        return (np.zeros((batch, self.hidden), dtype=self.dtype),)

    # ------------------------------------------------------------------
    # Reference per-timestep path
    # ------------------------------------------------------------------
    def step(
        self, x: np.ndarray, state: tuple[np.ndarray]
    ) -> tuple[np.ndarray, tuple[np.ndarray], dict[str, Any]]:
        """One timestep: returns ``(h, (h,), cache)``."""
        (h_prev,) = state
        hid = self.hidden
        zx = x @ self.params["Wx"] + self.params["b"]
        zh = h_prev @ self.params["Wh"]
        r = _sigmoid(zx[:, :hid] + zh[:, :hid])
        u = _sigmoid(zx[:, hid : 2 * hid] + zh[:, hid : 2 * hid])
        n = np.tanh(zx[:, 2 * hid :] + r * zh[:, 2 * hid :])
        h = u * h_prev + (1.0 - u) * n
        cache = {"x": x, "h_prev": h_prev, "r": r, "u": u, "n": n, "zh_n": zh[:, 2 * hid :]}
        return h, (h,), cache

    def backward_step(
        self,
        dh: np.ndarray,
        dstate: tuple[np.ndarray],
        cache: dict[str, Any],
    ) -> tuple[np.ndarray, tuple[np.ndarray]]:
        """Backward through one timestep; returns ``(dx, (dh_prev,))``."""
        (dh_next,) = dstate
        r, u, n = cache["r"], cache["u"], cache["n"]
        h_prev, zh_n = cache["h_prev"], cache["zh_n"]
        total_dh = dh + dh_next
        du = total_dh * (h_prev - n)
        dn = total_dh * (1.0 - u)
        dh_prev = total_dh * u
        dzn = dn * (1.0 - n**2)  # pre-activation of candidate
        dr = dzn * zh_n
        dzr = dr * r * (1.0 - r)
        dzu = du * u * (1.0 - u)
        dzx = np.concatenate([dzr, dzu, dzn], axis=1)
        dzh = np.concatenate([dzr, dzu, dzn * r], axis=1)
        self.grads["Wx"] += cache["x"].T @ dzx
        self.grads["Wh"] += h_prev.T @ dzh
        self.grads["b"] += dzx.sum(axis=0)
        dx = dzx @ self.params["Wx"].T
        dh_prev = dh_prev + dzh @ self.params["Wh"].T
        return dx, (dh_prev,)

    # ------------------------------------------------------------------
    # Fused whole-window path
    # ------------------------------------------------------------------
    def forward_sequence(
        self,
        x: np.ndarray,
        state: tuple[np.ndarray],
        ws: Workspace | None = None,
    ) -> tuple[np.ndarray, tuple[np.ndarray], dict[str, Any]]:
        """Whole-window forward; see :meth:`LSTMCell.forward_sequence`."""
        if ws is None:
            ws = Workspace()
        batch, time, _ = x.shape
        hid = self.hidden
        dt = self.dtype
        Wx, Wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]

        h_prev = ws.get("h0", (batch, hid), dt)
        np.copyto(h_prev, state[0])

        # The GRU reference computes zx = (x@Wx) + b before mixing in the
        # recurrent term, so folding the bias into the fused projection
        # preserves its addition order exactly.
        zx = ws.get("zx", (batch, time, self.N_GATES * hid), dt)
        np.matmul(x.reshape(batch * time, -1), Wx, out=zx.reshape(batch * time, -1))
        zx += b

        gr = ws.get("gate_r", (batch, time, hid), dt)
        gu = ws.get("gate_u", (batch, time, hid), dt)
        gn = ws.get("gate_n", (batch, time, hid), dt)
        zh_n = ws.get("zh_n", (batch, time, hid), dt)
        outputs = ws.get("h", (batch, time, hid), dt)
        zh = ws.get("zh", (batch, self.N_GATES * hid), dt)
        tmp = ws.get("tmp", (batch, hid), dt)

        # float32 transposed-recurrence fast path; see LSTMCell.
        transposed_rec = dt == np.float32
        if transposed_rec:
            wh_t = ws.get("wh_t", (self.N_GATES * hid, hid), dt)
            np.copyto(wh_t, Wh.T)
            zh_t = ws.get("zh_t", (self.N_GATES * hid, batch), dt)

        for t in range(time):
            if transposed_rec:
                np.matmul(wh_t, h_prev.T, out=zh_t)
                np.copyto(zh, zh_t.T)
            else:
                np.matmul(h_prev, Wh, out=zh)
            r = gr[:, t]
            np.add(zx[:, t, :hid], zh[:, :hid], out=r)
            _sigmoid_into(r, r)
            u = gu[:, t]
            np.add(zx[:, t, hid : 2 * hid], zh[:, hid : 2 * hid], out=u)
            _sigmoid_into(u, u)
            np.copyto(zh_n[:, t], zh[:, 2 * hid :])
            n = gn[:, t]
            np.multiply(r, zh_n[:, t], out=tmp)
            np.add(zx[:, t, 2 * hid :], tmp, out=n)
            np.tanh(n, out=n)
            h = outputs[:, t]
            np.multiply(u, h_prev, out=h)
            np.subtract(1.0, u, out=tmp)
            tmp *= n
            h += tmp  # h = u*h_prev + (1-u)*n, reference order
            h_prev = h

        cache = {
            "x": x,
            "h0": ws.get("h0", (batch, hid), dt),
            "r": gr,
            "u": gu,
            "n": gn,
            "zh_n": zh_n,
            "h": outputs,
        }
        return outputs, (outputs[:, time - 1].copy(),), cache

    def backward_sequence(
        self,
        dh: np.ndarray,
        dstate: tuple[np.ndarray],
        cache: dict[str, Any],
        ws: Workspace | None = None,
    ) -> tuple[np.ndarray, tuple[np.ndarray]]:
        """Whole-window backward; see :meth:`LSTMCell.backward_sequence`."""
        if ws is None:
            ws = Workspace()
        x = cache["x"]
        batch, time, _ = x.shape
        hid = self.hidden
        dt = self.dtype
        Wx, Wh = self.params["Wx"], self.params["Wh"]
        gr, gu, gn, zh_n = cache["r"], cache["u"], cache["n"], cache["zh_n"]

        dzx_seq = ws.get("dzx_seq", (batch, time, self.N_GATES * hid), dt)
        dzh_seq = ws.get("dzh_seq", (batch, time, self.N_GATES * hid), dt)
        dh_next = ws.get("dh_next", (batch, hid), dt)
        np.copyto(dh_next, dstate[0])
        # Contiguous transpose of Wh, amortised over the step loop (see the
        # matching comment in LSTMCell.backward_sequence); the float32
        # forward already built it for this parameter state.
        wh_t = ws.get("wh_t", (self.N_GATES * hid, hid), dt)
        if dt != np.float32:
            np.copyto(wh_t, Wh.T)
        total = ws.get("btotal", (batch, hid), dt)
        tmp = ws.get("btmp", (batch, hid), dt)
        tmp2 = ws.get("btmp2", (batch, hid), dt)
        dhp = ws.get("bdhp", (batch, hid), dt)

        for t in reversed(range(time)):
            r, u, n = gr[:, t], gu[:, t], gn[:, t]
            h_prev = cache["h"][:, t - 1] if t > 0 else cache["h0"]
            dzx = dzx_seq[:, t]
            dzh = dzh_seq[:, t]
            dzr, dzu = dzx[:, :hid], dzx[:, hid : 2 * hid]
            dzn = dzx[:, 2 * hid :]

            np.add(dh[:, t], dh_next, out=total)
            # dzn = total*(1-u)*(1-n^2)
            np.subtract(1.0, u, out=tmp)
            np.multiply(total, tmp, out=tmp)  # dn
            np.multiply(n, n, out=tmp2)
            np.subtract(1.0, tmp2, out=tmp2)
            np.multiply(tmp, tmp2, out=dzn)
            # dzr = dzn*zh_n * r*(1-r)
            np.multiply(dzn, zh_n[:, t], out=tmp)  # dr
            np.multiply(tmp, r, out=tmp)
            np.subtract(1.0, r, out=tmp2)
            np.multiply(tmp, tmp2, out=dzr)
            # dzu = total*(h_prev - n) * u*(1-u)
            np.subtract(h_prev, n, out=tmp)
            np.multiply(total, tmp, out=tmp)  # du
            np.multiply(tmp, u, out=tmp)
            np.subtract(1.0, u, out=tmp2)
            np.multiply(tmp, tmp2, out=dzu)
            # recurrent-side pre-activations: [dzr, dzu, dzn*r]
            np.copyto(dzh[:, : 2 * hid], dzx[:, : 2 * hid])
            np.multiply(dzn, r, out=dzh[:, 2 * hid :])

            np.multiply(total, u, out=dhp)
            np.matmul(dzh, wh_t, out=dh_next)
            dh_next += dhp

        dzx_flat = dzx_seq.reshape(batch * time, -1)
        dzh_flat = dzh_seq.reshape(batch * time, -1)
        x_flat = x.reshape(batch * time, -1)
        h_prev_seq = ws.get("h_prev_seq", (batch, time, hid), dt)
        h_prev_seq[:, 0] = cache["h0"]
        h_prev_seq[:, 1:] = cache["h"][:, :-1]

        gwx = ws.get("gwx", self.params["Wx"].shape, dt)
        gwh = ws.get("gwh", self.params["Wh"].shape, dt)
        np.matmul(x_flat.T, dzx_flat, out=gwx)
        np.matmul(h_prev_seq.reshape(batch * time, -1).T, dzh_flat, out=gwh)
        self.grads["Wx"] += gwx
        self.grads["Wh"] += gwh
        self.grads["b"] += dzx_flat.sum(axis=0)

        dx = ws.get("dx", x.shape, dt)
        np.matmul(dzx_flat, Wx.T, out=dx.reshape(batch * time, -1))
        return dx, (dh_next,)

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for grad in self.grads.values():
            grad.fill(0.0)
