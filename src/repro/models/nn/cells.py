"""Recurrent cells (LSTM and GRU) with hand-derived backward passes.

Both cells operate on one timestep of a batch: ``step`` maps
``(x, state)`` to ``(h, state, cache)`` and ``backward_step`` consumes the
upstream gradients plus the cache, accumulates parameter gradients, and
returns the gradients flowing to the input and the previous state.

Weight layout follows the fused convention: a single input matrix ``Wx``
of shape ``(in_dim, G * hidden)`` and a recurrent matrix ``Wh`` of shape
``(hidden, G * hidden)``, with ``G = 4`` gates for the LSTM (input, forget,
candidate, output) and ``G = 3`` for the GRU (reset, update, candidate).
The LSTM forget-gate bias is initialised to 1, the standard trick for
gradient flow early in training.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro._validation import as_rng, check_positive_int

__all__ = ["LSTMCell", "GRUCell"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Clip to keep exp() finite; sigmoid saturates far before +-40 anyway.
    return 1.0 / (1.0 + np.exp(-np.clip(x, -40.0, 40.0)))


class LSTMCell:
    """Long Short-Term Memory cell (Hochreiter & Schmidhuber).

    State is the pair ``(h, c)``; gate order inside the fused matrices is
    input, forget, candidate, output.
    """

    N_GATES = 4

    def __init__(self, in_dim: int, hidden: int, *, seed=None) -> None:
        check_positive_int(in_dim, "in_dim")
        check_positive_int(hidden, "hidden")
        rng = as_rng(seed)
        scale = 1.0 / np.sqrt(hidden)
        self.in_dim = in_dim
        self.hidden = hidden
        bias = np.zeros(self.N_GATES * hidden)
        bias[hidden : 2 * hidden] = 1.0  # forget-gate bias
        self.params = {
            "Wx": rng.uniform(-scale, scale, size=(in_dim, self.N_GATES * hidden)),
            "Wh": rng.uniform(-scale, scale, size=(hidden, self.N_GATES * hidden)),
            "b": bias,
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}

    def initial_state(self, batch: int) -> tuple[np.ndarray, np.ndarray]:
        """Zero hidden and cell state for a batch."""
        return np.zeros((batch, self.hidden)), np.zeros((batch, self.hidden))

    def step(
        self, x: np.ndarray, state: tuple[np.ndarray, np.ndarray]
    ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray], dict[str, Any]]:
        """One timestep: returns ``(h, (h, c), cache)``."""
        h_prev, c_prev = state
        hid = self.hidden
        z = x @ self.params["Wx"] + h_prev @ self.params["Wh"] + self.params["b"]
        i = _sigmoid(z[:, :hid])
        f = _sigmoid(z[:, hid : 2 * hid])
        g = np.tanh(z[:, 2 * hid : 3 * hid])
        o = _sigmoid(z[:, 3 * hid :])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        cache = {
            "x": x,
            "h_prev": h_prev,
            "c_prev": c_prev,
            "i": i,
            "f": f,
            "g": g,
            "o": o,
            "tanh_c": tanh_c,
        }
        return h, (h, c), cache

    def backward_step(
        self,
        dh: np.ndarray,
        dstate: tuple[np.ndarray, np.ndarray],
        cache: dict[str, Any],
    ) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
        """Backward through one timestep.

        ``dh`` is the gradient arriving at the step's output; ``dstate`` is
        ``(dh_next, dc_next)`` flowing back from the following timestep
        (``dh_next`` is added to ``dh`` by the caller's convention of
        keeping them separate, so pass zeros when not applicable).
        Returns ``(dx, (dh_prev, dc_prev))``.
        """
        dh_next, dc_next = dstate
        i, f, g, o = cache["i"], cache["f"], cache["g"], cache["o"]
        tanh_c = cache["tanh_c"]
        total_dh = dh + dh_next
        do = total_dh * tanh_c
        dc = dc_next + total_dh * o * (1.0 - tanh_c**2)
        df = dc * cache["c_prev"]
        dc_prev = dc * f
        di = dc * g
        dg = dc * i
        dz = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g**2),
                do * o * (1.0 - o),
            ],
            axis=1,
        )
        self.grads["Wx"] += cache["x"].T @ dz
        self.grads["Wh"] += cache["h_prev"].T @ dz
        self.grads["b"] += dz.sum(axis=0)
        dx = dz @ self.params["Wx"].T
        dh_prev = dz @ self.params["Wh"].T
        return dx, (dh_prev, dc_prev)

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for grad in self.grads.values():
            grad.fill(0.0)


class GRUCell:
    """Gated Recurrent Unit cell (Cho et al.), the LSTM's lighter sibling.

    State is ``(h,)``; gate order is reset, update, candidate.  Included for
    the paper's related-work comparison (Section 3.4 cites the GRU-vs-LSTM
    study) and benchmarked in the GRU ablation.
    """

    N_GATES = 3

    def __init__(self, in_dim: int, hidden: int, *, seed=None) -> None:
        check_positive_int(in_dim, "in_dim")
        check_positive_int(hidden, "hidden")
        rng = as_rng(seed)
        scale = 1.0 / np.sqrt(hidden)
        self.in_dim = in_dim
        self.hidden = hidden
        self.params = {
            "Wx": rng.uniform(-scale, scale, size=(in_dim, self.N_GATES * hidden)),
            "Wh": rng.uniform(-scale, scale, size=(hidden, self.N_GATES * hidden)),
            "b": np.zeros(self.N_GATES * hidden),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}

    def initial_state(self, batch: int) -> tuple[np.ndarray]:
        """Zero hidden state for a batch."""
        return (np.zeros((batch, self.hidden)),)

    def step(
        self, x: np.ndarray, state: tuple[np.ndarray]
    ) -> tuple[np.ndarray, tuple[np.ndarray], dict[str, Any]]:
        """One timestep: returns ``(h, (h,), cache)``."""
        (h_prev,) = state
        hid = self.hidden
        zx = x @ self.params["Wx"] + self.params["b"]
        zh = h_prev @ self.params["Wh"]
        r = _sigmoid(zx[:, :hid] + zh[:, :hid])
        u = _sigmoid(zx[:, hid : 2 * hid] + zh[:, hid : 2 * hid])
        n = np.tanh(zx[:, 2 * hid :] + r * zh[:, 2 * hid :])
        h = u * h_prev + (1.0 - u) * n
        cache = {"x": x, "h_prev": h_prev, "r": r, "u": u, "n": n, "zh_n": zh[:, 2 * hid :]}
        return h, (h,), cache

    def backward_step(
        self,
        dh: np.ndarray,
        dstate: tuple[np.ndarray],
        cache: dict[str, Any],
    ) -> tuple[np.ndarray, tuple[np.ndarray]]:
        """Backward through one timestep; returns ``(dx, (dh_prev,))``."""
        (dh_next,) = dstate
        r, u, n = cache["r"], cache["u"], cache["n"]
        h_prev, zh_n = cache["h_prev"], cache["zh_n"]
        total_dh = dh + dh_next
        du = total_dh * (h_prev - n)
        dn = total_dh * (1.0 - u)
        dh_prev = total_dh * u
        dzn = dn * (1.0 - n**2)  # pre-activation of candidate
        dr = dzn * zh_n
        dzr = dr * r * (1.0 - r)
        dzu = du * u * (1.0 - u)
        dzx = np.concatenate([dzr, dzu, dzn], axis=1)
        dzh = np.concatenate([dzr, dzu, dzn * r], axis=1)
        self.grads["Wx"] += cache["x"].T @ dzx
        self.grads["Wh"] += h_prev.T @ dzh
        self.grads["b"] += dzx.sum(axis=0)
        dx = dzx @ self.params["Wx"].T
        dh_prev = dh_prev + dzh @ self.params["Wh"].T
        return dx, (dh_prev,)

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for grad in self.grads.values():
            grad.fill(0.0)
