"""Reusable ndarray workspaces for the fused BPTT kernels.

Truncated-BPTT training touches the same ``(batch, num_steps, hidden)``
shapes minibatch after minibatch; allocating fresh gate caches and gradient
scratch every step was a measurable share of the per-epoch wall time.  A
:class:`Workspace` is a tiny named-buffer pool: ``get`` hands back the same
contiguous array for a given name as long as the requested shape and dtype
match, and silently reallocates when they change (e.g. the ragged final
bucket of an epoch).

Buffers are returned *dirty* — callers own the initialisation.  Each
recurrent layer gets its own workspace so stacked layers never alias.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Named pool of reusable scratch arrays keyed by shape and dtype."""

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def get(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Return a contiguous uninitialised buffer for ``name``.

        The same array is reused across calls while ``shape`` and ``dtype``
        are stable, which is the steady state of stream-batched training.
        """
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf

    def nbytes(self) -> int:
        """Total bytes currently held by the pool (for introspection)."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        """Drop all pooled buffers (e.g. before pickling a model)."""
        self._buffers.clear()
