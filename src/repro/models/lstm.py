"""LSTM language model over product sequences (the paper's RNN method).

The paper trains 12 LSTM architectures — 1-3 layers, 10-300 nodes per layer
(node count == product embedding size) — for 14 epochs with dropout
regularisation, using "the LSTM model implementation of the 'tensorflow'
package", and reports a best test perplexity of 11.6 at 1 layer x 200 nodes
(Figure 1).

Two batching regimes are provided:

* ``batching="stream"`` (default) — the TensorFlow PTB-style recipe the
  paper's companion work [19] follows: all company sequences are
  concatenated into one token stream (separated by the BOS sentinel) and
  trained with truncated BPTT windows that *cross company boundaries*,
  recurrent state carried across windows.  This is the faithful
  reproduction of the paper's setup.
* ``batching="company"`` — one padded sequence per row, state reset per
  company.  Stronger in practice (the model can condition on a clean
  per-company prefix); kept as an ablation documented in EXPERIMENTS.md.

Perplexity is teacher-forced next-product perplexity, scored on product
tokens only (separators are never scored).

Performance knobs (see ``models/nn/``): ``dtype`` selects the working
precision (float32 default; float64 is the bit-exact reference), ``kernel``
selects the fused whole-window BPTT kernels or the per-step reference
recurrence, and ``bucketed`` sorts ragged company batches by length so
padded positions stop dominating the FLOP count in ``batching="company"``
training and in all batch scoring entry points.  Log-probabilities are
always accumulated in float64 regardless of ``dtype``.
"""

from __future__ import annotations

import time as _time
from typing import Any

import numpy as np

from repro._validation import (
    as_rng,
    check_in_choices,
    check_positive_float,
    check_positive_int,
    check_probability,
)
from repro.data.corpus import Corpus
from repro.models.base import GenerativeModel
from repro.models.nn.losses import masked_softmax_cross_entropy, softmax
from repro.models.nn.network import RecurrentLM
from repro.models.nn.optim import SGD, Adam, clip_gradients
from repro.obs import metrics, trace

__all__ = ["LSTMModel"]


class LSTMModel(GenerativeModel):
    """Recurrent language model of company-product time series.

    Parameters
    ----------
    hidden:
        Nodes per layer == embedding size (paper grid: 10, 100, 200, 300).
    n_layers:
        Stacked layers (paper grid: 1, 2, 3).
    cell:
        ``"lstm"`` (paper) or ``"gru"`` (ablation).
    dropout:
        Non-recurrent dropout probability (Zaremba et al. regularisation).
    batching:
        ``"stream"`` (paper-faithful PTB recipe, default) or ``"company"``.
    num_steps:
        Truncated-BPTT window length in stream mode.
    n_epochs:
        Training epochs (paper: 14; the TF PTB "small" config runs 13).
    optimizer:
        ``"sgd"`` (default) reproduces the TF PTB schedule: plain SGD at
        ``lr`` with the learning rate multiplied by ``lr_decay`` after each
        epoch past ``decay_start``.  ``"adam"`` is the modern alternative
        benchmarked in the optimizer ablation.
    lr, lr_decay, decay_start:
        Learning-rate schedule; the defaults (2.0, 0.7, epoch 8) are the PTB
        recipe rescaled to this corpus size.
    batch_size, clip_norm:
        Minibatch size and global gradient-norm clip.
    validation:
        Optional held-out corpus; when given, the epoch with the best
        validation perplexity wins (the paper selects parameters on a
        validation split).
    seed:
        Controls initialisation, shuffling and dropout.
    dtype:
        Working precision: ``"float32"`` (default, the fast training and
        scoring dtype) or ``"float64"`` (bit-exact reference precision).
    kernel:
        ``"fused"`` (default, time-fused GEMM kernels with preallocated
        workspaces) or ``"reference"`` (per-timestep recurrence).
    bucketed:
        Sort ragged company batches by sequence length before chunking
        (training in ``batching="company"`` mode and all batch scoring);
        results are returned in the caller's order either way.
    """

    name = "lstm"

    def __init__(
        self,
        hidden: int = 100,
        n_layers: int = 1,
        *,
        cell: str = "lstm",
        dropout: float = 0.2,
        batching: str = "stream",
        num_steps: int = 20,
        n_epochs: int = 14,
        optimizer: str = "sgd",
        lr: float | None = None,
        lr_decay: float = 0.7,
        decay_start: int = 8,
        batch_size: int = 32,
        clip_norm: float = 5.0,
        validation: Corpus | None = None,
        seed: int | np.random.Generator | None = 0,
        dtype: str = "float32",
        kernel: str = "fused",
        bucketed: bool = True,
    ) -> None:
        super().__init__()
        self.hidden = check_positive_int(hidden, "hidden")
        self.n_layers = check_positive_int(n_layers, "n_layers")
        self.cell = check_in_choices(cell, "cell", ("lstm", "gru"))
        self.dropout = check_probability(dropout, "dropout")
        if self.dropout >= 1.0:
            raise ValueError("dropout must be < 1")
        self.batching = check_in_choices(batching, "batching", ("stream", "company"))
        self.num_steps = check_positive_int(num_steps, "num_steps")
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        self.optimizer = check_in_choices(optimizer, "optimizer", ("sgd", "adam"))
        if lr is None:
            lr = 2.0 if self.optimizer == "sgd" else 0.002
        self.lr = check_positive_float(lr, "lr")
        self.lr_decay = check_positive_float(lr_decay, "lr_decay")
        if self.lr_decay > 1.0:
            raise ValueError(f"lr_decay must be <= 1, got {lr_decay}")
        self.decay_start = check_positive_int(decay_start, "decay_start")
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.clip_norm = check_positive_float(clip_norm, "clip_norm")
        self.validation = validation
        self.dtype = check_in_choices(str(dtype), "dtype", ("float32", "float64"))
        self.kernel = check_in_choices(kernel, "kernel", ("fused", "reference"))
        self.bucketed = bool(bucketed)
        self._seed = seed
        self._network: RecurrentLM | None = None
        self.training_history: list[dict[str, float]] = []

    # ------------------------------------------------------------------
    # Batching helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _build_stream(sequences: list[list[int]], bos: int) -> np.ndarray:
        """Concatenate sequences into one stream, BOS-separated."""
        tokens: list[int] = []
        for seq in sequences:
            tokens.append(bos)
            tokens.extend(seq)
        return np.array(tokens, dtype=np.int64)

    def _make_padded_batch(
        self, sequences: list[list[int]], bos: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pad a list of sequences into (inputs, targets, mask).

        Inputs are BOS-prefixed and shifted: position t sees products
        0..t-1 and predicts product t.  Padding uses the BOS id and is
        masked out of the loss.
        """
        time = max(len(s) for s in sequences)
        batch = len(sequences)
        inputs = np.full((batch, time), bos, dtype=np.int64)
        targets = np.zeros((batch, time), dtype=np.int64)
        mask = np.zeros((batch, time), dtype=bool)
        for b, seq in enumerate(sequences):
            if not seq:
                continue
            inputs[b, 1 : len(seq)] = seq[:-1]
            targets[b, : len(seq)] = seq
            mask[b, : len(seq)] = True
        return inputs, targets, mask

    def _scoring_order(self, lengths: list[int]) -> np.ndarray:
        """Chunking order for ragged batches: by length when bucketed.

        The stable sort keeps equal-length sequences in caller order, so
        bucketed scoring is deterministic.
        """
        if self.bucketed:
            return np.argsort(np.asarray(lengths), kind="stable")
        return np.arange(len(lengths))

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, corpus: Corpus) -> "LSTMModel":
        rng = as_rng(self._seed)
        sequences = [s for s in corpus.sequences() if s]
        if not sequences:
            raise ValueError("corpus has no non-empty sequences")
        network = RecurrentLM(
            corpus.n_products,
            self.hidden,
            self.n_layers,
            cell=self.cell,
            dropout=self.dropout,
            seed=rng,
            dtype=self.dtype,
            kernel=self.kernel,
        )
        optimizer = Adam(self.lr) if self.optimizer == "adam" else SGD(self.lr)
        self._vocab_size = corpus.n_products
        self._network = network
        self.training_history = []
        best_valid = np.inf
        best_params: dict[str, np.ndarray] | None = None
        fit_tokens, fit_wall = 0.0, 0.0

        for epoch in range(self.n_epochs):
            if self.optimizer == "sgd":
                # TF PTB schedule: hold lr for the first decay_start epochs,
                # then decay geometrically.
                optimizer.lr = self.lr * self.lr_decay ** max(0, epoch - self.decay_start + 1)
            with trace.span("model.lstm.epoch") as span:
                start = _time.perf_counter()
                if self.batching == "stream":
                    train_ppl, n_tokens = self._train_epoch_stream(
                        sequences, network, optimizer, rng
                    )
                else:
                    train_ppl, n_tokens = self._train_epoch_company(
                        sequences, network, optimizer, rng
                    )
                elapsed = _time.perf_counter() - start
            fit_tokens += n_tokens
            fit_wall += elapsed
            rate = fit_tokens / max(fit_wall, 1e-9)
            if span is not None:
                span.add_counter("tokens", n_tokens)
                # Cumulative training throughput; overwritten every epoch so
                # the merged span reports the fit-level rate, not a sum.
                span.counters["tokens_per_s"] = round(rate, 1)
            if metrics.is_enabled():
                metrics.set_gauge("model.lstm.tokens_per_s", rate)
            record = {"epoch": float(epoch), "train_perplexity": train_ppl}
            if self.validation is not None:
                valid_ppl = self.perplexity(self.validation)
                record["valid_perplexity"] = valid_ppl
                if valid_ppl < best_valid:
                    best_valid = valid_ppl
                    best_params = {k: v.copy() for k, v in network.params().items()}
            self.training_history.append(record)
        if best_params is not None:
            for key, value in network.params().items():
                value[...] = best_params[key]
        return self

    def _train_epoch_stream(
        self,
        sequences: list[list[int]],
        network: RecurrentLM,
        optimizer: Adam | SGD,
        rng: np.random.Generator,
    ) -> tuple[float, int]:
        """One PTB-style epoch: shuffled concatenated stream, carried state."""
        order = rng.permutation(len(sequences))
        stream = self._build_stream([sequences[i] for i in order], network.bos_token)
        n_chunk = len(stream) // self.batch_size
        if n_chunk < 2:
            raise ValueError(
                f"stream of {len(stream)} tokens is too short for batch_size "
                f"{self.batch_size}"
            )
        data = stream[: n_chunk * self.batch_size].reshape(self.batch_size, n_chunk)
        states = network.initial_states(self.batch_size)
        epoch_loss, epoch_tokens = 0.0, 0
        for t in range(0, n_chunk - 1, self.num_steps):
            inputs = data[:, t : t + self.num_steps]
            targets = data[:, t + 1 : t + 1 + self.num_steps]
            inputs = inputs[:, : targets.shape[1]]
            mask = targets != network.bos_token
            logits, cache = network.forward(inputs, train=True, rng=rng, states=states)
            states = cache["final_states"]
            if not mask.any():
                continue
            network.zero_grads()
            loss, dlogits = masked_softmax_cross_entropy(logits, targets, mask)
            network.backward(dlogits, cache)
            grads = network.grads()
            clip_gradients(grads, self.clip_norm)
            optimizer.update(network.params(), grads)
            n_tokens = int(mask.sum())
            epoch_loss += loss * n_tokens
            epoch_tokens += n_tokens
        return float(np.exp(epoch_loss / max(epoch_tokens, 1))), epoch_tokens

    def _train_epoch_company(
        self,
        sequences: list[list[int]],
        network: RecurrentLM,
        optimizer: Adam | SGD,
        rng: np.random.Generator,
    ) -> tuple[float, int]:
        """One epoch of per-company padded minibatches (state reset per row).

        With ``bucketed=True`` the shuffled epoch order is re-sorted by
        sequence length (stable, so the shuffle still randomises within
        equal lengths) and the resulting minibatches are visited in random
        order: each batch pads to its own bucket's maximum instead of the
        epoch-wide maximum.
        """
        order = rng.permutation(len(sequences))
        if self.bucketed:
            lengths = np.array([len(sequences[i]) for i in order])
            order = order[np.argsort(lengths, kind="stable")]
        starts = np.arange(0, len(order), self.batch_size)
        if self.bucketed:
            starts = starts[rng.permutation(len(starts))]
        epoch_loss, epoch_tokens = 0.0, 0
        for start in starts:
            chosen = [sequences[i] for i in order[start : start + self.batch_size]]
            inputs, targets, mask = self._make_padded_batch(chosen, network.bos_token)
            network.zero_grads()
            logits, cache = network.forward(inputs, train=True, rng=rng)
            loss, dlogits = masked_softmax_cross_entropy(logits, targets, mask)
            network.backward(dlogits, cache)
            grads = network.grads()
            clip_gradients(grads, self.clip_norm)
            optimizer.update(network.params(), grads)
            n_tokens = int(mask.sum())
            epoch_loss += loss * n_tokens
            epoch_tokens += n_tokens
        return float(np.exp(epoch_loss / epoch_tokens)), epoch_tokens

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    @property
    def network(self) -> RecurrentLM:
        """The underlying numpy network."""
        self._check_fitted()
        assert self._network is not None
        return self._network

    @property
    def n_parameters(self) -> int:
        """Trainable parameter count (the paper contrasts this with LDA's)."""
        return self.network.n_parameters()

    def log_prob(self, corpus: Corpus) -> float:
        self._check_fitted()
        if corpus.n_products != self.vocab_size:
            raise ValueError(
                f"corpus has {corpus.n_products} products, model fitted on "
                f"{self.vocab_size}"
            )
        sequences = [s for s in corpus.sequences() if s]
        if self.batching == "stream":
            return self._stream_log_prob(sequences)
        return self._company_log_prob(sequences)

    def _stream_log_prob(self, sequences: list[list[int]]) -> float:
        """Score a corpus the way it was trained: one carried-state stream."""
        network = self.network
        stream = self._build_stream(sequences, network.bos_token)
        states = network.initial_states(1)
        total = 0.0
        window = 256
        for t in range(0, len(stream) - 1, window):
            inputs = stream[t : t + window][None, :]
            targets = stream[t + 1 : t + 1 + window]
            inputs = inputs[:, : len(targets)]
            logits, cache = network.forward(inputs, train=False, states=states)
            states = cache["final_states"]
            # Probabilities and the log-sum accumulate in float64 whatever
            # the network dtype.
            probs = softmax(np.asarray(logits[0], dtype=np.float64))
            mask = targets != network.bos_token
            picked = probs[np.arange(len(targets)), np.where(mask, targets, 0)]
            total += float(np.where(mask, np.log(picked + 1e-300), 0.0).sum())
        return total

    def _company_log_prob(self, sequences: list[list[int]]) -> float:
        """Per-company teacher-forced scoring with fresh state per row."""
        network = self.network
        order = self._scoring_order([len(s) for s in sequences])
        total = 0.0
        for start in range(0, len(order), self.batch_size):
            chosen = [sequences[i] for i in order[start : start + self.batch_size]]
            inputs, targets, mask = self._make_padded_batch(chosen, network.bos_token)
            logits, __ = network.forward(inputs, train=False)
            probs = softmax(np.asarray(logits, dtype=np.float64))
            batch, time = targets.shape
            rows = np.repeat(np.arange(batch), time)
            cols = np.tile(np.arange(time), batch)
            picked = probs[rows, cols, targets.reshape(-1)].reshape(batch, time)
            total += float(np.where(mask, np.log(picked + 1e-300), 0.0).sum())
        return total

    def next_product_proba(self, history: list[int]) -> np.ndarray:
        clean = self._check_history(history)
        network = self.network
        tokens = np.array([[network.bos_token] + clean], dtype=np.int64)
        logits, __ = network.forward(tokens, train=False)
        return softmax(np.asarray(logits[0, -1], dtype=np.float64))

    def batch_next_product_proba(self, histories: list[list[int]]) -> np.ndarray:
        """Batched recommender scores via one padded forward per chunk.

        With ``bucketed=True`` histories are scored in length order so each
        chunk pads to its own maximum; rows come back in caller order.
        """
        if not histories:
            self._check_fitted()
            return np.zeros((0, self.vocab_size), dtype=np.float64)
        network = self.network
        clean = [self._check_history(h) for h in histories]
        order = self._scoring_order([len(h) for h in clean])
        result = np.empty((len(histories), self.vocab_size))
        for start in range(0, len(order), self.batch_size):
            chunk = [clean[i] for i in order[start : start + self.batch_size]]
            time = max(len(h) for h in chunk) + 1
            tokens = np.full((len(chunk), time), network.bos_token, dtype=np.int64)
            lengths = np.empty(len(chunk), dtype=np.int64)
            for b, h in enumerate(chunk):
                tokens[b, 1 : len(h) + 1] = h
                lengths[b] = len(h) + 1
            # Project only each row's last real position: one (batch, vocab)
            # GEMM instead of a (batch, time, vocab) one per chunk.
            hidden = network.final_hidden(tokens, lengths)
            logits = network.output.forward(hidden)
            probs = softmax(np.asarray(logits, dtype=np.float64))
            for b in range(len(chunk)):
                result[order[start + b]] = probs[b]
        return result

    def company_features(self, corpus: Corpus) -> np.ndarray:
        """Final top-layer hidden state per company — the RNN embedding.

        Companies with no dated products keep a zero vector.
        """
        self._check_fitted()
        network = self.network
        features = np.zeros((corpus.n_companies, self.hidden))
        sequences = corpus.sequences()
        indexed = [(i, s) for i, s in enumerate(sequences) if s]
        order = self._scoring_order([len(s) for __, s in indexed])
        for start in range(0, len(order), self.batch_size):
            chunk = [indexed[i] for i in order[start : start + self.batch_size]]
            seqs = [s for __, s in chunk]
            time = max(len(s) for s in seqs)
            tokens = np.full((len(seqs), time + 1), network.bos_token, dtype=np.int64)
            lengths = np.empty(len(seqs), dtype=np.int64)
            for b, seq in enumerate(seqs):
                tokens[b, 1 : len(seq) + 1] = seq
                lengths[b] = len(seq) + 1
            hidden = network.final_hidden(tokens, lengths)
            for (i, __), vector in zip(chunk, hidden):
                features[i] = vector
        return features

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _get_state(self) -> dict[str, Any]:
        state = super()._get_state()
        state.update(
            hidden=self.hidden,
            n_layers=self.n_layers,
            cell=self.cell,
            dropout=self.dropout,
            batching=self.batching,
            num_steps=self.num_steps,
            n_epochs=self.n_epochs,
            optimizer=self.optimizer,
            lr=self.lr,
            lr_decay=self.lr_decay,
            decay_start=self.decay_start,
            batch_size=self.batch_size,
            clip_norm=self.clip_norm,
            dtype=self.dtype,
            kernel=self.kernel,
            bucketed=self.bucketed,
        )
        for key, value in self.network.params().items():
            state[f"param::{key}"] = value
        return state

    def _set_state(self, state: dict[str, Any]) -> None:
        super()._set_state(state)
        self.hidden = int(state["hidden"])
        self.n_layers = int(state["n_layers"])
        self.cell = str(state["cell"])
        self.dropout = float(state["dropout"])
        self.batching = str(state["batching"])
        self.num_steps = int(state["num_steps"])
        self.n_epochs = int(state["n_epochs"])
        self.optimizer = str(state["optimizer"])
        self.lr = float(state["lr"])
        self.lr_decay = float(state["lr_decay"])
        self.decay_start = int(state["decay_start"])
        self.batch_size = int(state["batch_size"])
        self.clip_norm = float(state["clip_norm"])
        # Models saved before the kernel pass default to their historical
        # behaviour (float64 parameters).
        self.dtype = str(state.get("dtype", "float64"))
        self.kernel = str(state.get("kernel", "fused"))
        self.bucketed = bool(state.get("bucketed", True))
        self.validation = None
        self._seed = 0
        self.training_history = []
        assert self._vocab_size is not None
        self._network = RecurrentLM(
            self._vocab_size,
            self.hidden,
            self.n_layers,
            cell=self.cell,
            dropout=self.dropout,
            seed=0,
            dtype=self.dtype,
            kernel=self.kernel,
        )
        for key, value in self._network.params().items():
            value[...] = np.asarray(state[f"param::{key}"], dtype=value.dtype)
