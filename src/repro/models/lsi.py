"""Latent Semantic Indexing — the topic-model baseline of Section 3.5.

The paper contrasts LDA with "other topic modeling techniques such as
Latent Semantic Indexing" (Hofmann's reference is PLSI; classic LSI is the
truncated-SVD variant).  LSI lacks a generative story — its value here is
as a *representation* baseline: company vectors are projections onto the
top singular directions of the (optionally TF-IDF-weighted) company-product
matrix, product embeddings the corresponding right singular vectors.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_in_choices, check_matrix, check_positive_int
from repro.data.corpus import Corpus
from repro.preprocessing.tfidf import TfidfTransform

__all__ = ["LatentSemanticIndexing"]


class LatentSemanticIndexing:
    """Truncated-SVD company and product representations.

    Parameters
    ----------
    n_components:
        Number of latent dimensions L.
    input_type:
        ``"binary"`` or ``"tfidf"`` (the classic IR setting).
    """

    def __init__(self, n_components: int = 3, *, input_type: str = "tfidf") -> None:
        self.n_components = check_positive_int(n_components, "n_components")
        self.input_type = check_in_choices(input_type, "input_type", ("binary", "tfidf"))
        self._components: np.ndarray | None = None  # (L, M) right singular rows
        self._singular_values: np.ndarray | None = None
        self._tfidf: TfidfTransform | None = None

    def _prepare(self, binary: np.ndarray, *, fit: bool) -> np.ndarray:
        if self.input_type == "binary":
            return binary
        if fit:
            self._tfidf = TfidfTransform()
            return self._tfidf.fit_transform(binary)
        assert self._tfidf is not None
        return self._tfidf.transform(binary)

    def fit(self, corpus: Corpus) -> "LatentSemanticIndexing":
        """Compute the truncated SVD of the corpus matrix."""
        binary = corpus.binary_matrix()
        matrix = self._prepare(binary, fit=True)
        if self.n_components > min(matrix.shape):
            raise ValueError(
                f"n_components {self.n_components} exceeds matrix rank bound "
                f"{min(matrix.shape)}"
            )
        __, singular_values, vt = np.linalg.svd(matrix, full_matrices=False)
        self._components = vt[: self.n_components]
        self._singular_values = singular_values[: self.n_components]
        return self

    @property
    def components(self) -> np.ndarray:
        """Right singular rows, shape ``(L, M)`` — the 'topics' of LSI."""
        if self._components is None:
            raise RuntimeError("LatentSemanticIndexing must be fitted first")
        return self._components

    @property
    def singular_values(self) -> np.ndarray:
        """The top-L singular values."""
        if self._singular_values is None:
            raise RuntimeError("LatentSemanticIndexing must be fitted first")
        return self._singular_values

    @property
    def explained_variance_ratio(self) -> np.ndarray:
        """Share of squared Frobenius mass captured per component.

        Computed against the fitted singular spectrum's retained part only
        when the full spectrum is unavailable; for the truncated fit this is
        the retained values normalised by the stored total (callers wanting
        exact global ratios should fit with ``n_components = min(N, M)``).
        """
        values = self.singular_values**2
        return values / values.sum()

    def company_features(self, corpus: Corpus) -> np.ndarray:
        """Project companies onto the latent directions, shape ``(N, L)``."""
        binary = corpus.binary_matrix()
        if binary.shape[1] != self.components.shape[1]:
            raise ValueError("corpus vocabulary does not match the fitted model")
        matrix = self._prepare(binary, fit=False)
        return matrix @ self.components.T

    def product_embeddings(self) -> np.ndarray:
        """Per-product latent coordinates, shape ``(M, L)``."""
        return (self.components * self.singular_values[:, None]).T.copy()

    def transform_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Project an arbitrary binary matrix (power-user entry point)."""
        binary = check_matrix(matrix, "matrix", binary=True)
        prepared = self._prepare(binary, fit=False)
        return prepared @ self.components.T
