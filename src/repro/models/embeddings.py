"""Skip-gram product embeddings (the word2vec route of Section 3.4).

The paper's related work discusses Mikolov-style embeddings as an
alternative representation: products are words, companies are contexts, and
embeddings can be aggregated into company vectors.  The paper ultimately
prefers LDA, but the option is implemented here as the natural extension —
a skip-gram model with negative sampling trained on product co-occurrence
within companies.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    as_rng,
    check_positive_float,
    check_positive_int,
)
from repro.data.corpus import Corpus

__all__ = ["ProductSkipGram"]


class ProductSkipGram:
    """Skip-gram with negative sampling over within-company co-occurrence.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    window:
        Context window over the time-sorted product sequence; 0 means "all
        products of the company are context" (pure set co-occurrence).
    n_negative:
        Negative samples per positive pair.
    n_epochs, lr:
        Training schedule (linearly decaying learning rate).
    seed:
        Randomness control.
    """

    def __init__(
        self,
        dim: int = 16,
        *,
        window: int = 0,
        n_negative: int = 5,
        n_epochs: int = 10,
        lr: float = 0.05,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.dim = check_positive_int(dim, "dim")
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self.window = int(window)
        self.n_negative = check_positive_int(n_negative, "n_negative")
        self.n_epochs = check_positive_int(n_epochs, "n_epochs")
        self.lr = check_positive_float(lr, "lr")
        self._seed = seed
        self._in: np.ndarray | None = None
        self._out: np.ndarray | None = None
        self._vocab_size: int | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _pairs(self, sequences: list[list[int]]) -> np.ndarray:
        """(center, context) pairs under the configured window."""
        pairs = []
        for seq in sequences:
            for i, center in enumerate(seq):
                if self.window == 0:
                    contexts = [t for j, t in enumerate(seq) if j != i]
                else:
                    lo = max(0, i - self.window)
                    hi = min(len(seq), i + self.window + 1)
                    contexts = [seq[j] for j in range(lo, hi) if j != i]
                pairs.extend((center, ctx) for ctx in contexts)
        return np.array(pairs, dtype=np.int64).reshape(-1, 2)

    def fit(self, corpus: Corpus) -> "ProductSkipGram":
        rng = as_rng(self._seed)
        vocab = corpus.n_products
        sequences = [s for s in corpus.sequences() if len(s) >= 2]
        pairs = self._pairs(sequences)
        if len(pairs) == 0:
            raise ValueError("no co-occurrence pairs; corpus too sparse")
        counts = np.bincount(pairs[:, 1], minlength=vocab).astype(np.float64)
        noise = counts**0.75
        noise /= noise.sum()

        w_in = rng.normal(0.0, 0.5 / self.dim, size=(vocab, self.dim))
        w_out = np.zeros((vocab, self.dim))
        n_total = self.n_epochs * len(pairs)
        step = 0
        for __ in range(self.n_epochs):
            order = rng.permutation(len(pairs))
            negatives = rng.choice(vocab, size=(len(pairs), self.n_negative), p=noise)
            for pos, pair_idx in enumerate(order):
                lr = self.lr * max(1e-4, 1.0 - step / n_total)
                step += 1
                center, context = pairs[pair_idx]
                targets = np.concatenate([[context], negatives[pos]])
                labels = np.zeros(len(targets))
                labels[0] = 1.0
                v_center = w_in[center]
                v_targets = w_out[targets]
                scores = 1.0 / (1.0 + np.exp(-np.clip(v_targets @ v_center, -30, 30)))
                gradient = (scores - labels)[:, None]
                grad_center = (gradient * v_targets).sum(axis=0)
                w_out[targets] -= lr * gradient * v_center
                w_in[center] -= lr * grad_center
        self._in = w_in
        self._out = w_out
        self._vocab_size = vocab
        return self

    # ------------------------------------------------------------------
    # Representations
    # ------------------------------------------------------------------
    @property
    def product_embeddings(self) -> np.ndarray:
        """Combined (input + output) embeddings, shape ``(M, dim)``.

        Skip-gram input embeddings encode *paradigmatic* similarity (same
        contexts); for install-base analysis we want *syntagmatic*
        relatedness (appearing in the same companies), which the summed
        input+output representation captures: if a co-occurs with b, a's
        input vector aligns with b's output vector and vice versa, so the
        sums align with each other.
        """
        if self._in is None or self._out is None:
            raise RuntimeError("ProductSkipGram must be fitted first")
        return self._in + self._out

    @property
    def input_embeddings(self) -> np.ndarray:
        """Raw input-side embeddings, shape ``(M, dim)``."""
        if self._in is None:
            raise RuntimeError("ProductSkipGram must be fitted first")
        return self._in

    def similarity(self, a: int, b: int) -> float:
        """Cosine similarity of two product embeddings."""
        emb = self.product_embeddings
        if not (0 <= a < len(emb) and 0 <= b < len(emb)):
            raise IndexError("product token out of range")
        va, vb = emb[a], emb[b]
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom == 0.0:
            return 0.0
        return float(va @ vb / denom)

    def most_similar(self, token: int, *, topn: int = 5) -> list[tuple[int, float]]:
        """Products nearest to ``token`` by cosine similarity."""
        emb = self.product_embeddings
        if not 0 <= token < len(emb):
            raise IndexError("product token out of range")
        check_positive_int(topn, "topn")
        norms = np.linalg.norm(emb, axis=1)
        norms[norms == 0.0] = 1.0
        sims = (emb @ emb[token]) / (norms * max(norms[token], 1e-12))
        order = np.argsort(-sims)
        result = [(int(i), float(sims[i])) for i in order if i != token]
        return result[:topn]

    def company_embeddings(self, corpus: Corpus) -> np.ndarray:
        """Mean-of-products company vectors (the aggregation of Section 3.4)."""
        emb = self.product_embeddings
        if corpus.n_products != emb.shape[0]:
            raise ValueError("corpus vocabulary does not match the embeddings")
        binary = corpus.binary_matrix()
        lengths = binary.sum(axis=1, keepdims=True)
        lengths[lengths == 0.0] = 1.0
        return (binary @ emb) / lengths
