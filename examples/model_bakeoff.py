"""Model bake-off: choose a production model the way the paper does.

Fits every generative model on the same train split and compares held-out
perplexity (Table 1's protocol) plus recommendation recall at the operating
threshold over a few sliding windows (Figure 3's protocol), then prints a
recommendation of which model to deploy.

Run with ``python examples/model_bakeoff.py`` (takes a couple of minutes).
"""

from repro import (
    ConditionalHeavyHitters,
    Corpus,
    InstallBaseSimulator,
    LatentDirichletAllocation,
    LSTMModel,
    NGramModel,
    RecommendationEvaluator,
    SimulatorConfig,
    SlidingWindowSpec,
    UnigramModel,
)


def main() -> None:
    simulator = InstallBaseSimulator(SimulatorConfig(n_companies=800))
    corpus = Corpus(simulator.generate_companies(seed=11), simulator.catalog.categories)
    split = corpus.split((0.7, 0.1, 0.2), seed=0)

    # --- Goodness of fit (Table 1 protocol) -----------------------------
    candidates = {
        "unigram": UnigramModel(),
        "bigram": NGramModel(order=2),
        "trigram": NGramModel(order=3),
        "lda_3": LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=100, seed=0
        ),
        "lda_4": LatentDirichletAllocation(
            n_topics=4, inference="variational", n_iter=100, seed=0
        ),
        "lstm_200": LSTMModel(
            hidden=200, n_layers=1, n_epochs=14, validation=split.validation, seed=0
        ),
    }
    perplexities = {}
    for name, model in candidates.items():
        model.fit(split.train)
        perplexities[name] = model.perplexity(split.test)
    print("held-out perplexity (lower is better):")
    for name, value in sorted(perplexities.items(), key=lambda kv: kv[1]):
        print(f"  {name:<10} {value:6.2f}")

    # --- Recommendation accuracy (Figure 3 protocol, reduced) -----------
    evaluator = RecommendationEvaluator(
        corpus,
        spec=SlidingWindowSpec(n_windows=5),
        thresholds=[0.05, 0.1],
        retrain_per_window=False,
    )
    curves = evaluator.evaluate(
        {
            "lda_3": lambda: LatentDirichletAllocation(
                n_topics=3, inference="variational", n_iter=80, seed=0
            ),
            "chh": lambda: ConditionalHeavyHitters(depth=2),
            "lstm_200": lambda: LSTMModel(hidden=200, n_layers=1, n_epochs=10, seed=0),
        }
    )
    print("\nrecommendation accuracy at phi = 0.1 (recall / precision / F1):")
    for name, curve in curves.items():
        recall = curve.recall(0.1)[0]
        precision = curve.precision(0.1)[0]
        f1 = curve.f1(0.1)[0]
        print(f"  {name:<10} {recall:.3f} / {precision:.3f} / {f1:.3f}")

    # --- Verdict ---------------------------------------------------------
    best_fit = min(perplexities, key=perplexities.get)
    best_recall = max(curves, key=lambda n: curves[n].recall(0.1)[0])
    print(f"\nbest goodness of fit:      {best_fit}")
    print(f"best recommendation recall: {best_recall}")
    if best_fit.startswith("lda"):
        print(
            "verdict: deploy LDA — best fit, competitive recommendations, "
            "and interpretable topics (the paper's conclusion)."
        )
    else:
        print(f"verdict: {best_fit} fits best on this corpus; inspect before deploying.")


if __name__ == "__main__":
    main()
