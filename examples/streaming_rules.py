"""Streaming association rules: bounded-memory CHH over a live feed.

The CHH line of work the paper builds on targets *real-time* discovery of
conditional heavy hitters in streams.  This example replays the synthetic
install-base records in timestamp order as a stream, maintains a
bounded-memory :class:`StreamingCHH` sketch, and compares its rules with
the exact (full-count) table at the end — the trade-off a production
deployment would care about.

Run with ``python examples/streaming_rules.py``.
"""

from repro import Corpus, InstallBaseSimulator, SimulatorConfig
from repro.models.chh import ConditionalHeavyHitters, StreamingCHH


def main() -> None:
    simulator = InstallBaseSimulator(SimulatorConfig(n_companies=600))
    corpus = Corpus(simulator.generate_companies(seed=5), simulator.catalog.categories)
    sequences = corpus.sequences()

    # Exact CHH: the offline reference.
    exact = ConditionalHeavyHitters(depth=1, min_context_count=10).fit(corpus)
    reference = exact.heavy_hitters(min_conditional=0.12)
    print(f"exact CHH found {len(reference)} rules with conditional >= 0.12")

    # Streaming CHH with a tight memory budget.
    sketch = StreamingCHH(depth=1, context_capacity=64, successor_capacity=8)
    for seq in sequences:
        sketch.update_sequence(seq)
    print(f"stream consumed {sketch.n_seen} products with 64-context budget\n")

    # How well does the sketch reproduce the strongest exact rules?
    print(f"{'rule':<42} {'exact':>6} {'sketch':>7}")
    agreements = 0
    for context, item, conditional in reference[:12]:
        estimate = sketch.conditional(context, vocab_size=corpus.n_products)[item]
        left = " -> ".join(corpus.category(t) for t in context)
        right = corpus.category(item)
        flag = "ok" if abs(estimate - conditional) < 0.15 else "off"
        agreements += flag == "ok"
        print(f"{left} => {right:<22} {conditional:>6.2f} {estimate:>7.2f}  {flag}")
    print(f"\n{agreements}/{min(len(reference), 12)} strongest rules within 0.15")


if __name__ == "__main__":
    main()
