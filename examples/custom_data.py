"""Bring your own data: run the pipeline from a CSV install-base feed.

Adopters don't have our simulator — they have a provider feed.  This
example writes a simulated universe to the library's CSV interchange
format (so you can inspect what the loader expects), then runs the whole
pipeline *from the file*: load, aggregate to domestic companies, build the
corpus, fit LDA, and produce a recommendation.

In production, replace the export step with your own ``records.csv``; the
expected columns are documented in :mod:`repro.data.io`.

Run with ``python examples/custom_data.py``.
"""

import tempfile
from pathlib import Path

from repro import (
    Corpus,
    InstallBaseSimulator,
    LatentDirichletAllocation,
    SimulatorConfig,
    ThresholdRecommender,
)
from repro.data.io import load_companies_csv, write_records_csv


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        feed = Path(tmp) / "records.csv"

        # --- Pretend this CSV came from your data provider --------------
        simulator = InstallBaseSimulator(SimulatorConfig(n_companies=300))
        universe = simulator.generate(seed=21)
        n_rows = write_records_csv(universe, feed)
        print(f"wrote {n_rows} install records to {feed.name}")
        with open(feed) as handle:
            for line in [next(handle) for __ in range(3)]:
                print("  " + line.rstrip())

        # --- The pipeline, starting from the file -----------------------
        companies = load_companies_csv(feed, min_confidence="medium")
        print(f"\nloaded and aggregated {len(companies)} domestic companies")

        corpus = Corpus.from_companies(companies)
        split = corpus.split((0.7, 0.1, 0.2), seed=0)
        lda = LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=80, seed=0
        ).fit(split.train)
        print(f"LDA(3) held-out perplexity: {lda.perplexity(split.test):.2f}")

        company = split.test.companies[0]
        history = [corpus.token(c) for c, __ in company.sorted_categories()]
        recommender = ThresholdRecommender(lda, threshold=0.05)
        picks = [corpus.category(t) for t in recommender.recommend(history)[:3]]
        print(f"\n{company.name} owns {sorted(company.categories)}")
        print(f"recommended: {picks}")


if __name__ == "__main__":
    main()
