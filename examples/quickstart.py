"""Quickstart: simulate an install-base universe, fit LDA, recommend.

Runs in a few seconds::

    python examples/quickstart.py
"""

from repro import (
    Corpus,
    InstallBaseSimulator,
    LatentDirichletAllocation,
    SimulatorConfig,
    ThresholdRecommender,
)


def main() -> None:
    # 1. Generate a synthetic universe standing in for the proprietary
    #    HG-Data-style feed: 500 companies over the paper's 38 hardware
    #    product categories, with D-U-N-S identifiers and dated records.
    simulator = InstallBaseSimulator(SimulatorConfig(n_companies=500))
    companies = simulator.generate_companies(seed=0)
    corpus = Corpus(companies, simulator.catalog.categories)
    print(f"corpus: {corpus.n_companies} companies x {corpus.n_products} categories")

    # 2. Split 70/10/20 and fit the paper's winning model: LDA with a small
    #    number of latent topics on the binary company-product matrix.
    split = corpus.split((0.7, 0.1, 0.2), seed=0)
    lda = LatentDirichletAllocation(
        n_topics=3, inference="variational", n_iter=100, seed=0
    ).fit(split.train)
    print(f"LDA(3) held-out perplexity: {lda.perplexity(split.test):.2f}")

    # 3. Inspect the learned structure: each topic's strongest products.
    for topic in range(3):
        top = lda.phi[topic].argsort()[::-1][:5]
        names = ", ".join(corpus.category(int(t)) for t in top)
        print(f"topic {topic}: {names}")

    # 4. Recommend products for a company given its purchase history.
    company = split.test.companies[0]
    history = [corpus.token(c) for c, __ in company.sorted_categories()]
    recommender = ThresholdRecommender(lda, threshold=0.05)
    recommendations = recommender.recommend(history)
    print(f"\ncompany {company.name} owns: {sorted(company.categories)}")
    print(
        "recommended next products:",
        [corpus.category(t) for t in recommendations[:5]],
    )


if __name__ == "__main__":
    main()
