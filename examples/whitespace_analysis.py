"""White-space analysis: the paper's motivating sales scenario (Section 1).

A hardware provider wants to find *new* business at companies similar to
its existing clients: "install base information can be used to identify
companies that are similar to existing clients and therefore have a high
potential of becoming new customers by acquiring certain sets of products."

The pipeline below is the deployed tool of Section 6 end to end:

1. learn LDA company representations on the external (HG-Data-style) feed;
2. join with the provider's internal sales database via record linkage;
3. for every high-value non-client, find its most similar existing clients
   and surface the products those clients own but the prospect lacks;
4. filter by firmographics (industry, headcount).

Run with ``python examples/whitespace_analysis.py``.
"""

from repro import (
    Corpus,
    FirmographicFilter,
    InstallBaseSimulator,
    InternalSalesDatabase,
    LatentDirichletAllocation,
    SalesRecommendationTool,
    SimulatorConfig,
)
from repro.data.industries import industry_name
from repro.data.linkage import CompanyNameMatcher


def main() -> None:
    # External universe and internal sales records.
    simulator = InstallBaseSimulator(SimulatorConfig(n_companies=800))
    companies = simulator.generate_companies(seed=3)
    corpus = Corpus(companies, simulator.catalog.categories)
    internal = InternalSalesDatabase(companies, client_rate=0.35, seed=3)

    # Record linkage: in production the external and internal databases
    # disagree on company names; the matcher resolves them.  Here we link a
    # noisy rendition of the first few names back to the registry.
    matcher = CompanyNameMatcher([c.name for c in companies])
    noisy = [companies[i].name.upper().replace("Inc.", "Incorporated") for i in range(3)]
    linked = sum(1 for q in noisy if matcher.match(q) is not None)
    print(f"record linkage: matched {linked}/{len(noisy)} noisy names\n")

    # Company representations from the best model of the paper.
    lda = LatentDirichletAllocation(
        n_topics=3, inference="variational", n_iter=100, seed=0
    ).fit(corpus)
    tool = SalesRecommendationTool(corpus, lda.company_features(corpus), internal)

    # Score non-clients by the total whitespace strength of their top
    # recommendations — a simple prioritised prospect list.
    prospects = []
    for company in companies:
        if internal.is_client(company.duns.value):
            continue
        recommendations = tool.recommend_products(
            company.duns.value, k_neighbors=15, top_n=3
        )
        if recommendations:
            total = sum(r.strength for r in recommendations)
            prospects.append((total, company, recommendations))
    prospects.sort(key=lambda item: -item[0])

    print("top prospects by whitespace strength:")
    for total, company, recommendations in prospects[:5]:
        record = internal.firmographics(company.duns.value)
        print(
            f"\n  {company.name} — {industry_name(company.sic2)}, "
            f"{record.employees} employees"
        )
        for rec in recommendations:
            print(
                f"    {rec.category:<26} strength {rec.strength:.3f} "
                f"({rec.n_supporters} similar clients own it)"
            )

    # The same search restricted to one industry and mid-market headcount.
    target = prospects[0][1]
    filters = FirmographicFilter(sic2=target.sic2, min_employees=50)
    narrowed = tool.similar_companies(target.duns.value, k=5, filters=filters)
    print(f"\nsame-industry mid-market companies similar to {target.name}:")
    for hit in narrowed:
        print(f"  {hit.name:<32} similarity {hit.similarity:.3f}")


if __name__ == "__main__":
    main()
