"""Tests for month-granularity calendar arithmetic."""

import datetime as dt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.preprocessing.timeutil import (
    add_months,
    date_from_month_index,
    month_index,
    month_range,
    months_between,
)

dates = st.dates(min_value=dt.date(1980, 1, 1), max_value=dt.date(2030, 12, 31))


class TestMonthIndex:
    def test_january_year_2000(self):
        assert month_index(dt.date(2000, 1, 15)) == 2000 * 12

    def test_day_is_ignored(self):
        assert month_index(dt.date(2013, 5, 1)) == month_index(dt.date(2013, 5, 31))

    @given(dates)
    def test_roundtrip_first_of_month(self, date):
        first = date.replace(day=1)
        assert date_from_month_index(month_index(first)) == first

    def test_date_from_index_rejects_year_zero(self):
        with pytest.raises(ValueError):
            date_from_month_index(5)


class TestAddMonths:
    def test_simple(self):
        assert add_months(dt.date(2013, 1, 1), 12) == dt.date(2014, 1, 1)

    def test_clamps_day(self):
        assert add_months(dt.date(2013, 1, 31), 1) == dt.date(2013, 2, 28)

    def test_leap_year_clamp(self):
        assert add_months(dt.date(2016, 1, 31), 1) == dt.date(2016, 2, 29)

    def test_december_rollover(self):
        assert add_months(dt.date(2015, 12, 15), 1) == dt.date(2016, 1, 15)

    def test_negative_months(self):
        assert add_months(dt.date(2013, 3, 15), -2) == dt.date(2013, 1, 15)

    @given(dates, st.integers(min_value=-240, max_value=240))
    def test_month_index_advances_exactly(self, date, months):
        shifted = add_months(date, months)
        assert month_index(shifted) == month_index(date) + months

    @given(dates, st.integers(min_value=-240, max_value=240))
    def test_day_never_exceeds_original(self, date, months):
        assert add_months(date, months).day <= date.day


class TestMonthsBetween:
    def test_paper_window(self):
        # January 2013 to January 2016 spans 36 months.
        assert months_between(dt.date(2013, 1, 1), dt.date(2016, 1, 31)) == 36

    def test_negative_when_reversed(self):
        assert months_between(dt.date(2016, 1, 1), dt.date(2013, 1, 1)) == -36


class TestMonthRange:
    def test_stride_two_matches_paper_windows(self):
        starts = list(
            month_range(dt.date(2013, 1, 1), dt.date(2015, 2, 1), stride=2)
        )
        assert len(starts) == 13
        assert starts[0] == dt.date(2013, 1, 1)
        assert starts[-1] == dt.date(2015, 1, 1)

    def test_empty_range(self):
        assert list(month_range(dt.date(2015, 1, 1), dt.date(2015, 1, 1))) == []

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            list(month_range(dt.date(2013, 1, 1), dt.date(2014, 1, 1), stride=0))
