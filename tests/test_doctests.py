"""Run the doctests embedded in docstrings."""

import doctest

import repro.data.synthetic


def test_synthetic_doctests():
    results = doctest.testmod(repro.data.synthetic, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1
