"""Tests for the messy-world scenario packs and their ground-truth manifests."""

import dataclasses

import pytest

from repro.data.columnar import open_corpus, write_corpus
from repro.data.industries import is_valid_sic2
from repro.scenarios import (
    AliasCorruption,
    ChurnWaveCorruption,
    CorruptionManifest,
    MergerCorruption,
    ScenarioPack,
    available_packs,
    build_pack,
    build_scenario,
    load_scenario_manifest,
    write_scenario,
)


class TestDeterminism:
    def test_same_seed_same_digest_same_fingerprint(self, corpus):
        first = build_scenario(corpus, "messy-world", seed=11)
        second = build_scenario(corpus, "messy-world", seed=11)
        assert first.manifest.digest() == second.manifest.digest()
        assert first.corpus.fingerprint() == second.corpus.fingerprint()
        assert first.manifest.result_fingerprint == first.corpus.fingerprint()
        assert first.manifest.source_fingerprint == corpus.fingerprint()

    def test_different_seed_differs(self, corpus):
        first = build_scenario(corpus, "messy-world", seed=11)
        second = build_scenario(corpus, "messy-world", seed=12)
        assert first.manifest.digest() != second.manifest.digest()
        assert first.corpus.fingerprint() != second.corpus.fingerprint()

    def test_appending_a_generator_preserves_earlier_draws(self, corpus):
        alias_only = ScenarioPack("a", [AliasCorruption(rate=0.2)], seed=3)
        extended = ScenarioPack(
            "b", [AliasCorruption(rate=0.2), MergerCorruption(rate=0.1)], seed=3
        )
        short_events = alias_only.apply(corpus).manifest.by_kind("alias")
        long_events = extended.apply(corpus).manifest.by_kind("alias")
        assert short_events == long_events

    def test_columnar_corpus_corrupts_identically(self, corpus, tmp_path):
        write_corpus(corpus, tmp_path / "clean")
        columnar = open_corpus(tmp_path / "clean")
        in_memory = build_scenario(corpus, "messy-world", seed=4)
        from_disk = build_scenario(columnar, "messy-world", seed=4)
        assert in_memory.manifest.digest() == from_disk.manifest.digest()
        assert in_memory.corpus.fingerprint() == from_disk.corpus.fingerprint()


class TestManifest:
    def test_round_trip_and_digest_check(self, corpus, tmp_path):
        manifest = build_scenario(corpus, "mna", seed=2).manifest
        path = manifest.save(tmp_path / "manifest.json")
        loaded = CorruptionManifest.load(path)
        assert loaded == manifest
        assert loaded.digest() == manifest.digest()

    def test_tampered_manifest_rejected(self, corpus, tmp_path):
        manifest = build_scenario(corpus, "aliases", seed=2).manifest
        path = manifest.save(tmp_path / "manifest.json")
        text = path.read_text().replace('"alias"', '"aliaz"', 1)
        path.write_text(text)
        with pytest.raises(ValueError, match="digest mismatch"):
            CorruptionManifest.load(path)

    def test_merger_aliases_map_absorbed_to_survivor(self, corpus):
        result = build_scenario(corpus, "mna", seed=6)
        aliases = result.manifest.merger_aliases()
        assert aliases
        surviving = {str(c.duns) for c in result.corpus.companies}
        for absorbed, survivor in aliases.items():
            assert absorbed not in surviving
            assert survivor in surviving

    def test_packs_registry(self):
        packs = available_packs()
        assert set(packs) == {"messy-world", "aliases", "drift", "mna"}
        for name in packs:
            assert build_pack(name, seed=1).seed == 1
        with pytest.raises(ValueError, match="unknown scenario pack"):
            build_pack("nope")


class TestGenerators:
    def test_alias_changes_name_only(self, corpus):
        result = build_scenario(corpus, "aliases", seed=9)
        by_duns = {str(c.duns): c for c in corpus.companies}
        corrupted_by_duns = {str(c.duns): c for c in result.corpus.companies}
        events = result.manifest.by_kind("alias")
        assert events
        for event in events:
            clean = by_duns[event.duns]
            dirty = corrupted_by_duns[event.duns]
            assert event.before == clean.name
            assert event.after == dirty.name
            assert dirty.name != clean.name
            assert dirty.first_seen == clean.first_seen
            assert dirty.sic2 == clean.sic2
            assert "flavour" in event.detail

    def test_missing_field_nulls_recorded_attribute(self, corpus):
        result = build_scenario(corpus, "messy-world", seed=9)
        corrupted_by_duns = {str(c.duns): c for c in result.corpus.companies}
        events = result.manifest.by_kind("missing_field")
        assert events
        checked = 0
        for event in events:
            assert event.field in ("country", "name")
            company = corrupted_by_duns.get(event.duns)
            if company is None:
                continue  # absorbed by a later merger in the same pack
            assert getattr(company, event.field) == ""
            checked += 1
        assert checked > 0

    def test_conflicting_label_swaps_to_valid_sic2(self, corpus):
        result = build_scenario(corpus, "messy-world", seed=9)
        by_duns = {str(c.duns): c for c in corpus.companies}
        corrupted_by_duns = {str(c.duns): c for c in result.corpus.companies}
        events = result.manifest.by_kind("conflicting_label")
        assert events
        checked = 0
        for event in events:
            assert event.field == "sic2"
            dirty = corrupted_by_duns.get(event.duns)
            if dirty is None:
                continue  # absorbed by a later merger in the same pack
            assert dirty.sic2 != by_duns[event.duns].sic2
            assert is_valid_sic2(dirty.sic2)
            checked += 1
        assert checked > 0

    def test_merger_absorbs_site_tree(self, corpus):
        result = build_scenario(corpus, "mna", seed=7)
        by_duns = {str(c.duns): c for c in corpus.companies}
        corrupted_by_duns = {str(c.duns): c for c in result.corpus.companies}
        events = result.manifest.by_kind("merger")
        assert events
        for event in events:
            absorbed = by_duns[event.detail["absorbed"]]
            survivor_before = by_duns[event.duns]
            survivor_after = corrupted_by_duns[event.duns]
            assert event.detail["absorbed"] not in corrupted_by_duns
            assert survivor_after.n_sites == (
                survivor_before.n_sites + absorbed.n_sites
            )
            # The union history keeps the earliest adoption date per category.
            for category, date in absorbed.first_seen.items():
                assert survivor_after.first_seen[category] <= date

    def test_drift_pack_keeps_vocabulary_and_nonempty_histories(self, corpus):
        result = build_scenario(corpus, "drift", seed=7)
        assert result.corpus.vocabulary == corpus.vocabulary
        kinds = result.manifest.kinds()
        assert kinds.get("taxonomy_remap")
        assert kinds.get("adoption")
        assert kinds.get("churn")
        for company in result.corpus.companies:
            assert len(company.first_seen) >= 1

    def test_churn_generator_alone_never_empties_history(self, corpus):
        pack = ScenarioPack(
            "churn-heavy", [ChurnWaveCorruption(churn_rate=1.0)], seed=0
        )
        result = pack.apply(corpus)
        for company in result.corpus.companies:
            assert len(company.first_seen) >= 1

    def test_source_companies_not_mutated(self, corpus):
        snapshots = [
            (c.name, c.sic2, dict(c.first_seen), c.n_sites)
            for c in corpus.companies
        ]
        build_scenario(corpus, "messy-world", seed=13)
        for company, (name, sic2, first_seen, n_sites) in zip(
            corpus.companies, snapshots
        ):
            assert (company.name, company.sic2, dict(company.first_seen),
                    company.n_sites) == (name, sic2, first_seen, n_sites)


class TestWriteScenario:
    def test_write_and_reload(self, corpus, tmp_path):
        out = tmp_path / "messy"
        result = write_scenario(corpus, out, "messy-world", seed=5)
        reopened = open_corpus(out)
        assert reopened.fingerprint() == result.manifest.result_fingerprint
        sidecar = load_scenario_manifest(out)
        assert sidecar is not None
        assert sidecar.digest() == result.manifest.digest()

    def test_clean_corpus_has_no_manifest(self, corpus, tmp_path):
        write_corpus(corpus, tmp_path / "clean")
        assert load_scenario_manifest(tmp_path / "clean") is None
