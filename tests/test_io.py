"""Tests for the CSV interchange format."""

import datetime as dt

import pytest

from repro.data.corpus import Corpus
from repro.data.io import load_companies_csv, read_records_csv, write_records_csv


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def csv_path(self, universe, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "records.csv"
        n_rows = write_records_csv(universe, path)
        assert n_rows > 0
        return path

    def test_companies_round_trip_exactly(self, csv_path, universe):
        loaded = load_companies_csv(csv_path)
        original = {c.duns.value: c for c in universe.companies}
        loaded_map = {c.duns.value: c for c in loaded}
        assert set(loaded_map) == set(original)
        for duns, company in original.items():
            assert loaded_map[duns].first_seen == company.first_seen
            assert loaded_map[duns].sic2 == company.sic2
            assert loaded_map[duns].country == company.country
            assert loaded_map[duns].n_sites == company.n_sites

    def test_corpus_from_csv_matches_simulated(self, csv_path, universe, corpus):
        loaded = load_companies_csv(csv_path)
        loaded_corpus = Corpus(loaded, corpus.vocabulary)
        assert (loaded_corpus.binary_matrix() == corpus.binary_matrix()).all()
        assert loaded_corpus.sequences() == corpus.sequences()

    def test_registry_round_trips(self, csv_path, universe):
        sites, registry, sic2 = read_records_csv(csv_path)
        assert len(registry) == len(universe.registry)
        assert sic2 == universe.sic2_by_ultimate

    def test_min_confidence_filter(self, csv_path):
        permissive = load_companies_csv(csv_path, min_confidence="low")
        strict = load_companies_csv(csv_path, min_confidence="high")
        total = lambda cs: sum(len(c) for c in cs)
        assert total(strict) < total(permissive)


class TestMalformedInput:
    HEADER = (
        "duns,parent_duns,company_name,country,sic2,category,"
        "first_seen,last_seen,confidence\n"
    )

    def _write(self, tmp_path, body):
        path = tmp_path / "bad.csv"
        path.write_text(self.HEADER + body)
        return path

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("duns,category\n000000000,OS\n")
        with pytest.raises(ValueError, match="missing columns"):
            read_records_csv(path)

    def test_invalid_duns_rejected_with_line_number(self, tmp_path):
        path = self._write(tmp_path, "123,,X,US,80,OS,2000-01-01,2000-01-01,high\n")
        with pytest.raises(ValueError, match="line 2"):
            read_records_csv(path)

    def test_bad_date_rejected(self, tmp_path):
        path = self._write(
            tmp_path, "000000000,,X,US,80,OS,01/02/2000,2000-01-01,high\n"
        )
        with pytest.raises(ValueError, match="ISO"):
            read_records_csv(path)

    def test_bad_sic2_rejected(self, tmp_path):
        path = self._write(
            tmp_path, "000000000,,X,US,eighty,OS,2000-01-01,2000-01-01,high\n"
        )
        with pytest.raises(ValueError, match="sic2"):
            read_records_csv(path)

    def test_bad_confidence_rejected(self, tmp_path):
        path = self._write(
            tmp_path, "000000000,,X,US,80,OS,2000-01-01,2000-01-01,certain\n"
        )
        with pytest.raises(ValueError, match="confidence"):
            read_records_csv(path)

    def test_dangling_parent_rejected(self, tmp_path):
        path = self._write(
            tmp_path,
            "000000018,000000026,X,US,80,OS,2000-01-01,2000-01-01,high\n",
        )
        with pytest.raises(ValueError, match="unresolvable"):
            read_records_csv(path)

    def test_hand_written_feed_loads(self, tmp_path):
        body = (
            "000000000,,Acme Corp,US,80,server_HW,2004-06-15,2015-11-02,high\n"
            "000000018,000000000,Acme Site,US,,DBMS,2006-01-20,2014-03-11,medium\n"
        )
        path = self._write(tmp_path, body)
        companies = load_companies_csv(path)
        assert len(companies) == 1
        company = companies[0]
        assert company.categories == {"server_HW", "DBMS"}
        assert company.first_seen["server_HW"] == dt.date(2004, 6, 15)
        assert company.n_sites == 2
