"""Tests for the TF-IDF transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.preprocessing.tfidf import TfidfTransform

binary_matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 12), st.integers(2, 10)),
    elements=st.sampled_from([0.0, 1.0]),
)


class TestFit:
    def test_requires_fit_before_transform(self):
        with pytest.raises(RuntimeError, match="fitted"):
            TfidfTransform().transform(np.eye(3))

    def test_idf_property_requires_fit(self):
        with pytest.raises(RuntimeError):
            __ = TfidfTransform().idf

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="binary"):
            TfidfTransform().fit(np.array([[0.5, 1.0]]))

    def test_rare_products_weigh_more(self):
        matrix = np.array(
            [[1, 1], [1, 0], [1, 0], [1, 0]], dtype=float
        )  # column 0 universal, column 1 rare
        transform = TfidfTransform().fit(matrix)
        assert transform.idf[1] > transform.idf[0]

    def test_unsmoothed_universal_column_zeroed(self):
        matrix = np.array([[1, 1], [1, 0]], dtype=float)
        transform = TfidfTransform(smooth=False).fit(matrix)
        assert transform.idf[0] == 0.0
        assert transform.idf[1] > 0.0

    def test_unsmoothed_absent_column_zero(self):
        matrix = np.array([[1, 0], [1, 0]], dtype=float)
        transform = TfidfTransform(smooth=False).fit(matrix)
        assert transform.idf[1] == 0.0


class TestTransform:
    def test_shape_preserved(self):
        matrix = np.array([[1, 0, 1], [0, 1, 1]], dtype=float)
        out = TfidfTransform().fit_transform(matrix)
        assert out.shape == matrix.shape

    def test_zeros_stay_zero(self):
        matrix = np.array([[1, 0, 1], [0, 1, 1]], dtype=float)
        out = TfidfTransform().fit_transform(matrix)
        assert np.all(out[matrix == 0.0] == 0.0)

    def test_l2_rows_have_unit_norm(self):
        matrix = np.array([[1, 0, 1], [0, 1, 1]], dtype=float)
        out = TfidfTransform(norm="l2").fit_transform(matrix)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_l1_rows_sum_to_one(self):
        matrix = np.array([[1, 0, 1], [0, 1, 1]], dtype=float)
        out = TfidfTransform(norm="l1").fit_transform(matrix)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_norm_none_returns_raw_weights(self):
        matrix = np.array([[1, 1], [1, 0]], dtype=float)
        transform = TfidfTransform(norm="none").fit(matrix)
        out = transform.transform(matrix)
        assert np.allclose(out, matrix * transform.idf)

    def test_dimension_mismatch_rejected(self):
        transform = TfidfTransform().fit(np.eye(3))
        with pytest.raises(ValueError, match="columns"):
            transform.transform(np.eye(4))

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValueError):
            TfidfTransform(norm="l3")

    def test_transform_applies_train_idf_to_new_data(self):
        train = np.array([[1, 1], [1, 0], [1, 0]], dtype=float)
        transform = TfidfTransform(norm="none").fit(train)
        held_out = np.array([[1, 1]], dtype=float)
        out = transform.transform(held_out)
        assert out[0, 1] > out[0, 0]

    @settings(max_examples=40, deadline=None)
    @given(binary_matrices)
    def test_property_output_finite_and_nonnegative(self, matrix):
        out = TfidfTransform().fit_transform(matrix)
        assert np.all(np.isfinite(out))
        assert np.all(out >= 0.0)

    @settings(max_examples=40, deadline=None)
    @given(binary_matrices)
    def test_property_l2_norms_at_most_one(self, matrix):
        out = TfidfTransform(norm="l2").fit_transform(matrix)
        norms = np.linalg.norm(out, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)
        # Rows with at least one product have exactly unit norm.
        has_products = matrix.sum(axis=1) > 0
        assert np.allclose(norms[has_products], 1.0)
