"""Model-specific tests for Conditional Heavy Hitters."""

import datetime as dt

import numpy as np
import pytest

from repro.data.company import Company
from repro.data.corpus import Corpus
from repro.data.duns import DunsNumber
from repro.models.chh import ConditionalHeavyHitters, StreamingCHH


def _corpus_from_sequences(sequences, vocabulary):
    companies = []
    for i, seq in enumerate(sequences):
        first_seen = {
            vocabulary[token]: dt.date(2000, 1, 1) + dt.timedelta(days=30 * t)
            for t, token in enumerate(seq)
        }
        companies.append(
            Company(
                duns=DunsNumber.from_sequence(i),
                name=f"C{i}",
                country="US",
                sic2=80,
                first_seen=first_seen,
            )
        )
    return Corpus(companies, vocabulary)


VOCAB = ("a", "b", "c", "d", "e")


class TestExactCHH:
    def test_heavy_context_predicts_successor(self):
        corpus = _corpus_from_sequences([[0, 1, 2]] * 8, VOCAB)
        model = ConditionalHeavyHitters(depth=2, min_context_count=5).fit(corpus)
        proba = model.next_product_proba([0, 1])
        assert proba.argmax() == 2
        assert proba[2] > 0.9

    def test_light_context_backs_off(self):
        # Context (a, b) seen only twice -> below min_context_count; the
        # depth-1 context (b,) is heavy and should be used instead.
        sequences = [[0, 1, 2]] * 2 + [[3, 1, 4]] * 6
        corpus = _corpus_from_sequences(sequences, VOCAB)
        model = ConditionalHeavyHitters(depth=2, min_context_count=5).fit(corpus)
        proba = model.next_product_proba([0, 1])
        # Depth-1 context 'b' -> successor distribution dominated by 'e'.
        assert proba.argmax() == 4

    def test_unknown_context_falls_to_unigram(self):
        corpus = _corpus_from_sequences([[0, 1]] * 6, VOCAB)
        model = ConditionalHeavyHitters(depth=2, min_context_count=5).fit(corpus)
        proba = model.next_product_proba([4, 3])
        assert np.all(proba > 0.0)
        assert proba.sum() == pytest.approx(1.0)

    def test_heavy_hitters_listing(self):
        corpus = _corpus_from_sequences([[0, 1, 2]] * 8, VOCAB)
        model = ConditionalHeavyHitters(depth=2, min_context_count=5).fit(corpus)
        triples = model.heavy_hitters(min_conditional=0.5)
        pairs = {(context, item) for context, item, __ in triples}
        assert ((0,), 1) in pairs
        assert ((0, 1), 2) in pairs
        confidences = [c for __, __, c in triples]
        assert confidences == sorted(confidences, reverse=True)

    def test_invalid_parameters(self):
        with pytest.raises((ValueError, TypeError)):
            ConditionalHeavyHitters(depth=0)
        with pytest.raises(ValueError):
            ConditionalHeavyHitters(smoothing=0.0)

    def test_matches_paper_depth_default(self):
        # The paper chooses context depth 2 from its sequentiality tests.
        assert ConditionalHeavyHitters().depth == 2


class TestStreamingCHH:
    def test_tracks_frequent_transitions(self):
        stream = StreamingCHH(depth=1, context_capacity=16, successor_capacity=4)
        for __ in range(50):
            stream.update_sequence([0, 1, 2])
        proba = stream.conditional((0,), vocab_size=5)
        assert proba.argmax() == 1

    def test_bounded_memory_under_many_contexts(self):
        stream = StreamingCHH(depth=2, context_capacity=8, successor_capacity=4)
        rng = np.random.default_rng(0)
        for __ in range(200):
            stream.update_sequence(list(rng.integers(0, 20, size=6)))
        assert len(stream._successors) <= 8
        assert stream.n_seen == 200 * 6

    def test_unknown_context_uniform(self):
        stream = StreamingCHH(depth=2)
        stream.update_sequence([0, 1, 2])
        proba = stream.conditional((9, 9), vocab_size=5)
        assert np.allclose(proba, 0.2)

    def test_agrees_with_exact_on_small_stream(self, split):
        sequences = split.train.sequences()
        exact = ConditionalHeavyHitters(depth=2, min_context_count=3).fit(split.train)
        stream = StreamingCHH(depth=2, context_capacity=4096, successor_capacity=38)
        for seq in sequences:
            stream.update_sequence(seq)
        # With ample capacity the streaming estimate matches exact counts on
        # the heaviest contexts.
        top = exact.heavy_hitters(min_conditional=0.3)[:10]
        for context, item, conditional in top:
            padded = tuple([-1] * (2 - len(context)) + list(context))
            estimate = stream.conditional(padded, vocab_size=38)[item]
            assert estimate == pytest.approx(conditional, abs=0.1)

    def test_invalid_capacity(self):
        with pytest.raises((ValueError, TypeError)):
            StreamingCHH(context_capacity=0)
