"""Tests for the parallel runtime: executor, seeds, observability merge."""

import numpy as np
import pytest

from repro import obs
from repro.obs import metrics, trace
from repro.runtime import ParallelMap, derive_seed, resolve_n_jobs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset_all()
    yield
    obs.disable_all()
    obs.reset_all()


def _square(x):
    return x * x


def _draw(seed):
    return float(np.random.default_rng(seed).random())


def _instrumented(x):
    with trace.span("task.work"):
        metrics.inc("task.count")
    return x


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(7, "fig1", 2, 200) == derive_seed(7, "fig1", 2, 200)

    def test_sensitive_to_keys(self):
        assert derive_seed(7, "fig1", 1) != derive_seed(7, "fig1", 2)
        assert derive_seed(7, "fig1") != derive_seed(7, "fig2")

    def test_sensitive_to_base(self):
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_none_base_is_zero(self):
        assert derive_seed(None, "x") == derive_seed(0, "x")

    def test_in_valid_seed_range(self):
        seed = derive_seed(123, "anything", 42)
        assert 0 <= seed < 2**63


class TestResolveNJobs:
    def test_passthrough(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(4) == 4

    def test_minus_one_uses_all_cpus(self):
        assert resolve_n_jobs(-1) >= 1

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(0)
        with pytest.raises(ValueError):
            resolve_n_jobs(-2)


class TestParallelMap:
    def test_inline_preserves_order(self):
        assert ParallelMap(1).map(_square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_pool_preserves_order(self):
        assert ParallelMap(2).map(_square, range(8)) == ParallelMap(1).map(
            _square, range(8)
        )

    def test_empty_payloads(self):
        assert ParallelMap(2).map(_square, []) == []

    def test_single_payload_runs_inline(self):
        assert ParallelMap(2).map(_square, [3]) == [9]

    def test_unpicklable_fn_falls_back_inline(self):
        result = ParallelMap(2).map(lambda x: x + 1, [1, 2, 3])
        assert result == [2, 3, 4]

    def test_seeded_tasks_deterministic_across_job_counts(self):
        seeds = [derive_seed(7, "task", i) for i in range(6)]
        serial = ParallelMap(1).map(_draw, seeds)
        pooled = ParallelMap(3).map(_draw, seeds)
        assert serial == pooled

    def test_worker_counters_merge_into_parent(self):
        metrics.enable()
        ParallelMap(2).map(_instrumented, range(5))
        counters = metrics.snapshot()["counters"]
        assert counters["task.count"] == 5
        assert counters["runtime.tasks"] == 5

    def test_worker_spans_merge_into_parent_trace(self):
        obs.enable_all()
        with trace.span("parent"):
            ParallelMap(2).map(_instrumented, range(4))
        names = set()

        def collect(node):
            names.add(node["name"])
            for child in node.get("children", ()):
                collect(child)

        for root in trace.roots():
            collect(root.as_dict())
        assert "runtime.parallel_map" in names
        assert "task.work" in names

    def test_serial_path_leaves_metrics_untouched(self):
        ParallelMap(1).map(_instrumented, range(3))
        assert metrics.snapshot()["counters"] == {}
