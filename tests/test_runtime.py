"""Tests for the parallel runtime: executor, seeds, observability merge."""

import os

import numpy as np
import pytest

from repro import obs
from repro.obs import metrics, trace
from repro.runtime import (
    Ok,
    ParallelMap,
    TaskError,
    TaskFailedError,
    derive_seed,
    resolve_n_jobs,
    run_with_retries,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset_all()
    yield
    obs.disable_all()
    obs.reset_all()


def _square(x):
    return x * x


def _draw(seed):
    return float(np.random.default_rng(seed).random())


def _instrumented(x):
    with trace.span("task.work"):
        metrics.inc("task.count")
    return x


def _boom(x):
    if x == 2:
        raise ValueError("boom on 2")
    return x * 10


def _flaky(payload):
    """Fails its first attempt (per marker file), succeeds afterwards.

    The marker lives on the filesystem, so the retry is observed whether
    the attempts run inline or in different pool workers.
    """
    marker, value = payload
    try:
        os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return value
    raise RuntimeError("first attempt always fails")


def _record_run(payload):
    """Append one line per execution, so double-runs are detectable."""
    with open(payload["log"], "a") as handle:
        handle.write(f"{payload['value']}\n")
    return payload["value"]


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(7, "fig1", 2, 200) == derive_seed(7, "fig1", 2, 200)

    def test_int_and_string_keys_are_distinct(self):
        assert derive_seed(7, 1) != derive_seed(7, "1")
        assert derive_seed(7, "fig1", 2) != derive_seed(7, "fig1", "2")

    def test_sensitive_to_keys(self):
        assert derive_seed(7, "fig1", 1) != derive_seed(7, "fig1", 2)
        assert derive_seed(7, "fig1") != derive_seed(7, "fig2")

    def test_sensitive_to_base(self):
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_none_base_is_zero(self):
        assert derive_seed(None, "x") == derive_seed(0, "x")

    def test_in_valid_seed_range(self):
        seed = derive_seed(123, "anything", 42)
        assert 0 <= seed < 2**63


class TestResolveNJobs:
    def test_passthrough(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(4) == 4

    def test_minus_one_uses_all_cpus(self):
        assert resolve_n_jobs(-1) >= 1

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(0)
        with pytest.raises(ValueError):
            resolve_n_jobs(-2)


class TestParallelMap:
    def test_inline_preserves_order(self):
        assert ParallelMap(1).map(_square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_pool_preserves_order(self):
        assert ParallelMap(2).map(_square, range(8)) == ParallelMap(1).map(
            _square, range(8)
        )

    def test_empty_payloads(self):
        assert ParallelMap(2).map(_square, []) == []

    def test_single_payload_runs_inline(self):
        assert ParallelMap(2).map(_square, [3]) == [9]

    def test_unpicklable_fn_falls_back_inline(self):
        result = ParallelMap(2).map(lambda x: x + 1, [1, 2, 3])
        assert result == [2, 3, 4]

    def test_seeded_tasks_deterministic_across_job_counts(self):
        seeds = [derive_seed(7, "task", i) for i in range(6)]
        serial = ParallelMap(1).map(_draw, seeds)
        pooled = ParallelMap(3).map(_draw, seeds)
        assert serial == pooled

    def test_worker_counters_merge_into_parent(self):
        metrics.enable()
        ParallelMap(2).map(_instrumented, range(5))
        counters = metrics.snapshot()["counters"]
        assert counters["task.count"] == 5
        assert counters["runtime.tasks"] == 5

    def test_worker_spans_merge_into_parent_trace(self):
        obs.enable_all()
        with trace.span("parent"):
            ParallelMap(2).map(_instrumented, range(4))
        names = set()

        def collect(node):
            names.add(node["name"])
            for child in node.get("children", ()):
                collect(child)

        for root in trace.roots():
            collect(root.as_dict())
        assert "runtime.parallel_map" in names
        assert "task.work" in names

    def test_serial_path_leaves_metrics_untouched(self):
        ParallelMap(1).map(_instrumented, range(3))
        assert metrics.snapshot()["counters"] == {}


class TestRunWithRetries:
    def test_success_first_attempt(self):
        outcome = run_with_retries(lambda: 42)
        assert outcome == Ok(42, attempts=1)

    def test_failure_returns_task_error(self):
        outcome = run_with_retries(lambda: 1 / 0, retries=2)
        assert isinstance(outcome, TaskError)
        assert outcome.attempts == 3
        assert outcome.error_type == "ZeroDivisionError"
        assert "ZeroDivisionError" in outcome.describe()

    def test_recovers_within_retries(self, tmp_path):
        marker = str(tmp_path / "marker")
        outcome = run_with_retries(lambda: _flaky((marker, 5)), retries=1)
        assert outcome == Ok(5, attempts=2)

    def test_counts_retry_and_failure_metrics(self):
        metrics.enable()
        run_with_retries(lambda: 1 / 0, retries=2)
        counters = metrics.snapshot()["counters"]
        assert counters["runtime.task_retry"] == 2
        assert counters["runtime.task_failed"] == 1

    def test_reraise_preserves_original_exception(self):
        outcome = run_with_retries(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            outcome.reraise()

    def test_reraise_without_live_exception(self):
        error = TaskError(
            message="gone", error_type="RuntimeError", traceback="", attempts=1
        )
        with pytest.raises(TaskFailedError):
            error.reraise()


class TestMapOutcomes:
    def test_inline_isolates_failures(self):
        outcomes = ParallelMap(1).map_outcomes(_boom, range(4))
        assert [type(o) for o in outcomes] == [Ok, Ok, TaskError, Ok]
        assert [o.value for o in outcomes if isinstance(o, Ok)] == [0, 10, 30]
        assert outcomes[2].error_type == "ValueError"

    def test_pool_isolates_failures(self):
        outcomes = ParallelMap(2).map_outcomes(_boom, range(4))
        assert [type(o) for o in outcomes] == [Ok, Ok, TaskError, Ok]
        assert [o.value for o in outcomes if isinstance(o, Ok)] == [0, 10, 30]

    def test_map_still_raises_first_failure(self):
        with pytest.raises(ValueError, match="boom on 2"):
            ParallelMap(1).map(_boom, range(4))
        with pytest.raises(ValueError, match="boom on 2"):
            ParallelMap(2).map(_boom, range(4))

    def test_inline_retry_recovers(self, tmp_path):
        payloads = [(str(tmp_path / f"m{i}"), i) for i in range(3)]
        outcomes = ParallelMap(1, retries=1).map_outcomes(_flaky, payloads)
        assert outcomes == [Ok(0, attempts=2), Ok(1, attempts=2), Ok(2, attempts=2)]

    def test_pool_retry_recovers(self, tmp_path):
        payloads = [(str(tmp_path / f"m{i}"), i) for i in range(4)]
        outcomes = ParallelMap(2, retries=1).map_outcomes(_flaky, payloads)
        assert all(isinstance(o, Ok) for o in outcomes)
        assert [o.value for o in outcomes] == [0, 1, 2, 3]
        assert all(o.attempts == 2 for o in outcomes)

    def test_exhausted_retries_record_attempts(self):
        outcomes = ParallelMap(1, retries=2).map_outcomes(_boom, [2])
        assert isinstance(outcomes[0], TaskError)
        assert outcomes[0].attempts == 3

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ParallelMap(1, retries=-1)
        with pytest.raises(ValueError):
            ParallelMap(1, backoff=-0.1)
        with pytest.raises(ValueError):
            ParallelMap(1, task_timeout=0.0)


class TestPreflightPickling:
    def test_unpicklable_payload_never_double_executes(self, tmp_path):
        """Regression: the pool must not run tasks before discovering an
        unpicklable sibling and then re-run everything inline."""
        log = str(tmp_path / "runs.log")
        payloads = [{"log": log, "value": i} for i in range(3)]
        payloads.append({"log": log, "value": 3, "obj": lambda: None})
        results = ParallelMap(2).map(_record_run, payloads)
        assert results == [0, 1, 2, 3]
        lines = sorted(open(log).read().split())
        assert lines == ["0", "1", "2", "3"]

    def test_unpicklable_fn_never_double_executes(self, tmp_path):
        log = str(tmp_path / "runs.log")
        payloads = [{"log": log, "value": i} for i in range(3)]
        results = ParallelMap(2).map(
            lambda p: _record_run(p), payloads
        )
        assert results == [0, 1, 2]
        assert sorted(open(log).read().split()) == ["0", "1", "2"]
