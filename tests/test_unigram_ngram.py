"""Model-specific tests for the unigram and n-gram baselines."""

import datetime as dt

import numpy as np
import pytest

from repro.data.company import Company
from repro.data.corpus import Corpus
from repro.data.duns import DunsNumber
from repro.models.ngram import NGramModel
from repro.models.unigram import UnigramModel


def _corpus_from_sequences(sequences, vocabulary):
    """Build a corpus whose time-sorted sequences equal ``sequences``."""
    companies = []
    for i, seq in enumerate(sequences):
        first_seen = {
            vocabulary[token]: dt.date(2000, 1, 1) + dt.timedelta(days=30 * t)
            for t, token in enumerate(seq)
        }
        companies.append(
            Company(
                duns=DunsNumber.from_sequence(i),
                name=f"C{i}",
                country="US",
                sic2=80,
                first_seen=first_seen,
            )
        )
    return Corpus(companies, vocabulary)


VOCAB = ("a", "b", "c", "d")


class TestUnigram:
    def test_probabilities_match_frequencies(self):
        corpus = _corpus_from_sequences([[0, 1], [0, 2], [0, 3]], VOCAB)
        model = UnigramModel(smoothing=1e-9).fit(corpus)
        assert model.proba[0] == pytest.approx(0.5, abs=1e-6)
        assert model.proba[1] == pytest.approx(1 / 6, abs=1e-6)

    def test_probabilities_sum_to_one(self, split):
        model = UnigramModel().fit(split.train)
        assert model.proba.sum() == pytest.approx(1.0)

    def test_smoothing_keeps_unseen_products_finite(self):
        corpus = _corpus_from_sequences([[0, 1]], VOCAB)
        model = UnigramModel().fit(corpus)
        held_out = _corpus_from_sequences([[2, 3]], VOCAB)
        assert np.isfinite(model.log_prob(held_out))

    def test_history_does_not_change_prediction(self, split):
        model = UnigramModel().fit(split.train)
        assert np.allclose(
            model.next_product_proba([]), model.next_product_proba([0, 1, 2])
        )

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            UnigramModel(smoothing=0.0)


class TestNGram:
    def test_bigram_learns_transition(self):
        # 'a' is always followed by 'b'.
        corpus = _corpus_from_sequences([[0, 1], [0, 1], [0, 1], [0, 1]], VOCAB)
        model = NGramModel(order=2, interpolation=0.9).fit(corpus)
        proba = model.next_product_proba([0])
        assert proba.argmax() == 1
        assert proba[1] > 0.8

    def test_bos_context_learns_first_product(self):
        corpus = _corpus_from_sequences([[2, 0], [2, 1], [2, 3]], VOCAB)
        model = NGramModel(order=2, interpolation=0.9).fit(corpus)
        proba = model.next_product_proba([])
        assert proba.argmax() == 2

    def test_conditional_distributions_sum_to_one(self, split):
        model = NGramModel(order=2).fit(split.train)
        for history in ([], [0], [5, 3], [1, 2, 3, 4]):
            assert model.next_product_proba(history).sum() == pytest.approx(1.0)

    def test_trigram_uses_two_tokens_of_context(self):
        # 'c' follows (a, b) but 'd' follows (b, a): order matters.
        corpus = _corpus_from_sequences(
            [[0, 1, 2], [0, 1, 2], [1, 0, 3], [1, 0, 3]], VOCAB
        )
        model = NGramModel(order=3, interpolation=0.95).fit(corpus)
        assert model.next_product_proba([0, 1]).argmax() == 2
        assert model.next_product_proba([1, 0]).argmax() == 3

    def test_unseen_context_backs_off_to_unigram(self):
        corpus = _corpus_from_sequences([[0, 1], [0, 1], [2, 3]], VOCAB)
        model = NGramModel(order=2, interpolation=0.9).fit(corpus)
        backoff = model.next_product_proba([3])  # context 'd' never seen
        assert np.all(backoff > 0.0)
        assert backoff.sum() == pytest.approx(1.0)

    def test_order_one_equals_sequence_unigram(self, split):
        model = NGramModel(order=1).fit(split.train)
        assert np.allclose(
            model.next_product_proba([]), model.next_product_proba([0])
        )

    def test_sequence_log_prob_additive(self):
        corpus = _corpus_from_sequences([[0, 1, 2]], VOCAB)
        model = NGramModel(order=2).fit(corpus)
        total = model.sequence_log_prob([0, 1, 2])
        assert total < 0.0
        assert np.isfinite(total)

    def test_rules_extraction(self):
        corpus = _corpus_from_sequences([[0, 1]] * 10, VOCAB)
        model = NGramModel(order=2).fit(corpus)
        rules = model.rules(min_count=5, min_confidence=0.5)
        assert ((0,), 1) in [(ctx, nxt) for ctx, nxt, *__ in rules]
        for __, __, confidence, count in rules:
            assert confidence >= 0.5
            assert count >= 5

    def test_rules_empty_for_unigram_order(self, split):
        assert NGramModel(order=1).fit(split.train).rules() == []

    def test_invalid_parameters(self):
        with pytest.raises((ValueError, TypeError)):
            NGramModel(order=0)
        with pytest.raises(ValueError):
            NGramModel(order=2, interpolation=1.5)

    def test_bigram_beats_unigram_on_sequential_data(self, split):
        unigram = UnigramModel().fit(split.train)
        bigram = NGramModel(order=2).fit(split.train)
        assert bigram.perplexity(split.test) < unigram.perplexity(split.test)
