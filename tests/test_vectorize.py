"""Tests for sequence vectorization helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocessing.vectorize import (
    binary_matrix,
    sequence_lengths,
    sequences_to_padded_array,
)

token_sequences = st.lists(
    st.lists(st.integers(0, 9), max_size=12), min_size=1, max_size=8
)


class TestBinaryMatrix:
    def test_basic(self):
        out = binary_matrix([[0, 2], [1]], vocab_size=3)
        assert np.array_equal(out, [[1, 0, 1], [0, 1, 0]])

    def test_duplicates_collapse(self):
        out = binary_matrix([[1, 1, 1]], vocab_size=2)
        assert np.array_equal(out, [[0, 1]])

    def test_rejects_out_of_vocab(self):
        with pytest.raises(ValueError):
            binary_matrix([[5]], vocab_size=3)

    @settings(max_examples=30, deadline=None)
    @given(token_sequences)
    def test_property_row_sums_equal_distinct_tokens(self, sequences):
        out = binary_matrix(sequences, vocab_size=10)
        for row, seq in zip(out, sequences):
            assert row.sum() == len(set(seq))


class TestSequenceLengths:
    def test_lengths(self):
        assert np.array_equal(sequence_lengths([[1, 2], [], [3]]), [2, 0, 1])


class TestPaddedArray:
    def test_basic_padding(self):
        padded, mask = sequences_to_padded_array([[1, 2, 3], [4]])
        assert padded.shape == (2, 3)
        assert np.array_equal(padded[1], [4, -1, -1])
        assert np.array_equal(mask, [[True, True, True], [True, False, False]])

    def test_custom_pad_value(self):
        padded, __ = sequences_to_padded_array([[1], [2, 3]], pad_value=99)
        assert padded[0, 1] == 99

    def test_truncation_keeps_prefix(self):
        padded, mask = sequences_to_padded_array([[1, 2, 3, 4]], max_len=2)
        assert np.array_equal(padded, [[1, 2]])
        assert mask.all()

    def test_all_empty_sequences(self):
        padded, mask = sequences_to_padded_array([[], []])
        assert padded.shape == (2, 1)
        assert not mask.any()

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            sequences_to_padded_array([])

    @settings(max_examples=30, deadline=None)
    @given(token_sequences)
    def test_property_mask_matches_lengths(self, sequences):
        padded, mask = sequences_to_padded_array(sequences)
        lengths = sequence_lengths(sequences)
        assert np.array_equal(mask.sum(axis=1), lengths)

    @settings(max_examples=30, deadline=None)
    @given(token_sequences)
    def test_property_roundtrip_tokens(self, sequences):
        padded, mask = sequences_to_padded_array(sequences)
        for row, row_mask, seq in zip(padded, mask, sequences):
            assert list(row[row_mask]) == seq
