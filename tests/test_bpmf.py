"""Model-specific tests for Bayesian Probabilistic Matrix Factorization."""

import numpy as np
import pytest

from repro.models.bpmf import BayesianPMF


class TestFitRatings:
    def test_recovers_low_rank_structure(self, rng):
        # A genuinely low-rank, partially observed matrix: BPMF must predict
        # held-out cells far better than the global mean.
        n_rows, n_cols, rank = 40, 15, 2
        u = rng.normal(size=(n_rows, rank))
        v = rng.normal(size=(n_cols, rank))
        truth = 1.0 / (1.0 + np.exp(-(u @ v.T)))
        mask = rng.random(truth.shape) < 0.6
        rows, cols = np.nonzero(mask)
        model = BayesianPMF(
            n_factors=4, n_iter=60, rating_precision=16.0, seed=0
        ).fit_ratings(rows, cols, truth[rows, cols], shape=truth.shape)
        predicted = model.prediction_matrix
        observed_error = np.abs(predicted[rows, cols] - truth[rows, cols]).mean()
        baseline_error = np.abs(
            truth[rows, cols].mean() - truth[rows, cols]
        ).mean()
        assert observed_error < baseline_error / 2.0

    def test_validates_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            BayesianPMF().fit_ratings([0], [0, 1], [1.0], shape=(2, 2))

    def test_validates_indices(self):
        with pytest.raises(ValueError, match="exceed"):
            BayesianPMF().fit_ratings([5], [0], [1.0], shape=(2, 2))

    def test_requires_ratings(self):
        with pytest.raises(ValueError, match="at least one"):
            BayesianPMF().fit_ratings([], [], [], shape=(2, 2))

    def test_deterministic_given_seed(self, split):
        a = BayesianPMF(n_factors=4, n_iter=10, seed=3).fit(split.train)
        b = BayesianPMF(n_factors=4, n_iter=10, seed=3).fit(split.train)
        assert np.allclose(a.prediction_matrix, b.prediction_matrix)


class TestDegeneracyOnDenseBinary:
    """The Figure 5/6 phenomenon: positives-only training degenerates."""

    @pytest.fixture(scope="class")
    def fitted(self, split):
        return BayesianPMF(n_factors=8, n_iter=30, seed=0).fit(split.train)

    def test_scores_concentrate_near_one(self, fitted):
        scores = fitted.recommendation_scores()
        # Paper Figure 5: virtually the whole boxplot sits in [0.9, 1.0].
        assert np.median(scores) > 0.95
        assert (scores >= 0.9).mean() > 0.9

    def test_scores_clipped_to_unit_interval(self, fitted):
        scores = fitted.recommendation_scores()
        assert scores.min() >= 0.0
        assert scores.max() <= 1.0

    def test_low_thresholds_recommend_everything(self, fitted, split):
        predictions = fitted.prediction_matrix
        fraction_above = (predictions >= 0.9).mean()
        assert fraction_above > 0.9

    def test_observing_negatives_breaks_degeneracy(self, split):
        model = BayesianPMF(
            n_factors=8, n_iter=30, observe_negatives=True, seed=0
        ).fit(split.train)
        scores = model.recommendation_scores()
        # With the zeros observed the score distribution spreads out.
        assert np.median(scores) < 0.9
        assert scores.std() > 0.15


class TestAuxiliary:
    def test_scores_for_company(self, split):
        model = BayesianPMF(n_factors=4, n_iter=10, seed=0).fit(split.train)
        row = split.train.binary_matrix()[0]
        scores = model.scores_for_company(row)
        assert scores.shape == (38,)
        assert np.all((scores >= 0.0) & (scores <= 1.0))

    def test_scores_for_company_validates_length(self, split):
        model = BayesianPMF(n_factors=4, n_iter=10, seed=0).fit(split.train)
        with pytest.raises(ValueError):
            model.scores_for_company(np.ones(10))

    def test_scores_for_empty_company_is_mean_profile(self, split):
        model = BayesianPMF(n_factors=4, n_iter=10, seed=0).fit(split.train)
        assert np.allclose(
            model.scores_for_company(np.zeros(38)),
            model.prediction_matrix.mean(axis=0),
        )

    def test_invalid_constructor_args(self):
        with pytest.raises((ValueError, TypeError)):
            BayesianPMF(n_factors=0)
        with pytest.raises(ValueError):
            BayesianPMF(rating_precision=-1.0)


class TestBatchedGramParity:
    """The equal-count batched pre-assembly must not move a single bit.

    ``_sample_factors`` groups rows by rating count and computes their
    precision/mean contributions with stacked matmuls; this replays the
    historical per-row loop and demands bit-identical draws.
    """

    @staticmethod
    def _reference_sample_factors(model, factors, other, index, hyper, rng):
        # Verbatim replica of the pre-batching per-row loop.
        mu, precision = hyper
        alpha = model.rating_precision
        fresh = np.empty_like(factors)
        prior_term = precision @ mu
        for i in range(factors.shape[0]):
            entry = index.get(i)
            if entry is None:
                cov = np.linalg.inv(precision)
                fresh[i] = rng.multivariate_normal(mu, (cov + cov.T) / 2.0)
                continue
            idx, ratings = entry
            v = other[idx]
            post_precision = precision + alpha * v.T @ v
            post_cov = np.linalg.inv(post_precision)
            post_mean = post_cov @ (prior_term + alpha * v.T @ ratings)
            fresh[i] = rng.multivariate_normal(
                post_mean, (post_cov + post_cov.T) / 2.0
            )
        return fresh

    def test_sample_factors_bit_identical_to_per_row_loop(self, rng):
        d, n_rows, n_cols = 5, 30, 20
        model = BayesianPMF(n_factors=d, seed=0)
        factors = rng.normal(size=(n_rows, d))
        other = rng.normal(size=(n_cols, d))
        # Ragged index with empty rows (2 and 13) and varied counts.
        index = {}
        for i in range(n_rows):
            if i in (2, 13):
                continue
            k = int(rng.integers(1, n_cols))
            idx = rng.choice(n_cols, size=k, replace=False)
            index[i] = (idx, rng.normal(size=k))
        a_mat = np.linalg.qr(rng.normal(size=(d, d)))[0]
        precision = a_mat @ np.diag(rng.uniform(0.5, 2.0, size=d)) @ a_mat.T
        precision = (precision + precision.T) / 2.0
        hyper = (rng.normal(size=d), precision)
        draw_new = model._sample_factors(
            factors, other, index, hyper, np.random.default_rng(42)
        )
        draw_ref = self._reference_sample_factors(
            model, factors, other, index, hyper, np.random.default_rng(42)
        )
        assert np.array_equal(draw_new, draw_ref)

    def test_full_fit_bit_identical_to_per_row_loop(self, rng):
        # End to end: patch _sample_factors back to the per-row replica and
        # compare fitted predictions bit-for-bit.
        n_rows, n_cols = 25, 12
        mask = rng.random((n_rows, n_cols)) < 0.3
        mask[4] = False  # an empty row exercises the hoisted prior draw
        rows, cols = np.nonzero(mask)
        values = rng.integers(1, 6, size=rows.size).astype(np.float64)
        kwargs = dict(n_factors=4, n_iter=8, seed=3)
        fast = BayesianPMF(**kwargs).fit_ratings(
            rows, cols, values, shape=(n_rows, n_cols)
        )
        slow = BayesianPMF(**kwargs)
        slow._sample_factors = (
            lambda factors, other, index, hyper, rng_: self._reference_sample_factors(
                slow, factors, other, index, hyper, rng_
            )
        )
        slow.fit_ratings(rows, cols, values, shape=(n_rows, n_cols))
        assert np.array_equal(fast._prediction, slow._prediction)
        assert np.array_equal(fast._item_factors, slow._item_factors)
