"""Model-specific tests for Bayesian Probabilistic Matrix Factorization."""

import numpy as np
import pytest

from repro.models.bpmf import BayesianPMF


class TestFitRatings:
    def test_recovers_low_rank_structure(self, rng):
        # A genuinely low-rank, partially observed matrix: BPMF must predict
        # held-out cells far better than the global mean.
        n_rows, n_cols, rank = 40, 15, 2
        u = rng.normal(size=(n_rows, rank))
        v = rng.normal(size=(n_cols, rank))
        truth = 1.0 / (1.0 + np.exp(-(u @ v.T)))
        mask = rng.random(truth.shape) < 0.6
        rows, cols = np.nonzero(mask)
        model = BayesianPMF(
            n_factors=4, n_iter=60, rating_precision=16.0, seed=0
        ).fit_ratings(rows, cols, truth[rows, cols], shape=truth.shape)
        predicted = model.prediction_matrix
        observed_error = np.abs(predicted[rows, cols] - truth[rows, cols]).mean()
        baseline_error = np.abs(
            truth[rows, cols].mean() - truth[rows, cols]
        ).mean()
        assert observed_error < baseline_error / 2.0

    def test_validates_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            BayesianPMF().fit_ratings([0], [0, 1], [1.0], shape=(2, 2))

    def test_validates_indices(self):
        with pytest.raises(ValueError, match="exceed"):
            BayesianPMF().fit_ratings([5], [0], [1.0], shape=(2, 2))

    def test_requires_ratings(self):
        with pytest.raises(ValueError, match="at least one"):
            BayesianPMF().fit_ratings([], [], [], shape=(2, 2))

    def test_deterministic_given_seed(self, split):
        a = BayesianPMF(n_factors=4, n_iter=10, seed=3).fit(split.train)
        b = BayesianPMF(n_factors=4, n_iter=10, seed=3).fit(split.train)
        assert np.allclose(a.prediction_matrix, b.prediction_matrix)


class TestDegeneracyOnDenseBinary:
    """The Figure 5/6 phenomenon: positives-only training degenerates."""

    @pytest.fixture(scope="class")
    def fitted(self, split):
        return BayesianPMF(n_factors=8, n_iter=30, seed=0).fit(split.train)

    def test_scores_concentrate_near_one(self, fitted):
        scores = fitted.recommendation_scores()
        # Paper Figure 5: virtually the whole boxplot sits in [0.9, 1.0].
        assert np.median(scores) > 0.95
        assert (scores >= 0.9).mean() > 0.9

    def test_scores_clipped_to_unit_interval(self, fitted):
        scores = fitted.recommendation_scores()
        assert scores.min() >= 0.0
        assert scores.max() <= 1.0

    def test_low_thresholds_recommend_everything(self, fitted, split):
        predictions = fitted.prediction_matrix
        fraction_above = (predictions >= 0.9).mean()
        assert fraction_above > 0.9

    def test_observing_negatives_breaks_degeneracy(self, split):
        model = BayesianPMF(
            n_factors=8, n_iter=30, observe_negatives=True, seed=0
        ).fit(split.train)
        scores = model.recommendation_scores()
        # With the zeros observed the score distribution spreads out.
        assert np.median(scores) < 0.9
        assert scores.std() > 0.15


class TestAuxiliary:
    def test_scores_for_company(self, split):
        model = BayesianPMF(n_factors=4, n_iter=10, seed=0).fit(split.train)
        row = split.train.binary_matrix()[0]
        scores = model.scores_for_company(row)
        assert scores.shape == (38,)
        assert np.all((scores >= 0.0) & (scores <= 1.0))

    def test_scores_for_company_validates_length(self, split):
        model = BayesianPMF(n_factors=4, n_iter=10, seed=0).fit(split.train)
        with pytest.raises(ValueError):
            model.scores_for_company(np.ones(10))

    def test_scores_for_empty_company_is_mean_profile(self, split):
        model = BayesianPMF(n_factors=4, n_iter=10, seed=0).fit(split.train)
        assert np.allclose(
            model.scores_for_company(np.zeros(38)),
            model.prediction_matrix.mean(axis=0),
        )

    def test_invalid_constructor_args(self):
        with pytest.raises((ValueError, TypeError)):
            BayesianPMF(n_factors=0)
        with pytest.raises(ValueError):
            BayesianPMF(rating_precision=-1.0)
