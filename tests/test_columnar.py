"""Round-trip and fault tests for the columnar on-disk corpus."""

import datetime as dt
import json
import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.columnar import (
    MANIFEST_NAME,
    ColumnarCorpus,
    CorpusFormatError,
    manifest_fingerprint,
    open_corpus,
    simulate_to_columnar,
    write_corpus,
)
from repro.data.company import Company
from repro.data.corpus import Corpus
from repro.data.duns import DunsNumber
from repro.experiments import make_experiment_data
from repro.runtime import fingerprint_corpus


def _company(i, first_seen, *, country="US", sic2=80, n_sites=1):
    return Company(
        duns=DunsNumber.from_sequence(i),
        name=f"Company {i}",
        country=country,
        sic2=sic2,
        first_seen=first_seen,
        n_sites=n_sites,
    )


@pytest.fixture()
def corpus():
    companies = [
        _company(0, {"OS": dt.date(2000, 1, 1), "DBMS": dt.date(2005, 1, 1)}),
        _company(1, {"OS": dt.date(2001, 1, 1)}, country="DE", sic2=35),
        _company(2, {"retail": dt.date(2014, 6, 1), "OS": dt.date(2010, 1, 1)}),
        _company(3, {"DBMS": dt.date(1999, 3, 2)}, n_sites=4),
    ]
    return Corpus(companies, ("DBMS", "OS", "retail"))


@pytest.fixture()
def reopened(corpus, tmp_path):
    write_corpus(corpus, tmp_path / "c")
    return open_corpus(tmp_path / "c")


def _assert_equivalent(left: Corpus, right: Corpus):
    """Both corpora expose bit-identical views through the public API."""
    assert left.vocabulary == right.vocabulary
    assert left.n_companies == right.n_companies
    assert np.array_equal(left.binary_matrix(), right.binary_matrix())
    assert list(left.sequences()) == list(right.sequences())
    assert list(left.dated_sequences()) == list(right.dated_sequences())
    assert np.array_equal(left.industries(), right.industries())
    assert left.total_products() == right.total_products()
    assert list(left.companies) == list(right.companies)
    assert left.fingerprint() == right.fingerprint()


class TestRoundTrip:
    def test_write_reopen_is_bit_identical(self, corpus, reopened):
        assert isinstance(reopened, ColumnarCorpus)
        _assert_equivalent(corpus, reopened)

    def test_manifest_fingerprint_matches_runtime_fingerprint(
        self, corpus, tmp_path
    ):
        manifest = write_corpus(corpus, tmp_path / "c")
        assert manifest["fingerprint"] == fingerprint_corpus(corpus)
        assert manifest_fingerprint(tmp_path / "c") == fingerprint_corpus(corpus)

    def test_split_views_match_in_memory_backend(self, tmp_path):
        data = make_experiment_data(60, seed=3)
        write_corpus(data.corpus, tmp_path / "c")
        columnar = open_corpus(tmp_path / "c")
        for mem_part, col_part in zip(
            data.corpus.split((0.7, 0.1, 0.2), seed=1),
            columnar.split((0.7, 0.1, 0.2), seed=1),
        ):
            _assert_equivalent(mem_part, col_part)

    def test_truncated_before_matches_in_memory_backend(self, corpus, reopened):
        cutoff = dt.date(2004, 1, 1)
        _assert_equivalent(
            corpus.truncated_before(cutoff), reopened.truncated_before(cutoff)
        )

    def test_restrict_vocabulary_matches_in_memory_backend(self, corpus, reopened):
        _assert_equivalent(
            corpus.restrict_vocabulary(("DBMS", "OS")),
            reopened.restrict_vocabulary(("DBMS", "OS")),
        )

    def test_binary_matrix_rows_chunking(self, reopened):
        full = reopened.binary_matrix()
        chunked = np.vstack(
            [chunk for __, chunk in reopened.iter_matrix_chunks(chunk_size=2)]
        )
        assert np.array_equal(full, chunked)
        assert np.array_equal(full[[2, 0]], reopened.binary_matrix(rows=[2, 0]))

    def test_views_survive_pickling(self, reopened):
        split = reopened.split((0.5, 0.25, 0.25), seed=0)
        revived = pickle.loads(pickle.dumps(split.train))
        _assert_equivalent(split.train, revived)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(10, 30))
    def test_simulated_round_trip_property(self, tmp_path_factory, seed, n):
        target = tmp_path_factory.mktemp("prop") / "c"
        simulate_to_columnar(target, n_companies=n, seed=seed, chunk_size=n)
        in_memory = make_experiment_data(n, seed=seed).corpus
        _assert_equivalent(in_memory, open_corpus(target))


class TestStreamingBuild:
    def test_same_seed_builds_fingerprint_identically(self, tmp_path):
        a = simulate_to_columnar(tmp_path / "a", n_companies=30, seed=5, chunk_size=7)
        b = simulate_to_columnar(tmp_path / "b", n_companies=30, seed=5, chunk_size=7)
        assert a["fingerprint"] == b["fingerprint"]

    def test_single_chunk_build_matches_in_memory_universe(self, tmp_path):
        simulate_to_columnar(tmp_path / "c", n_companies=40, seed=9, chunk_size=40)
        expected = fingerprint_corpus(make_experiment_data(40, seed=9).corpus)
        assert manifest_fingerprint(tmp_path / "c") == expected

    def test_chunked_build_is_deterministic_and_duns_unique(self, tmp_path):
        simulate_to_columnar(tmp_path / "c", n_companies=50, seed=2, chunk_size=8)
        columnar = open_corpus(tmp_path / "c")
        duns = [company.duns.value for company in columnar.companies]
        assert len(set(duns)) == len(duns) == 50

    def test_refuses_to_overwrite_existing_corpus(self, corpus, tmp_path):
        write_corpus(corpus, tmp_path / "c")
        with pytest.raises(FileExistsError):
            write_corpus(corpus, tmp_path / "c")


class TestFaults:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(CorpusFormatError, match="missing manifest.json"):
            open_corpus(tmp_path / "nowhere")

    def test_torn_manifest(self, corpus, tmp_path):
        write_corpus(corpus, tmp_path / "c")
        manifest = tmp_path / "c" / MANIFEST_NAME
        manifest.write_text(manifest.read_text()[: manifest.stat().st_size // 2])
        with pytest.raises(CorpusFormatError, match="corrupt manifest"):
            open_corpus(tmp_path / "c")

    def test_truncated_column_file(self, corpus, tmp_path):
        write_corpus(corpus, tmp_path / "c")
        tokens = tmp_path / "c" / "tokens.npy"
        raw = tokens.read_bytes()
        tokens.write_bytes(raw[: len(raw) - 4])
        with pytest.raises(CorpusFormatError, match="truncated"):
            open_corpus(tmp_path / "c")

    def test_missing_column_file(self, corpus, tmp_path):
        write_corpus(corpus, tmp_path / "c")
        os.remove(tmp_path / "c" / "dates.npy")
        with pytest.raises(CorpusFormatError, match="column file missing"):
            open_corpus(tmp_path / "c")

    def test_wrong_format_manifest(self, corpus, tmp_path):
        write_corpus(corpus, tmp_path / "c")
        manifest = tmp_path / "c" / MANIFEST_NAME
        payload = json.loads(manifest.read_text())
        payload["format"] = "something-else"
        manifest.write_text(json.dumps(payload))
        with pytest.raises(CorpusFormatError, match="manifest"):
            open_corpus(tmp_path / "c")

    def test_inconsistent_indptr(self, corpus, tmp_path):
        write_corpus(corpus, tmp_path / "c")
        indptr_path = tmp_path / "c" / "indptr.npy"
        indptr = np.load(indptr_path)
        indptr[-1] += 1
        np.save(indptr_path, indptr)
        with pytest.raises(CorpusFormatError):
            open_corpus(tmp_path / "c")

    def test_aborted_build_leaves_no_manifest(self, corpus, tmp_path):
        class Boom(RuntimeError):
            pass

        def exploding_batches():
            yield corpus.companies[:2]
            raise Boom()

        from repro.data.columnar import ColumnarWriter

        target = tmp_path / "c"
        with pytest.raises(Boom):
            with ColumnarWriter(target, corpus.vocabulary) as writer:
                for batch in exploding_batches():
                    writer.append(batch)
        assert not (target / MANIFEST_NAME).exists()
        with pytest.raises(CorpusFormatError, match="build did not complete"):
            open_corpus(target)
