"""Tests for the product catalog hierarchy."""

import pytest

from repro.data.catalog import (
    CATEGORY_PARENTS,
    FULL_CATEGORY_UNIVERSE,
    HARDWARE_CATEGORIES,
    SOFTWARE_SERVICE_CATEGORIES,
    Category,
    ProductCatalog,
    ProductType,
    Vendor,
    build_default_catalog,
)


class TestCategoryConstants:
    def test_exactly_38_hardware_categories(self):
        # The paper restricts its study to 38 hardware categories.
        assert len(HARDWARE_CATEGORIES) == 38

    def test_full_universe_has_91_categories(self):
        # The paper's HG Data snapshot has 91 distinct categories.
        assert len(FULL_CATEGORY_UNIVERSE) == 91

    def test_no_duplicates(self):
        assert len(set(HARDWARE_CATEGORIES)) == 38
        assert len(set(FULL_CATEGORY_UNIVERSE)) == 91

    def test_hardware_disjoint_from_software(self):
        assert not set(HARDWARE_CATEGORIES) & set(SOFTWARE_SERVICE_CATEGORIES)

    def test_every_hardware_category_has_parent(self):
        for category in HARDWARE_CATEGORIES:
            assert category in CATEGORY_PARENTS

    def test_paper_figure_labels_present(self):
        # Labels visible in Figures 8/9 of the paper.
        for label in ("server_HW", "storage_HW", "DBMS", "OS", "printers",
                      "virtualization_server", "platform_as_a_service"):
            assert label in HARDWARE_CATEGORIES


class TestDefaultCatalog:
    def test_default_is_hardware_only(self):
        catalog = build_default_catalog()
        assert catalog.n_categories == 38
        assert set(catalog.categories) == set(HARDWARE_CATEGORIES)

    def test_full_universe_catalog(self):
        catalog = build_default_catalog(full_universe=True)
        assert catalog.n_categories == 91

    def test_restriction_drops_to_38(self):
        # The 91 -> 38 restriction step of Section 2.
        full = build_default_catalog(full_universe=True)
        restricted = full.restrict_to_hardware()
        assert restricted.n_categories == 38
        assert set(restricted.categories) == set(HARDWARE_CATEGORIES)

    def test_category_indices_are_sorted_and_stable(self):
        catalog = build_default_catalog()
        names = catalog.categories
        assert list(names) == sorted(names)
        for i, name in enumerate(names):
            assert catalog.category_index(name) == i

    def test_unknown_category_raises(self):
        catalog = build_default_catalog()
        with pytest.raises(KeyError):
            catalog.category_index("quantum_teleporters")

    def test_category_record(self):
        catalog = build_default_catalog()
        record = catalog.category("server_HW")
        assert record == Category(name="server_HW", parent="Hardware (Basic)")
        assert record.is_hardware()

    def test_each_category_has_two_product_types(self):
        catalog = build_default_catalog()
        for name in catalog.categories:
            assert len(catalog.product_types(name)) == 2

    def test_product_types_unknown_category_raises(self):
        catalog = build_default_catalog()
        with pytest.raises(KeyError):
            catalog.product_types("nonexistent")

    def test_vendor_lookup(self):
        catalog = build_default_catalog()
        vendor = catalog.vendor(catalog.vendors[0])
        assert isinstance(vendor, Vendor)
        assert vendor.categories()
        assert vendor.category_parents()

    def test_unknown_vendor_raises(self):
        with pytest.raises(KeyError):
            build_default_catalog().vendor("Acme Fake Vendor")

    def test_contains(self):
        catalog = build_default_catalog()
        assert "OS" in catalog
        assert "nonexistent" not in catalog


class TestCatalogConstruction:
    def test_requires_vendors(self):
        with pytest.raises(ValueError, match="at least one vendor"):
            ProductCatalog([])

    def test_rejects_duplicate_vendor_names(self):
        pt = ProductType(name="x", category="OS", vendor="V")
        with pytest.raises(ValueError, match="duplicate vendor"):
            ProductCatalog([Vendor("V", [pt]), Vendor("V", [pt])])

    def test_requires_categories(self):
        with pytest.raises(ValueError, match="at least one category"):
            ProductCatalog([Vendor("V", [])])

    def test_restriction_requires_surviving_vendor(self):
        pt = ProductType(name="x", category="web_hosting", vendor="V")
        catalog = ProductCatalog([Vendor("V", [pt])])
        with pytest.raises(ValueError, match="removed every vendor"):
            catalog.restrict_to_hardware()
