"""Parity and regression tests for the fused BPTT kernels.

The contract under test (see ``models/nn/cells.py``): under float64 the
fused whole-window kernels replay the per-step reference recurrence
bit-for-bit in the forward direction, gradients agree to tight tolerance,
and float32 training lands within 1% of the float64 perplexity because the
dropout rng stream is shared across dtypes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.lstm import LSTMModel
from repro.models.nn.network import RecurrentLM
from repro.models.nn.optim import SGD, Adam, clip_gradients
from repro.models.nn.workspace import Workspace


def _build_pair(cell: str, *, dtype: str = "float64", n_layers: int = 2, seed: int = 5):
    """Two identically initialised networks, one per kernel."""
    kwargs = dict(
        vocab_size=12, hidden=16, n_layers=n_layers, cell=cell,
        dropout=0.3, dtype=dtype,
    )
    fused = RecurrentLM(seed=seed, kernel="fused", **kwargs)
    ref = RecurrentLM(seed=seed, kernel="reference", **kwargs)
    for key, value in fused.params().items():
        assert np.array_equal(value, ref.params()[key])
    return fused, ref


def _tokens(rng: np.random.Generator, batch: int = 4, time: int = 7) -> np.ndarray:
    return rng.integers(0, 12, size=(batch, time))


class TestFusedReferenceParity:
    """float64 fused kernels vs the historical per-step recurrence."""

    @pytest.mark.parametrize("cell", ["lstm", "gru"])
    def test_forward_bit_identical(self, cell, rng):
        fused, ref = _build_pair(cell)
        tokens = _tokens(rng)
        logits_f, cache_f = fused.forward(tokens)
        logits_r, cache_r = ref.forward(tokens)
        assert np.array_equal(logits_f, logits_r)
        for sf, sr in zip(cache_f["final_states"], cache_r["final_states"]):
            for a, b in zip(sf, sr):
                assert np.array_equal(a, b)

    @pytest.mark.parametrize("cell", ["lstm", "gru"])
    def test_forward_bit_identical_with_dropout_and_carried_state(self, cell, rng):
        fused, ref = _build_pair(cell)
        first = _tokens(rng)
        second = _tokens(rng)
        rng_f = np.random.default_rng(99)
        rng_r = np.random.default_rng(99)
        __, cache_f = fused.forward(first, train=True, rng=rng_f)
        __, cache_r = ref.forward(first, train=True, rng=rng_r)
        logits_f, __ = fused.forward(
            second, train=True, rng=rng_f, states=cache_f["final_states"]
        )
        logits_r, __ = ref.forward(
            second, train=True, rng=rng_r, states=cache_r["final_states"]
        )
        assert np.array_equal(logits_f, logits_r)

    @pytest.mark.parametrize("cell", ["lstm", "gru"])
    def test_gradients_match_tightly(self, cell, rng):
        fused, ref = _build_pair(cell)
        tokens = _tokens(rng)
        dlogits = rng.normal(size=(4, 7, 12))
        for net in (fused, ref):
            net.zero_grads()
            __, cache = net.forward(tokens)
            net.backward(dlogits, cache)
        for key, grad_f in fused.grads().items():
            np.testing.assert_allclose(
                grad_f, ref.grads()[key], rtol=1e-10, atol=1e-12, err_msg=key
            )

    def test_float32_perplexity_within_one_percent(self, split):
        """Shared dropout draws keep the f32 run on the f64 trajectory."""
        kwargs = dict(hidden=32, n_layers=1, n_epochs=2, seed=0)
        ppl32 = LSTMModel(dtype="float32", **kwargs).fit(split.train).perplexity(
            split.test
        )
        ppl64 = LSTMModel(dtype="float64", **kwargs).fit(split.train).perplexity(
            split.test
        )
        assert abs(ppl32 - ppl64) / ppl64 < 0.01

    def test_fused_f64_training_bit_identical_to_reference(self, split):
        """End to end: same seed, both kernels, identical perplexity."""
        kwargs = dict(hidden=24, n_layers=2, n_epochs=2, seed=0, dtype="float64")
        ppl_fused = LSTMModel(kernel="fused", **kwargs).fit(split.train).perplexity(
            split.test
        )
        ppl_ref = LSTMModel(kernel="reference", **kwargs).fit(split.train).perplexity(
            split.test
        )
        assert ppl_fused == ppl_ref


class TestWorkspace:
    def test_buffers_reused_across_calls(self):
        ws = Workspace()
        a = ws.get("buf", (4, 8), np.float32)
        b = ws.get("buf", (4, 8), np.float32)
        assert a is b

    def test_new_buffer_on_shape_or_dtype_change(self):
        ws = Workspace()
        a = ws.get("buf", (4, 8), np.float32)
        b = ws.get("buf", (6, 8), np.float32)
        c = ws.get("buf", (6, 8), np.float64)
        assert a is not b and b is not c

    def test_reused_forward_results_stable(self, rng):
        """Two minibatches through one workspace give the same answers as
        two fresh networks — nothing leaks between calls."""
        net, ref = _build_pair("lstm", n_layers=1)
        first, second = _tokens(rng), _tokens(rng)
        net.forward(first)
        logits, __ = net.forward(second)
        expected, __ = ref.forward(second)
        assert np.array_equal(logits, expected)


class TestDtypePreservation:
    """float32 gradients and parameters must never be silently promoted."""

    def test_clip_preserves_float32(self):
        grads = {"w": np.ones((3, 3), dtype=np.float32) * 10.0}
        clip_gradients(grads, 1.0)
        assert grads["w"].dtype == np.float32

    def test_clip_norm_value_matches_float64_path(self):
        values = np.linspace(-2.0, 2.0, 12).reshape(3, 4)
        g32 = {"w": values.astype(np.float32)}
        g64 = {"w": values.copy()}
        n32 = clip_gradients(g32, 1e9)
        n64 = clip_gradients(g64, 1e9)
        assert n32 == pytest.approx(n64, rel=1e-6)

    @pytest.mark.parametrize("opt", [SGD(lr=0.1), SGD(lr=0.1, momentum=0.9), Adam()])
    def test_optimizers_preserve_float32(self, opt):
        params = {"w": np.ones((4, 4), dtype=np.float32)}
        grads = {"w": np.full((4, 4), 0.5, dtype=np.float32)}
        opt.update(params, grads)
        assert params["w"].dtype == np.float32

    def test_trained_model_parameters_stay_float32(self, split):
        model = LSTMModel(hidden=16, n_epochs=1, seed=0, dtype="float32").fit(
            split.train
        )
        for key, value in model.network.params().items():
            assert value.dtype == np.float32, key


class TestBucketedScoring:
    """Length-bucketed scoring must be a pure reordering."""

    @pytest.fixture(scope="class")
    def models(self, split):
        kwargs = dict(hidden=16, n_epochs=1, seed=0, dtype="float64")
        bucketed = LSTMModel(bucketed=True, **kwargs).fit(split.train)
        plain = LSTMModel(bucketed=False, **kwargs).fit(split.train)
        return bucketed, plain

    def test_training_unaffected_by_bucketing_flag_in_stream_mode(self, models):
        bucketed, plain = models
        for key, value in bucketed.network.params().items():
            assert np.array_equal(value, plain.network.params()[key]), key

    def test_log_prob_matches(self, models, split):
        bucketed, plain = models
        assert bucketed.log_prob(split.test) == pytest.approx(
            plain.log_prob(split.test), rel=1e-12
        )

    def test_batch_scores_match(self, models, split):
        bucketed, plain = models
        histories = [seq[:-1] for seq in split.test.sequences()[:9] if len(seq) > 1]
        histories.append([])  # empty history rides along
        pb = bucketed.batch_next_product_proba(histories)
        pp = plain.batch_next_product_proba(histories)
        np.testing.assert_allclose(pb, pp, rtol=1e-12, atol=0)

    def test_company_features_match(self, models, split):
        bucketed, plain = models
        fb = bucketed.company_features(split.test)
        fp = plain.company_features(split.test)
        np.testing.assert_allclose(fb, fp, rtol=1e-12, atol=0)


class TestPersistence:
    def test_save_load_round_trips_kernel_flags(self, split, tmp_path):
        model = LSTMModel(
            hidden=16, n_epochs=1, seed=0,
            dtype="float32", kernel="fused", bucketed=False,
        ).fit(split.train)
        model.save(tmp_path / "m.npz")
        loaded = LSTMModel.load(tmp_path / "m.npz")
        assert loaded.dtype == "float32"
        assert loaded.kernel == "fused"
        assert loaded.bucketed is False
        history = split.test.sequences()[0][:-1]
        np.testing.assert_allclose(
            loaded.next_product_proba(history),
            model.next_product_proba(history),
            rtol=1e-6,
        )


class TestEpochInstrumentation:
    def test_epoch_span_reports_token_throughput(self, split):
        from repro.obs import trace

        trace.enable()
        try:
            LSTMModel(hidden=16, n_epochs=1, seed=0).fit(split.train)
            spans = trace.roots()
            epoch_spans = [
                child
                for root in spans
                for child in root.children
                if child.name == "model.lstm.epoch"
            ]
            assert epoch_spans
            assert all(s.counters.get("tokens_per_s", 0) > 0 for s in epoch_spans)
        finally:
            trace.disable()
            trace.reset()
