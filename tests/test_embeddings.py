"""Tests for the skip-gram product embeddings."""

import datetime as dt

import numpy as np
import pytest

from repro.data.company import Company
from repro.data.corpus import Corpus
from repro.data.duns import DunsNumber
from repro.models.embeddings import ProductSkipGram


def _corpus_from_sets(product_sets, vocabulary):
    companies = []
    for i, products in enumerate(product_sets):
        first_seen = {
            vocabulary[token]: dt.date(2000 + t, 1, 1)
            for t, token in enumerate(products)
        }
        companies.append(
            Company(
                duns=DunsNumber.from_sequence(i),
                name=f"C{i}",
                country="US",
                sic2=80,
                first_seen=first_seen,
            )
        )
    return Corpus(companies, vocabulary)


VOCAB = ("a", "b", "c", "d", "e", "f")


class TestTraining:
    def test_cooccurring_products_are_similar(self):
        # {a, b} always together, {c, d} always together, never mixed.
        sets = [[0, 1]] * 20 + [[2, 3]] * 20
        corpus = _corpus_from_sets(sets, VOCAB)
        model = ProductSkipGram(dim=8, n_epochs=12, seed=0).fit(corpus)
        assert model.similarity(0, 1) > model.similarity(0, 2)
        assert model.similarity(2, 3) > model.similarity(2, 1)

    def test_most_similar_ranks_partner_first(self):
        sets = [[0, 1]] * 25 + [[2, 3]] * 25 + [[4, 5]] * 25
        corpus = _corpus_from_sets(sets, VOCAB)
        model = ProductSkipGram(dim=8, n_epochs=12, seed=0).fit(corpus)
        assert model.most_similar(0, topn=1)[0][0] == 1
        assert model.most_similar(2, topn=1)[0][0] == 3

    def test_deterministic_given_seed(self, split):
        a = ProductSkipGram(dim=4, n_epochs=2, seed=3).fit(split.train)
        b = ProductSkipGram(dim=4, n_epochs=2, seed=3).fit(split.train)
        assert np.allclose(a.product_embeddings, b.product_embeddings)

    def test_windowed_mode(self, split):
        model = ProductSkipGram(dim=4, window=2, n_epochs=2, seed=0).fit(split.train)
        assert model.product_embeddings.shape == (38, 4)

    def test_requires_cooccurrence(self):
        corpus = _corpus_from_sets([[0]], VOCAB)
        with pytest.raises(ValueError, match="pairs"):
            ProductSkipGram(dim=4, n_epochs=1).fit(corpus)

    def test_invalid_args(self):
        with pytest.raises((ValueError, TypeError)):
            ProductSkipGram(dim=0)
        with pytest.raises(ValueError):
            ProductSkipGram(window=-1)


class TestRepresentations:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            __ = ProductSkipGram().product_embeddings

    def test_similarity_bounds(self, split):
        model = ProductSkipGram(dim=8, n_epochs=3, seed=0).fit(split.train)
        for a, b in [(0, 1), (5, 20), (37, 0)]:
            assert -1.0 - 1e-9 <= model.similarity(a, b) <= 1.0 + 1e-9

    def test_similarity_out_of_range(self, split):
        model = ProductSkipGram(dim=4, n_epochs=1, seed=0).fit(split.train)
        with pytest.raises(IndexError):
            model.similarity(0, 99)

    def test_company_embeddings_are_means(self, split):
        model = ProductSkipGram(dim=4, n_epochs=1, seed=0).fit(split.train)
        features = model.company_embeddings(split.test)
        assert features.shape == (split.test.n_companies, 4)
        binary = split.test.binary_matrix()
        row = 0
        owned = np.flatnonzero(binary[row])
        expected = model.product_embeddings[owned].mean(axis=0)
        assert np.allclose(features[row], expected)

    def test_company_embeddings_vocab_mismatch(self, split):
        model = ProductSkipGram(dim=4, n_epochs=1, seed=0).fit(split.train)
        corpus = _corpus_from_sets([[0, 1]], VOCAB)
        with pytest.raises(ValueError):
            model.company_embeddings(corpus)
