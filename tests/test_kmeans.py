"""Tests for k-means clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.kmeans import KMeans


def _blobs(rng, centers, n_per, scale=0.05):
    points = []
    for center in centers:
        points.append(rng.normal(center, scale, size=(n_per, len(center))))
    return np.vstack(points)


class TestClustering:
    def test_recovers_well_separated_blobs(self, rng):
        data = _blobs(rng, [(0, 0), (5, 5), (0, 5)], 30)
        labels = KMeans(3, seed=0).fit_predict(data)
        # Every blob must land in exactly one cluster.
        for start in (0, 30, 60):
            blob_labels = labels[start : start + 30]
            assert len(set(blob_labels.tolist())) == 1
        assert len(set(labels.tolist())) == 3

    def test_inertia_decreases_with_more_clusters(self, rng):
        data = rng.normal(size=(80, 4))
        inertias = [
            KMeans(k, seed=0).fit(data).inertia_ for k in (1, 2, 4, 8)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_single_cluster_center_is_mean(self, rng):
        data = rng.normal(size=(50, 3))
        model = KMeans(1, seed=0).fit(data)
        assert np.allclose(model.centers_[0], data.mean(axis=0))

    def test_deterministic_given_seed(self, rng):
        data = rng.normal(size=(60, 2))
        a = KMeans(4, seed=2).fit_predict(data)
        b = KMeans(4, seed=2).fit_predict(data)
        assert np.array_equal(a, b)

    def test_predict_assigns_nearest_center(self, rng):
        data = _blobs(rng, [(0, 0), (10, 10)], 20)
        model = KMeans(2, seed=0).fit(data)
        label_origin = model.predict(np.array([[0.1, -0.1]]))[0]
        label_far = model.predict(np.array([[9.9, 10.1]]))[0]
        assert label_origin != label_far

    def test_duplicate_points_handled(self):
        data = np.ones((20, 3))
        model = KMeans(2, seed=0).fit(data)
        assert model.inertia_ == pytest.approx(0.0)

    def test_k_equals_n_points(self, rng):
        data = rng.normal(size=(5, 2))
        model = KMeans(5, seed=0).fit(data)
        assert model.inertia_ == pytest.approx(0.0, abs=1e-12)
        assert len(set(model.labels_.tolist())) == 5


class TestValidation:
    def test_more_clusters_than_points_rejected(self, rng):
        with pytest.raises(ValueError, match="cannot form"):
            KMeans(10, seed=0).fit(rng.normal(size=(5, 2)))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((3, 2)))

    def test_invalid_parameters(self):
        with pytest.raises((ValueError, TypeError)):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(2, tol=-1.0)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=12, max_value=40),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_labels_valid_and_inertia_consistent(self, k, n, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, 3))
        model = KMeans(k, seed=0).fit(data)
        labels = model.labels_
        assert labels.shape == (n,)
        assert labels.min() >= 0 and labels.max() < k
        # Inertia equals the sum of squared distances to assigned centres.
        recomputed = sum(
            float(((data[labels == j] - model.centers_[j]) ** 2).sum())
            for j in range(k)
        )
        assert model.inertia_ == pytest.approx(recomputed, rel=1e-9, abs=1e-9)
