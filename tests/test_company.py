"""Tests for company entities and domestic aggregation."""

import datetime as dt

import pytest

from repro.data.company import Company, CompanySite, InstallRecord, aggregate_domestic
from repro.data.duns import DunsNumber, DunsRegistry


def _duns(i: int) -> DunsNumber:
    return DunsNumber.from_sequence(i)


def _record(duns, category, first, last=None, confidence="high"):
    return InstallRecord(
        duns=duns,
        category=category,
        first_seen=first,
        last_seen=last if last is not None else first,
        confidence=confidence,
    )


class TestInstallRecord:
    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            _record(_duns(0), "OS", dt.date(2000, 1, 1), confidence="certain")

    def test_rejects_last_before_first(self):
        with pytest.raises(ValueError, match="precedes"):
            _record(_duns(0), "OS", dt.date(2000, 1, 1), last=dt.date(1999, 1, 1))


class TestCompany:
    def _company(self):
        return Company(
            duns=_duns(0),
            name="Acme",
            country="US",
            sic2=80,
            first_seen={
                "OS": dt.date(1995, 3, 1),
                "DBMS": dt.date(1999, 6, 1),
                "printers": dt.date(1995, 3, 1),
                "retail": dt.date(2014, 2, 1),
            },
        )

    def test_rejects_invalid_sic2(self):
        with pytest.raises(ValueError, match="SIC2"):
            Company(duns=_duns(0), name="X", country="US", sic2=3)

    def test_rejects_zero_sites(self):
        with pytest.raises(ValueError, match="n_sites"):
            Company(duns=_duns(0), name="X", country="US", sic2=80, n_sites=0)

    def test_categories_set(self):
        assert self._company().categories == {"OS", "DBMS", "printers", "retail"}

    def test_sorted_categories_orders_by_date_then_name(self):
        ordered = [c for c, __ in self._company().sorted_categories()]
        # OS and printers tie on the date; alphabetical break puts OS first.
        assert ordered == ["OS", "printers", "DBMS", "retail"]

    def test_categories_before_cutoff(self):
        before = self._company().categories_before(dt.date(2000, 1, 1))
        assert [c for c, __ in before] == ["OS", "printers", "DBMS"]

    def test_categories_within_window(self):
        within = self._company().categories_within(dt.date(2014, 1, 1), dt.date(2015, 1, 1))
        assert within == ["retail"]

    def test_categories_within_rejects_empty_window(self):
        with pytest.raises(ValueError, match="empty window"):
            self._company().categories_within(dt.date(2014, 1, 1), dt.date(2014, 1, 1))

    def test_len(self):
        assert len(self._company()) == 4


class TestAggregateDomestic:
    def _setup(self):
        registry = DunsRegistry()
        hq = _duns(0)
        branch = _duns(1)
        registry.register(hq, country="US")
        registry.register(branch, country="US", parent=hq)
        hq_site = CompanySite(
            duns=hq,
            name="Acme HQ",
            country="US",
            records=[
                _record(hq, "OS", dt.date(1999, 1, 5)),
                _record(branch := hq, "DBMS", dt.date(2005, 2, 1)),
            ],
        )
        branch_site = CompanySite(
            duns=_duns(1),
            name="Acme Branch",
            country="US",
            records=[
                # Earlier sighting of DBMS at the branch must win.
                _record(_duns(1), "DBMS", dt.date(2003, 7, 1)),
                _record(_duns(1), "retail", dt.date(2010, 1, 1), confidence="low"),
            ],
        )
        return registry, hq_site, branch_site, hq

    def test_merges_sites_with_earliest_first_seen(self):
        registry, hq_site, branch_site, hq = self._setup()
        companies = aggregate_domestic(
            [hq_site, branch_site], registry, sic2_by_ultimate={hq.value: 80}
        )
        assert len(companies) == 1
        company = companies[0]
        assert company.n_sites == 2
        assert company.first_seen["DBMS"] == dt.date(2003, 7, 1)
        assert company.first_seen["OS"] == dt.date(1999, 1, 5)

    def test_confidence_filter_drops_low_records(self):
        registry, hq_site, branch_site, hq = self._setup()
        companies = aggregate_domestic(
            [hq_site, branch_site],
            registry,
            sic2_by_ultimate={hq.value: 80},
            min_confidence="medium",
        )
        assert "retail" not in companies[0].categories

    def test_invalid_min_confidence_rejected(self):
        registry, hq_site, branch_site, hq = self._setup()
        with pytest.raises(ValueError, match="min_confidence"):
            aggregate_domestic(
                [hq_site], registry, sic2_by_ultimate={hq.value: 80},
                min_confidence="certain",
            )

    def test_missing_sic2_raises(self):
        registry, hq_site, branch_site, __ = self._setup()
        with pytest.raises(KeyError, match="SIC2"):
            aggregate_domestic([hq_site, branch_site], registry, sic2_by_ultimate={})

    def test_name_comes_from_ultimate_site(self):
        registry, hq_site, branch_site, hq = self._setup()
        companies = aggregate_domestic(
            # Branch listed first: the HQ name must still win.
            [branch_site, hq_site], registry, sic2_by_ultimate={hq.value: 80}
        )
        assert companies[0].name == "Acme HQ"

    def test_foreign_site_becomes_separate_company(self):
        registry = DunsRegistry()
        hq = _duns(0)
        foreign = _duns(1)
        registry.register(hq, country="US")
        registry.register(foreign, country="DE", parent=hq)
        sites = [
            CompanySite(duns=hq, name="Acme", country="US",
                        records=[_record(hq, "OS", dt.date(2000, 1, 1))]),
            CompanySite(duns=foreign, name="Acme GmbH", country="DE",
                        records=[_record(foreign, "DBMS", dt.date(2001, 1, 1))]),
        ]
        companies = aggregate_domestic(
            sites, registry,
            sic2_by_ultimate={hq.value: 80, foreign.value: 80},
        )
        assert len(companies) == 2
        countries = {c.country for c in companies}
        assert countries == {"US", "DE"}
