"""Tests for the install-base simulator."""

import datetime as dt

import numpy as np
import pytest

from repro.data.catalog import HARDWARE_CATEGORIES
from repro.data.corpus import Corpus
from repro.data.synthetic import InstallBaseSimulator, SimulatorConfig


class TestSimulatorConfig:
    def test_defaults_valid(self):
        SimulatorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_companies": 0},
            {"n_profiles": 0},
            {"mixture_concentration": 0.0},
            {"core_size": 0.0},
            {"core_softness": 0.0},
            {"ownership_cap": 1.5},
            {"background_rate": -0.1},
            {"size_jitter_sd": -1.0},
            {"shared_head": -1},
            {"temporal_coherence": 1.5},
            {"min_products": 0},
            {"max_sites": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            SimulatorConfig(**kwargs)

    def test_date_ordering_enforced(self):
        with pytest.raises(ValueError):
            SimulatorConfig(
                earliest_start=dt.date(2010, 1, 1), latest_start=dt.date(2000, 1, 1)
            )


class TestGeneration:
    def test_company_count(self, universe):
        assert len(universe.companies) == 300

    def test_deterministic_given_seed(self, simulator):
        a = simulator.generate(seed=3)
        b = simulator.generate(seed=3)
        assert [c.duns.value for c in a.companies] == [c.duns.value for c in b.companies]
        assert all(
            x.first_seen == y.first_seen
            for x, y in zip(a.companies, b.companies)
        )

    def test_different_seeds_differ(self, simulator):
        a = simulator.generate(seed=3)
        b = simulator.generate(seed=4)
        assert any(
            x.first_seen != y.first_seen for x, y in zip(a.companies, b.companies)
        )

    def test_every_company_has_min_products(self, universe):
        for company in universe.companies:
            assert len(company) >= universe.config.min_products

    def test_categories_are_hardware(self, universe):
        valid = set(HARDWARE_CATEGORIES)
        for company in universe.companies:
            assert company.categories <= valid

    def test_dates_within_observation_period(self, universe):
        config = universe.config
        for company in universe.companies:
            for date in company.first_seen.values():
                assert config.earliest_start <= date <= config.observation_end

    def test_some_products_in_evaluation_period(self, universe):
        # The sliding-window harness needs ground truth after 2013.
        eval_start = dt.date(2013, 1, 1)
        count = sum(
            1
            for company in universe.companies
            for date in company.first_seen.values()
            if date >= eval_start
        )
        assert count > 50

    def test_sites_resolve_to_companies(self, universe):
        ultimates = {c.duns.value for c in universe.companies}
        for site in universe.sites:
            resolved = universe.registry.domestic_ultimate(site.duns).value
            assert resolved in ultimates

    def test_sic2_assignments_cover_companies(self, universe):
        for company in universe.companies:
            assert company.duns.value in universe.sic2_by_ultimate

    def test_ground_truth_shapes(self, universe):
        truth = universe.ground_truth
        n_profiles = universe.config.n_profiles
        assert truth.profile_product.shape == (n_profiles, 38)
        assert truth.company_mixture.shape == (universe.config.n_companies, n_profiles)
        assert np.allclose(truth.profile_product.sum(axis=1), 1.0)
        assert np.allclose(truth.company_mixture.sum(axis=1), 1.0)
        assert truth.stages.shape == (38,)

    def test_generate_companies_shortcut(self, simulator):
        companies = simulator.generate_companies(seed=5)
        assert len(companies) == 300


class TestStatisticalShape:
    """The calibration targets that make the paper's results reproducible."""

    @pytest.fixture(scope="class")
    def big_corpus(self):
        simulator = InstallBaseSimulator(SimulatorConfig(n_companies=800))
        universe = simulator.generate(seed=42)
        return Corpus(universe.companies, simulator.catalog.categories), universe

    def test_density_is_moderate(self, big_corpus):
        corpus, __ = big_corpus
        density = corpus.binary_matrix().mean()
        # "The data in our deployment is relatively dense" — a fifth-ish of
        # the 38 categories owned on average.
        assert 0.1 < density < 0.35

    def test_unigram_entropy_near_paper(self, big_corpus):
        corpus, __ = big_corpus
        matrix = corpus.binary_matrix()
        counts = matrix.sum(axis=0)
        proba = counts / counts.sum()
        perplexity = np.exp(-(proba[proba > 0] * np.log(proba[proba > 0])).sum())
        # Paper: unigram perplexity 19.5.  Allow a generous band.
        assert 15.0 < perplexity < 25.0

    def test_popular_categories_are_popular(self, big_corpus):
        corpus, __ = big_corpus
        matrix = corpus.binary_matrix()
        popularity = matrix.mean(axis=0)
        universal = max(
            popularity[corpus.token(c)]
            for c in ("OS", "network_HW", "server_HW", "printers")
        )
        median_rate = float(np.median(popularity))
        assert universal > 1.5 * median_rate

    def test_profiles_drive_ownership(self, big_corpus):
        # Companies with the same dominant profile share far more products
        # than companies with different profiles.
        corpus, universe = big_corpus
        labels = universe.ground_truth.company_mixture.argmax(axis=1)
        matrix = corpus.binary_matrix()
        same, diff = [], []
        rng = np.random.default_rng(0)
        for __ in range(400):
            i, j = rng.integers(len(matrix), size=2)
            if i == j:
                continue
            overlap = (matrix[i] * matrix[j]).sum() / max(
                min(matrix[i].sum(), matrix[j].sum()), 1
            )
            (same if labels[i] == labels[j] else diff).append(overlap)
        assert np.mean(same) > np.mean(diff) + 0.2

    def test_foreign_sites_create_extra_companies(self):
        config = SimulatorConfig(n_companies=60, foreign_site_rate=0.5)
        universe = InstallBaseSimulator(config).generate(seed=1)
        assert len(universe.companies) > 60
        assert any(c.country != "US" for c in universe.companies)

    def test_batch_kernel_matches_loop_distribution(self):
        # The batch kernel consumes randomness in a different order, so
        # universes are not bit-identical — but the marginals must agree.
        config = SimulatorConfig(n_companies=800)
        simulator = InstallBaseSimulator(config)
        loop = simulator.generate(seed=3, method="loop")
        batch = simulator.generate(seed=3, method="batch")
        assert len(batch.companies) == len(loop.companies)
        mean_loop = np.mean([len(c) for c in loop.companies])
        mean_batch = np.mean([len(c) for c in batch.companies])
        assert abs(mean_loop - mean_batch) / mean_loop < 0.05
        categories = simulator.catalog.categories
        freq_loop = np.array(
            [sum(cat in c.categories for c in loop.companies) for cat in categories],
            dtype=np.float64,
        ) / len(loop.companies)
        freq_batch = np.array(
            [sum(cat in c.categories for c in batch.companies) for cat in categories],
            dtype=np.float64,
        ) / len(batch.companies)
        assert np.max(np.abs(freq_loop - freq_batch)) < 0.06

    def test_batch_kernel_respects_invariants(self):
        config = SimulatorConfig(
            n_companies=400, foreign_site_rate=0.1, granularity="product_type"
        )
        simulator = InstallBaseSimulator(config)
        universe = simulator.generate(seed=5, method="batch")
        for company in universe.companies:
            assert len(company) >= 1
            for date in company.first_seen.values():
                assert config.earliest_start <= date <= config.observation_end

    def test_batch_kernel_min_products(self):
        config = SimulatorConfig(n_companies=300, min_products=3)
        universe = InstallBaseSimulator(config).generate(seed=2, method="batch")
        domestic = [c for c in universe.companies if c.country == "US"]
        assert all(len(c) >= 3 for c in domestic)

    def test_auto_method_is_loop_below_threshold(self, simulator):
        # Tier-1 corpora stay on the bit-stable loop path: auto == loop.
        auto = simulator.generate(seed=7, method="auto")
        loop = simulator.generate(seed=7, method="loop")
        assert [c.first_seen for c in auto.companies] == [
            c.first_seen for c in loop.companies
        ]
        assert np.array_equal(
            auto.ground_truth.company_mixture, loop.ground_truth.company_mixture
        )

    def test_invalid_method_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.generate(seed=0, method="vectorised")

    def test_batch_kernel_deterministic_given_seed(self):
        config = SimulatorConfig(n_companies=300)
        simulator = InstallBaseSimulator(config)
        a = simulator.generate(seed=11, method="batch")
        b = simulator.generate(seed=11, method="batch")
        assert [c.first_seen for c in a.companies] == [
            c.first_seen for c in b.companies
        ]

    def test_stage_ordering_biases_sequences(self):
        # With full temporal coherence, early-stage categories come first.
        config = SimulatorConfig(n_companies=100, temporal_coherence=1.0)
        simulator = InstallBaseSimulator(config)
        universe = simulator.generate(seed=0)
        stages = universe.ground_truth.stages
        corpus = Corpus(universe.companies, simulator.catalog.categories)
        violations = total = 0
        for seq in corpus.sequences():
            for a, b in zip(seq, seq[1:]):
                total += 1
                if stages[a] > stages[b]:
                    violations += 1
        assert violations / max(total, 1) < 0.25
