"""Unit tests for the shared validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    as_rng,
    check_fraction_triple,
    check_in_choices,
    check_matrix,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_rng,
    check_sequences,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="must be positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(1.5, "x")

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="my_arg"):
            check_positive_int(0, "my_arg")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-2, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 7])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            check_probability("half", "p")


class TestCheckPositiveFloat:
    def test_accepts_int_input(self):
        assert check_positive_float(2, "x") == 2.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive_float(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive_float(float("inf"), "x")

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_float(0.0, "x")


class TestCheckFractionTriple:
    def test_standard_split(self):
        assert check_fraction_triple((0.7, 0.1, 0.2)) == (0.7, 0.1, 0.2)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="exactly 3"):
            check_fraction_triple((0.5, 0.5))

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_fraction_triple((0.5, 0.2, 0.2))

    def test_rejects_negative_entry(self):
        with pytest.raises(ValueError):
            check_fraction_triple((1.2, -0.1, -0.1))

    def test_rejects_zero_train(self):
        with pytest.raises(ValueError, match="train"):
            check_fraction_triple((0.0, 0.5, 0.5))


class TestCheckInChoices:
    def test_accepts_member(self):
        assert check_in_choices("a", "x", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="must be one of"):
            check_in_choices("c", "x", ("a", "b"))


class TestRngHelpers:
    def test_as_rng_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_as_rng_int_is_deterministic(self):
        a = as_rng(42).random(3)
        b = as_rng(42).random(3)
        assert np.allclose(a, b)

    def test_as_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_as_rng_rejects_strings(self):
        with pytest.raises(TypeError):
            as_rng("seed")

    def test_check_rng_rejects_legacy_state(self):
        with pytest.raises(TypeError):
            check_rng(np.random.RandomState(0))


class TestCheckMatrix:
    def test_accepts_lists(self):
        out = check_matrix([[1, 0], [0, 1]], "m")
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_matrix([1, 2, 3], "m")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_matrix(np.empty((0, 3)), "m")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_matrix([[np.nan, 1.0]], "m")

    def test_binary_flag_rejects_other_values(self):
        with pytest.raises(ValueError, match="binary"):
            check_matrix([[0.5, 1.0]], "m", binary=True)

    def test_binary_flag_accepts_zeros_and_ones(self):
        check_matrix([[0.0, 1.0], [1.0, 1.0]], "m", binary=True)


class TestCheckSequences:
    def test_roundtrip(self):
        assert check_sequences([[1, 2], []], "s") == [[1, 2], []]

    def test_rejects_non_list(self):
        with pytest.raises(TypeError):
            check_sequences("abc", "s")

    def test_rejects_negative_token(self):
        with pytest.raises(ValueError):
            check_sequences([[-1]], "s")

    def test_rejects_token_beyond_vocab(self):
        with pytest.raises(ValueError, match="vocab_size"):
            check_sequences([[5]], "s", vocab_size=5)

    def test_rejects_float_tokens(self):
        with pytest.raises(TypeError):
            check_sequences([[1.5]], "s")

    def test_accepts_numpy_arrays(self):
        assert check_sequences([np.array([0, 1])], "s") == [[0, 1]]
