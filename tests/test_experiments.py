"""Smoke tests for the experiment drivers on tiny corpora.

The benchmark suite runs the drivers at full scale with shape assertions;
these tests check the drivers' structure and error handling quickly so a
plain ``pytest tests/`` still covers the experiments package.
"""

import numpy as np
import pytest

from repro.data.synthetic import SimulatorConfig
from repro.experiments import (
    make_experiment_data,
    run_bpmf_analysis,
    run_cocluster_baseline,
    run_gru_ablation,
    run_lda_inference_ablation,
    run_lda_sweep,
    run_lstm_grid,
    run_perplexity_table,
    run_recommendation_accuracy,
    run_representation_families,
    run_sequentiality,
    run_silhouette_curves,
    run_streaming_chh_accuracy,
    run_tsne_projection,
)
from repro.experiments.fig1_lstm_grid import best_point
from repro.experiments.fig2_lda_sweep import best_binary_band
from repro.experiments.table1 import PAPER_TABLE1, format_table
from repro.recommend.windows import SlidingWindowSpec


@pytest.fixture(scope="module")
def tiny_data():
    return make_experiment_data(200, seed=7)


class TestCommon:
    def test_make_experiment_data_shapes(self, tiny_data):
        assert tiny_data.corpus.n_companies == 200
        assert tiny_data.corpus.n_products == 38
        assert tiny_data.split.train.n_companies == 140

    def test_config_disagreement_rejected(self):
        with pytest.raises(ValueError, match="n_companies"):
            make_experiment_data(100, config=SimulatorConfig(n_companies=200))

    def test_custom_config_accepted(self):
        data = make_experiment_data(
            120, config=SimulatorConfig(n_companies=120, n_profiles=2)
        )
        assert data.universe.config.n_profiles == 2


class TestTable1Driver:
    def test_returns_all_methods(self, tiny_data):
        results = run_perplexity_table(
            tiny_data, lstm_epochs=2, lda_iter=20, lstm_hidden=16
        )
        assert set(results) == set(PAPER_TABLE1)
        assert all(np.isfinite(v) for v in results.values())

    def test_format_table_renders(self, tiny_data):
        results = {"lda": 10.0, "lstm": 12.0, "ngram": 14.0, "unigram": 19.0}
        text = format_table(results)
        assert "lda" in text and "paper" in text
        assert text.splitlines()[1].strip().startswith("1")

    def test_parallel_perplexities_identical_to_serial(self, tiny_data):
        kwargs = dict(lstm_epochs=2, lda_iter=20, lstm_hidden=16)
        serial = run_perplexity_table(tiny_data, n_jobs=1, **kwargs)
        parallel = run_perplexity_table(tiny_data, n_jobs=4, **kwargs)
        assert serial == parallel

    def test_fit_cache_warm_run_identical(self, tiny_data, tmp_path):
        from repro.runtime import FitCache

        cache = FitCache(tmp_path)
        kwargs = dict(lstm_epochs=2, lda_iter=20, lstm_hidden=16)
        cold = run_perplexity_table(tiny_data, fit_cache=cache, **kwargs)
        warm = run_perplexity_table(tiny_data, fit_cache=cache, **kwargs)
        assert cache.hits > 0
        assert cold == warm


class TestGridDrivers:
    def test_lstm_grid_rows(self, tiny_data):
        rows = run_lstm_grid(
            tiny_data, layer_grid=(1,), node_grid=(8, 16), n_epochs=2
        )
        assert len(rows) == 2
        assert best_point(rows)["nodes"] in (8.0, 16.0)

    def test_best_point_empty_rejected(self):
        with pytest.raises(ValueError):
            best_point([])

    def test_lda_sweep_rows(self, tiny_data):
        rows = run_lda_sweep(
            tiny_data, topic_grid=(2, 3), inputs=("binary",), n_iter=15
        )
        assert len(rows) == 2
        perplexity, topics = best_binary_band(rows)
        assert topics in (2.0, 3.0)
        assert perplexity > 1.0

    def test_best_binary_band_requires_binary_rows(self):
        with pytest.raises(ValueError):
            best_binary_band([{"input": "tfidf", "n_topics": 2.0, "test_perplexity": 9.0}])


class TestRecommendationDriver:
    def test_curves_structure(self, tiny_data):
        curves = run_recommendation_accuracy(
            tiny_data,
            thresholds=[0.05, 0.1],
            spec=SlidingWindowSpec(n_windows=2),
            lstm_hidden=16,
            lstm_epochs=2,
        )
        assert set(curves) == {"LDA3", "LSTM", "CHH", "random"}
        for curve in curves.values():
            assert len(curve.observations[0.05]) == 2


class TestAnalysisDrivers:
    def test_bpmf_analysis_keys(self, tiny_data):
        result = run_bpmf_analysis(tiny_data, n_iter=10, thresholds=(0.9, 0.95))
        assert set(result) == {"score_quantiles", "threshold_rows"}
        assert len(result["threshold_rows"]) == 2

    def test_silhouette_rows(self, tiny_data):
        rows = run_silhouette_curves(tiny_data, cluster_grid=(5,), sample_size=None)
        names = {row["representation"] for row in rows}
        assert names == {
            "raw", "raw_tfidf", "lda_2", "lda_3", "lda_4", "lda_7",
            "tfidf_lda_2", "tfidf_lda_4",
        }

    def test_tsne_projection_keys(self, tiny_data):
        result = run_tsne_projection(tiny_data, n_iter=60)
        assert len(result["coordinates"]) == 38
        assert np.isfinite(result["profile_core_ratio"])

    def test_sequentiality_reports(self, tiny_data):
        reports = run_sequentiality(tiny_data)
        assert set(reports) == {2, 3}

    def test_cocluster_keys(self, tiny_data):
        result = run_cocluster_baseline(tiny_data)
        assert {"summaries", "profile_purity", "lda_feature_purity"} <= set(result)


class TestAblationDrivers:
    def test_gru_ablation(self, tiny_data):
        results = run_gru_ablation(tiny_data, hidden=16, n_epochs=2)
        assert set(results) == {"lstm", "gru"}

    def test_lda_inference_ablation(self, tiny_data):
        results = run_lda_inference_ablation(tiny_data, n_iter=20)
        assert set(results) == {"gibbs", "variational"}


class TestExtensionDrivers:
    def test_representation_families(self, tiny_data):
        results = run_representation_families(tiny_data, n_clusters=5)
        assert set(results) == {"raw", "tfidf", "lda", "lsi", "fisher"}
        for metrics in results.values():
            assert -1.0 <= metrics["silhouette"] <= 1.0
            assert 0.0 <= metrics["profile_purity"] <= 1.0

    def test_streaming_chh_rows(self, tiny_data):
        rows = run_streaming_chh_accuracy(tiny_data, capacities=(8, 512))
        assert len(rows) == 2
        assert rows[-1]["mean_abs_error"] <= rows[0]["mean_abs_error"] + 1e-12
