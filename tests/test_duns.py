"""Tests for D-U-N-S identifiers and the site hierarchy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.duns import DunsNumber, DunsRegistry, duns_check_digit, is_valid_duns


class TestCheckDigit:
    def test_known_value_is_stable(self):
        # Regression pin: the Luhn digit of this payload must never change,
        # otherwise persisted identifiers would stop validating.
        assert duns_check_digit("00000000") == 0
        assert duns_check_digit("00000001") == 8

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            duns_check_digit("1234567")

    def test_rejects_non_digits(self):
        with pytest.raises(ValueError):
            duns_check_digit("12a45678")

    @given(st.integers(min_value=0, max_value=99_999_999))
    def test_check_digit_in_range(self, payload):
        digit = duns_check_digit(f"{payload:08d}")
        assert 0 <= digit <= 9

    @given(st.integers(min_value=0, max_value=99_999_999))
    def test_single_digit_change_detected(self, payload):
        # Luhn guarantees detection of any single-digit substitution.
        text = f"{payload:08d}"
        digit = duns_check_digit(text)
        position = payload % 8
        original = int(text[position])
        replacement = (original + 1) % 10
        altered = text[:position] + str(replacement) + text[position + 1 :]
        assert duns_check_digit(altered) != digit or altered == text


class TestIsValidDuns:
    def test_valid_roundtrip(self):
        number = DunsNumber.from_sequence(12345)
        assert is_valid_duns(number.value)

    def test_rejects_wrong_check_digit(self):
        number = DunsNumber.from_sequence(12345).value
        corrupted = number[:8] + str((int(number[8]) + 1) % 10)
        assert not is_valid_duns(corrupted)

    @pytest.mark.parametrize("bad", ["", "12345678", "1234567890", "abcdefghi", 123456789])
    def test_rejects_malformed(self, bad):
        assert not is_valid_duns(bad)


class TestDunsNumber:
    def test_from_sequence_deterministic(self):
        assert DunsNumber.from_sequence(7) == DunsNumber.from_sequence(7)

    def test_from_sequence_unique(self):
        values = {DunsNumber.from_sequence(i).value for i in range(1000)}
        assert len(values) == 1000

    def test_from_sequence_range_check(self):
        with pytest.raises(ValueError):
            DunsNumber.from_sequence(100_000_000)
        with pytest.raises(ValueError):
            DunsNumber.from_sequence(-1)

    def test_invalid_literal_rejected(self):
        with pytest.raises(ValueError, match="invalid D-U-N-S"):
            DunsNumber("123456789" if not is_valid_duns("123456789") else "123456780")

    def test_str(self):
        number = DunsNumber.from_sequence(0)
        assert str(number) == number.value


class TestDunsRegistry:
    def _make_family(self):
        registry = DunsRegistry()
        hq = DunsNumber.from_sequence(0)
        us_branch = DunsNumber.from_sequence(1)
        de_sub = DunsNumber.from_sequence(2)
        de_branch = DunsNumber.from_sequence(3)
        registry.register(hq, country="US")
        registry.register(us_branch, country="US", parent=hq)
        registry.register(de_sub, country="DE", parent=hq)
        registry.register(de_branch, country="DE", parent=de_sub)
        return registry, hq, us_branch, de_sub, de_branch

    def test_domestic_ultimate_same_country_walks_up(self):
        registry, hq, us_branch, *_ = self._make_family()
        assert registry.domestic_ultimate(us_branch) == hq
        assert registry.domestic_ultimate(hq) == hq

    def test_domestic_ultimate_stops_at_country_boundary(self):
        # The German subtree aggregates separately from the US ultimate.
        registry, __, __, de_sub, de_branch = self._make_family()
        assert registry.domestic_ultimate(de_branch) == de_sub
        assert registry.domestic_ultimate(de_sub) == de_sub

    def test_children_of(self):
        registry, hq, us_branch, de_sub, __ = self._make_family()
        children = {c.value for c in registry.children_of(hq)}
        assert children == {us_branch.value, de_sub.value}

    def test_country_of(self):
        registry, hq, *_ = self._make_family()
        assert registry.country_of(hq) == "US"

    def test_duplicate_registration_rejected(self):
        registry, hq, *_ = self._make_family()
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(hq, country="US")

    def test_unregistered_parent_rejected(self):
        registry = DunsRegistry()
        child = DunsNumber.from_sequence(10)
        ghost = DunsNumber.from_sequence(11)
        with pytest.raises(ValueError, match="not registered"):
            registry.register(child, country="US", parent=ghost)

    def test_self_parent_rejected(self):
        registry = DunsRegistry()
        site = DunsNumber.from_sequence(12)
        with pytest.raises(ValueError, match="own parent"):
            registry.register(site, country="US", parent=site)

    def test_unregistered_lookup_raises(self):
        registry = DunsRegistry()
        with pytest.raises(KeyError):
            registry.domestic_ultimate(DunsNumber.from_sequence(99))
        with pytest.raises(KeyError):
            registry.country_of(DunsNumber.from_sequence(99))
        with pytest.raises(KeyError):
            registry.children_of(DunsNumber.from_sequence(99))

    def test_len_iter_contains(self):
        registry, hq, *_ = self._make_family()
        assert len(registry) == 4
        assert hq in registry
        assert len(list(registry)) == 4


class TestVectorisedHelpers:
    def test_batch_values_match_scalar(self):
        from repro.data.duns import duns_values_from_sequences

        sequences = list(range(50)) + [12345678, 99_999_999, 7]
        batch = duns_values_from_sequences(sequences)
        scalar = [DunsNumber.from_sequence(s).value for s in sequences]
        assert batch == scalar
        assert all(is_valid_duns(v) for v in batch)

    def test_batch_rejects_out_of_range(self):
        from repro.data.duns import duns_values_from_sequences

        with pytest.raises(ValueError):
            duns_values_from_sequences([-1])
        with pytest.raises(ValueError):
            duns_values_from_sequences([100_000_000])

    def test_batch_empty_input(self):
        from repro.data.duns import duns_values_from_sequences

        assert duns_values_from_sequences([]) == []

    def test_trusted_skips_validation_but_preserves_value(self):
        number = DunsNumber._trusted("000000174")
        assert number.value == DunsNumber.from_sequence(17).value
