"""Tests for the extension representations: GMM, Fisher vectors, LSI."""

import numpy as np
import pytest

from repro.analysis.gmm import DiagonalGMM
from repro.models.fisher import FisherVectorEncoder
from repro.models.lsi import LatentSemanticIndexing


class TestDiagonalGMM:
    def _blobs(self, rng):
        a = rng.normal((0, 0), 0.3, size=(60, 2))
        b = rng.normal((5, 5), 0.5, size=(60, 2))
        return np.vstack([a, b])

    def test_recovers_two_blobs(self, rng):
        data = self._blobs(rng)
        gmm = DiagonalGMM(2, seed=0).fit(data)
        means = gmm.means_[np.argsort(gmm.means_[:, 0])]
        assert np.allclose(means[0], [0, 0], atol=0.3)
        assert np.allclose(means[1], [5, 5], atol=0.3)
        assert np.allclose(gmm.weights_, [0.5, 0.5], atol=0.1)

    def test_responsibilities_are_distributions(self, rng):
        data = self._blobs(rng)
        gmm = DiagonalGMM(3, seed=0).fit(data)
        resp = gmm.predict_proba(data)
        assert resp.shape == (120, 3)
        assert np.allclose(resp.sum(axis=1), 1.0)
        assert np.all(resp >= 0.0)

    def test_score_improves_with_right_k(self, rng):
        data = self._blobs(rng)
        one = DiagonalGMM(1, seed=0).fit(data).score(data)
        two = DiagonalGMM(2, seed=0).fit(data).score(data)
        assert two > one + 0.5

    def test_em_increases_likelihood(self, rng):
        data = self._blobs(rng)
        short = DiagonalGMM(2, n_iter=1, seed=0).fit(data).score(data)
        long = DiagonalGMM(2, n_iter=50, seed=0).fit(data).score(data)
        assert long >= short - 1e-6

    def test_sampling_matches_moments(self, rng):
        data = self._blobs(rng)
        gmm = DiagonalGMM(2, seed=0).fit(data)
        samples = gmm.sample(4000, seed=1)
        assert np.allclose(samples.mean(axis=0), data.mean(axis=0), atol=0.3)

    def test_variance_floor_prevents_collapse(self):
        # Identical points would otherwise drive variances to zero.
        data = np.ones((30, 3))
        gmm = DiagonalGMM(2, seed=0).fit(data)
        assert np.all(gmm.variances_ >= gmm.covariance_floor)
        assert np.isfinite(gmm.score(data))

    def test_requires_enough_points(self, rng):
        with pytest.raises(ValueError):
            DiagonalGMM(10, seed=0).fit(rng.normal(size=(4, 2)))

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            DiagonalGMM(2).predict_proba(rng.normal(size=(3, 2)))


class TestFisherVectorEncoder:
    @pytest.fixture(scope="class")
    def encoder(self, corpus):
        return FisherVectorEncoder(
            n_components=3, embedding_dim=8, n_epochs=4, seed=0
        ).fit(corpus)

    def test_feature_shape(self, encoder, corpus):
        features = encoder.company_features(corpus)
        assert features.shape == (corpus.n_companies, 2 * 3 * 8)

    def test_improved_vectors_unit_norm(self, encoder, corpus):
        features = encoder.company_features(corpus)
        norms = np.linalg.norm(features, axis=1)
        nonzero = norms > 0
        assert nonzero.any()
        assert np.allclose(norms[nonzero], 1.0)

    def test_features_separate_profiles(self, encoder, corpus, universe):
        # Same-profile companies should be closer in Fisher space than
        # different-profile companies.
        labels = universe.ground_truth.company_mixture.argmax(axis=1)
        features = encoder.company_features(corpus)
        rng = np.random.default_rng(0)
        same, diff = [], []
        for __ in range(300):
            i, j = rng.integers(len(features), size=2)
            if i == j:
                continue
            distance = float(np.linalg.norm(features[i] - features[j]))
            (same if labels[i] == labels[j] else diff).append(distance)
        assert np.mean(same) < np.mean(diff)

    def test_unfitted_raises(self, corpus):
        with pytest.raises(RuntimeError):
            FisherVectorEncoder().company_features(corpus)

    def test_vocabulary_mismatch_rejected(self, encoder, split):
        from repro.data.corpus import Corpus

        narrow_vocab = tuple(split.test.vocabulary[:20])
        companies = [
            c for c in split.test.companies
            if c.categories <= set(narrow_vocab)
        ]
        if not companies:
            pytest.skip("no company fits the narrow vocabulary")
        mini = Corpus(companies, narrow_vocab)
        with pytest.raises(ValueError):
            encoder.company_features(mini)


class TestLatentSemanticIndexing:
    def test_features_shape(self, corpus):
        lsi = LatentSemanticIndexing(3).fit(corpus)
        features = lsi.company_features(corpus)
        assert features.shape == (corpus.n_companies, 3)

    def test_components_orthonormal(self, corpus):
        lsi = LatentSemanticIndexing(4).fit(corpus)
        gram = lsi.components @ lsi.components.T
        assert np.allclose(gram, np.eye(4), atol=1e-8)

    def test_singular_values_sorted(self, corpus):
        lsi = LatentSemanticIndexing(5).fit(corpus)
        values = lsi.singular_values
        assert np.all(values[:-1] >= values[1:])
        assert np.all(values > 0)

    def test_explained_variance_sums_to_one(self, corpus):
        lsi = LatentSemanticIndexing(5).fit(corpus)
        assert lsi.explained_variance_ratio.sum() == pytest.approx(1.0)

    def test_binary_input_mode(self, corpus):
        lsi = LatentSemanticIndexing(3, input_type="binary").fit(corpus)
        features = lsi.company_features(corpus)
        assert np.all(np.isfinite(features))

    def test_reconstruction_improves_with_rank(self, corpus):
        matrix = corpus.binary_matrix()
        errors = []
        for k in (1, 4, 12):
            lsi = LatentSemanticIndexing(k, input_type="binary").fit(corpus)
            projected = lsi.company_features(corpus) @ lsi.components
            errors.append(float(((matrix - projected) ** 2).sum()))
        assert errors[0] > errors[1] > errors[2]

    def test_product_embeddings_shape(self, corpus):
        lsi = LatentSemanticIndexing(3).fit(corpus)
        assert lsi.product_embeddings().shape == (38, 3)

    def test_too_many_components_rejected(self, corpus):
        with pytest.raises(ValueError):
            LatentSemanticIndexing(50).fit(corpus)

    def test_unfitted_raises(self, corpus):
        with pytest.raises(RuntimeError):
            LatentSemanticIndexing(3).company_features(corpus)

    def test_lda_features_beat_lsi_for_clustering(self, corpus, fitted_lda):
        # The paper prefers LDA over LSI-family models; on profile-generated
        # data LDA's simplex features separate companies at least as well.
        from repro.analysis.kmeans import KMeans
        from repro.analysis.silhouette import silhouette_score

        lsi = LatentSemanticIndexing(3).fit(corpus)
        scores = {}
        for name, features in (
            ("lda", fitted_lda.company_features(corpus)),
            ("lsi", lsi.company_features(corpus)),
        ):
            labels = KMeans(8, seed=0).fit_predict(features)
            scores[name] = silhouette_score(features, labels, seed=0)
        assert scores["lda"] >= scores["lsi"] - 0.05
