"""Tests for the content-addressed fit cache and its fingerprints."""

import copy
import datetime as dt
import functools

import numpy as np
import pytest

from repro import obs
from repro.data.corpus import Corpus
from repro.models.lda import LatentDirichletAllocation
from repro.models.unigram import UnigramModel
from repro.runtime import (
    FitCache,
    Uncacheable,
    cache_key,
    canonical_params,
    fingerprint_corpus,
    fit_model,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset_all()
    yield
    obs.disable_all()
    obs.reset_all()


def _lda_factory(seed=0, n_topics=3):
    return functools.partial(
        LatentDirichletAllocation,
        n_topics=n_topics,
        inference="variational",
        n_iter=20,
        seed=seed,
    )


class TestFingerprint:
    def test_stable_across_calls(self, corpus):
        assert fingerprint_corpus(corpus) == fingerprint_corpus(corpus)

    def test_changes_when_install_records_change(self, corpus):
        companies = [copy.deepcopy(c) for c in corpus.companies]
        category, first_seen = next(iter(companies[0].first_seen.items()))
        companies[0].first_seen[category] = first_seen + dt.timedelta(days=1)
        altered = Corpus(companies, corpus.vocabulary)
        assert fingerprint_corpus(altered) != fingerprint_corpus(corpus)

    def test_changes_when_companies_dropped(self, corpus):
        smaller = Corpus(list(corpus.companies)[:-1], corpus.vocabulary)
        assert fingerprint_corpus(smaller) != fingerprint_corpus(corpus)

    def test_key_differs_across_hyperparams(self, corpus):
        fp = fingerprint_corpus(corpus)
        key3 = cache_key(_lda_factory(n_topics=3)(), fp)
        key4 = cache_key(_lda_factory(n_topics=4)(), fp)
        assert key3 != key4

    def test_key_differs_across_seeds(self, corpus):
        fp = fingerprint_corpus(corpus)
        assert cache_key(_lda_factory(seed=0)(), fp) != cache_key(
            _lda_factory(seed=1)(), fp
        )

    def test_key_differs_across_model_classes(self, corpus):
        fp = fingerprint_corpus(corpus)
        assert cache_key(UnigramModel(), fp) != cache_key(_lda_factory()(), fp)

    def test_generator_params_are_uncacheable(self):
        model = UnigramModel()
        model.rng_state = np.random.default_rng(0)
        with pytest.raises(Uncacheable):
            canonical_params(model)


class TestFitCache:
    def test_miss_then_hit(self, tmp_path, split):
        cache = FitCache(tmp_path)
        first = cache.fit(_lda_factory(), split.train)
        second = cache.fit(_lda_factory(), split.train)
        assert (cache.misses, cache.hits) == (1, 1)
        assert np.array_equal(first.phi, second.phi)
        assert first.log_prob(split.test) == second.log_prob(split.test)

    def test_hit_matches_fresh_fit_exactly(self, tmp_path, split):
        cache = FitCache(tmp_path)
        cache.fit(_lda_factory(), split.train)
        cached = cache.fit(_lda_factory(), split.train)
        fresh = _lda_factory()().fit(split.train)
        assert np.array_equal(cached.phi, fresh.phi)
        assert cached.log_prob(split.test) == fresh.log_prob(split.test)

    def test_different_hyperparams_never_share_entries(self, tmp_path, split):
        cache = FitCache(tmp_path)
        three = cache.fit(_lda_factory(n_topics=3), split.train)
        four = cache.fit(_lda_factory(n_topics=4), split.train)
        assert cache.hits == 0
        assert three.phi.shape != four.phi.shape

    def test_different_corpus_never_shares_entries(self, tmp_path, corpus, split):
        cache = FitCache(tmp_path)
        cache.fit(_lda_factory(), split.train)
        cache.fit(_lda_factory(), split.test)
        assert (cache.misses, cache.hits) == (2, 0)

    def test_corrupted_entry_is_a_miss_not_an_error(self, tmp_path, split):
        cache = FitCache(tmp_path)
        cache.fit(_lda_factory(), split.train)
        for entry in tmp_path.glob("*.npz"):
            entry.write_bytes(b"not an npz archive")
        refit = cache.fit(_lda_factory(), split.train)
        assert cache.misses == 2
        assert refit.is_fitted

    def test_counters_recorded_when_metrics_enabled(self, tmp_path, split):
        from repro.obs import metrics

        metrics.enable()
        cache = FitCache(tmp_path)
        cache.fit(_lda_factory(), split.train)
        cache.fit(_lda_factory(), split.train)
        counters = metrics.snapshot()["counters"]
        assert counters["cache.miss"] == 1
        assert counters["cache.hit"] == 1

    def test_precomputed_fingerprint_matches_implicit(self, tmp_path, split):
        cache = FitCache(tmp_path)
        cache.fit(_lda_factory(), split.train)
        hit = cache.fit(
            _lda_factory(),
            split.train,
            corpus_fingerprint=fingerprint_corpus(split.train),
        )
        assert cache.hits == 1
        assert hit.is_fitted

    def test_pickle_round_trip_keeps_root_only(self, tmp_path):
        import pickle

        cache = FitCache(tmp_path)
        cache.hits = 5
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.root == cache.root
        assert (clone.hits, clone.misses) == (0, 0)

    def test_fit_model_without_cache(self, split):
        model = fit_model(_lda_factory(), split.train)
        assert model.is_fitted


class _UnsavableModel(UnigramModel):
    """A model whose artifact can never be written."""

    def save(self, path):
        raise OSError("disk on fire")


class TestStoreFailures:
    def test_store_failure_is_counted_not_raised(self, tmp_path, split):
        from repro.obs import metrics

        metrics.enable()
        cache = FitCache(tmp_path)
        fitted = cache.fit(_UnsavableModel, split.train)
        assert fitted.is_fitted
        assert metrics.snapshot()["counters"]["cache.store_failed"] == 1
        assert list(tmp_path.glob("*.npz")) == []

    def test_store_failure_still_returns_fresh_fits(self, tmp_path, split):
        cache = FitCache(tmp_path)
        cache.fit(_UnsavableModel, split.train)
        cache.fit(_UnsavableModel, split.train)
        assert (cache.misses, cache.hits) == (2, 0)


class TestOrphanSweep:
    def test_old_temp_files_swept_on_init(self, tmp_path):
        import os
        import time

        old = tmp_path / ".tmp-dead-writer.npz"
        old.write_bytes(b"orphan")
        stale = time.time() - 7200
        os.utime(old, (stale, stale))
        fresh = tmp_path / ".tmp-live-writer.npz"
        fresh.write_bytes(b"in flight")
        FitCache(tmp_path)
        assert not old.exists()
        assert fresh.exists()

    def test_missing_root_is_fine(self, tmp_path):
        cache = FitCache(tmp_path / "nonexistent")
        assert cache.hits == 0

    def test_sweep_ignores_real_entries(self, tmp_path, split):
        import os
        import time

        cache = FitCache(tmp_path)
        cache.fit(_lda_factory(), split.train)
        entries = list(tmp_path.glob("*.npz"))
        assert entries
        stale = time.time() - 7200
        for entry in entries:
            os.utime(entry, (stale, stale))
        FitCache(tmp_path)
        assert sorted(tmp_path.glob("*.npz")) == sorted(entries)
