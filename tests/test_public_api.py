"""Public-API integrity: exports resolve and everything public is documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.data",
    "repro.preprocessing",
    "repro.models",
    "repro.models.nn",
    "repro.analysis",
    "repro.recommend",
    "repro.app",
    "repro.experiments",
    "repro.obs",
    "repro.runtime",
]


def _walk_modules():
    seen = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        seen.append(package)
        for info in pkgutil.iter_modules(package.__path__):
            seen.append(importlib.import_module(f"{package_name}.{info.name}"))
    return seen


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_entries_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", ()):
            assert hasattr(package, name), f"{package_name}.__all__ lists missing {name}"

    def test_top_level_covers_core_workflow(self):
        for name in (
            "InstallBaseSimulator", "Corpus", "LatentDirichletAllocation",
            "LSTMModel", "RecommendationEvaluator", "SalesRecommendationTool",
        ):
            assert name in repro.__all__

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        for module in _walk_modules():
            assert module.__doc__, f"{module.__name__} lacks a module docstring"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in _walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not obj.__doc__:
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_methods_documented(self):
        from repro.models.base import GenerativeModel

        undocumented = []
        for module in _walk_modules():
            for cls_name, cls in vars(module).items():
                if cls_name.startswith("_") or not inspect.isclass(cls):
                    continue
                if getattr(cls, "__module__", None) != module.__name__:
                    continue
                for method_name, method in vars(cls).items():
                    if method_name.startswith("_"):
                        continue
                    if not (inspect.isfunction(method) or isinstance(method, property)):
                        continue
                    target = method.fget if isinstance(method, property) else method
                    if target is None or target.__doc__:
                        continue
                    # Interface implementations inherit their contract docs.
                    base_doc = getattr(
                        getattr(GenerativeModel, method_name, None), "__doc__", None
                    )
                    if base_doc:
                        continue
                    undocumented.append(f"{module.__name__}.{cls_name}.{method_name}")
        assert not undocumented, f"undocumented public methods: {undocumented}"
