"""Tests for the recommendation harness: windows, recommender, evaluation."""

import datetime as dt
import functools

import numpy as np
import pytest

from repro.models.lda import LatentDirichletAllocation
from repro.models.unigram import UnigramModel
from repro.recommend.baselines import RandomRecommender
from repro.recommend.evaluation import (
    RecommendationEvaluator,
    ThresholdCurve,
    WindowObservation,
)
from repro.recommend.recommender import ThresholdRecommender
from repro.recommend.windows import SlidingWindowSpec, Window


class TestWindows:
    def test_paper_layout(self):
        spec = SlidingWindowSpec()
        windows = spec.windows()
        assert len(windows) == 13
        assert windows[0].start == dt.date(2013, 1, 1)
        assert windows[0].end == dt.date(2014, 1, 1)
        assert windows[-1].start == dt.date(2015, 1, 1)
        assert windows[-1].end == dt.date(2016, 1, 1)

    def test_stride(self):
        spec = SlidingWindowSpec(stride_months=2)
        windows = spec.windows()
        assert windows[1].start == dt.date(2013, 3, 1)

    def test_last_end(self):
        assert SlidingWindowSpec().last_end == dt.date(2016, 1, 1)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            Window(start=dt.date(2013, 1, 1), end=dt.date(2013, 1, 1))

    def test_invalid_spec(self):
        with pytest.raises((ValueError, TypeError)):
            SlidingWindowSpec(window_months=0)


class TestWindowObservation:
    def test_metrics(self):
        obs = WindowObservation(
            window_start=dt.date(2013, 1, 1), threshold=0.1,
            n_retrieved=10, n_correct=4, n_relevant=8,
        )
        assert obs.precision == pytest.approx(0.4)
        assert obs.recall == pytest.approx(0.5)
        assert obs.f1 == pytest.approx(2 * 0.4 * 0.5 / 0.9)

    def test_zero_retrieved_precision_nan(self):
        obs = WindowObservation(
            window_start=dt.date(2013, 1, 1), threshold=0.9,
            n_retrieved=0, n_correct=0, n_relevant=5,
        )
        assert np.isnan(obs.precision)
        assert obs.recall == 0.0
        assert np.isnan(obs.f1)

    def test_zero_relevant_recall_zero(self):
        obs = WindowObservation(
            window_start=dt.date(2013, 1, 1), threshold=0.1,
            n_retrieved=3, n_correct=0, n_relevant=0,
        )
        assert obs.recall == 0.0


class TestThresholdRecommender:
    @pytest.fixture(scope="class")
    def recommender(self, fitted_lda):
        return ThresholdRecommender(fitted_lda, threshold=0.05)

    def test_requires_fitted_model(self):
        with pytest.raises(ValueError, match="fitted"):
            ThresholdRecommender(UnigramModel())

    def test_requires_generative_model(self):
        with pytest.raises(TypeError):
            ThresholdRecommender(object())

    def test_never_recommends_owned(self, recommender, split):
        history = split.test.sequences()[0]
        recommendations = recommender.recommend(history)
        assert not set(recommendations) & set(history)

    def test_respects_threshold(self, recommender, split):
        history = split.test.sequences()[0][:4]
        scores = recommender.scores(history)
        for token in recommender.recommend(history, threshold=0.1):
            assert scores[token] >= 0.1

    def test_higher_threshold_fewer_recommendations(self, recommender, split):
        history = split.test.sequences()[0][:4]
        low = recommender.recommend(history, threshold=0.02)
        high = recommender.recommend(history, threshold=0.2)
        assert set(high) <= set(low)

    def test_recommendations_sorted_by_score(self, recommender, split):
        history = split.test.sequences()[0][:4]
        recs = recommender.recommend(history, threshold=0.01)
        scores = recommender.scores(history)
        values = [scores[t] for t in recs]
        assert values == sorted(values, reverse=True)

    def test_top_k(self, recommender, split):
        history = split.test.sequences()[0][:4]
        top = recommender.top_k(history, 5)
        assert len(top) == 5
        assert not set(top) & set(history)

    def test_top_k_rejects_nonpositive(self, recommender):
        with pytest.raises(ValueError):
            recommender.top_k([], 0)

    def test_recommend_scored_matches_recommend(self, recommender, split):
        history = split.test.sequences()[0][:4]
        scored = recommender.recommend_scored(history, threshold=0.02)
        assert [token for token, __ in scored] == recommender.recommend(
            history, threshold=0.02
        )
        scores = recommender.scores(history)
        for token, score in scored:
            assert score == pytest.approx(scores[token])
            assert isinstance(token, int) and isinstance(score, float)

    def test_recommend_scored_sorted_descending(self, recommender, split):
        history = split.test.sequences()[0][:4]
        values = [s for __, s in recommender.recommend_scored(history, threshold=0.01)]
        assert values == sorted(values, reverse=True)

    def test_out_of_range_token_raises_value_error(self, recommender):
        # The vectorized path must reject dirty histories up front with a
        # ValueError naming the vocabulary, not an IndexError deep in numpy.
        with pytest.raises(ValueError, match="vocabulary"):
            recommender.scores([0, 38])
        with pytest.raises(ValueError, match="vocabulary"):
            recommender.recommend([-1])

    def test_non_integer_token_raises_type_error(self, recommender):
        with pytest.raises(TypeError, match="non-integer"):
            recommender.scores([0, "server_HW"])
        with pytest.raises(TypeError, match="non-integer"):
            recommender.top_k([True], 3)


class TestRandomRecommender:
    def test_uniform_scores(self, split):
        model = RandomRecommender().fit(split.train)
        proba = model.next_product_proba([0, 1])
        assert np.allclose(proba, 1.0 / 38.0)

    def test_perplexity_equals_vocab_size(self, split):
        model = RandomRecommender().fit(split.train)
        assert model.perplexity(split.test) == pytest.approx(38.0)


class TestEvaluator:
    @pytest.fixture(scope="class")
    def curves(self, corpus):
        evaluator = RecommendationEvaluator(
            corpus,
            spec=SlidingWindowSpec(n_windows=3),
            thresholds=[0.0, 0.05, 0.1, 0.3],
            retrain_per_window=False,
        )
        return evaluator.evaluate(
            {
                "lda": lambda: LatentDirichletAllocation(
                    n_topics=3, inference="variational", n_iter=40, seed=0
                ),
                "random": lambda: RandomRecommender(),
            }
        )

    def test_one_observation_per_window(self, curves):
        for curve in curves.values():
            for threshold in curve.thresholds:
                assert len(curve.observations[threshold]) == 3

    def test_threshold_zero_has_full_recall(self, curves):
        recall, __, __ = curves["lda"].recall(0.0)
        assert recall == pytest.approx(1.0)

    def test_recall_monotone_in_threshold(self, curves):
        recalls = [curves["lda"].recall(t)[0] for t in [0.0, 0.05, 0.1, 0.3]]
        assert all(a >= b - 1e-12 for a, b in zip(recalls, recalls[1:]))

    def test_random_baseline_cliff_at_uniform_probability(self, curves):
        # 1/38 ~ 0.026: everything retrieved below, nothing above.
        assert curves["random"].recall(0.0)[0] == pytest.approx(1.0)
        assert curves["random"].retrieved(0.05)[0] == 0.0

    def test_confidence_interval_brackets_mean(self, curves):
        mean, low, high = curves["lda"].recall(0.05)
        assert low <= mean <= high

    def test_lda_beats_random_at_real_thresholds(self, curves):
        assert curves["lda"].recall(0.05)[0] > 0.2

    def test_as_rows_structure(self, curves):
        rows = curves["lda"].as_rows()
        assert len(rows) == 4
        assert {"threshold", "recall", "precision", "f1", "retrieved",
                "correct", "relevant"} <= set(rows[0])

    def test_requires_factories(self, corpus):
        evaluator = RecommendationEvaluator(corpus, thresholds=[0.1])
        with pytest.raises(ValueError):
            evaluator.evaluate({})

    def test_requires_thresholds(self, corpus):
        with pytest.raises(ValueError):
            RecommendationEvaluator(corpus, thresholds=[])

    def test_retrain_and_train_once_agree_roughly(self, corpus):
        spec = SlidingWindowSpec(n_windows=2)
        results = {}
        for retrain in (True, False):
            evaluator = RecommendationEvaluator(
                corpus, spec=spec, thresholds=[0.05], retrain_per_window=retrain
            )
            curves = evaluator.evaluate(
                {"u": lambda: UnigramModel()}
            )
            results[retrain] = curves["u"].recall(0.05)[0]
        assert results[True] == pytest.approx(results[False], abs=0.1)


def _cheap_factories():
    return {
        "lda": functools.partial(
            LatentDirichletAllocation,
            n_topics=3,
            inference="variational",
            n_iter=20,
            seed=0,
        ),
        "unigram": functools.partial(UnigramModel),
    }


class TestParallelDeterminism:
    """Same seed, any job count: identical observations (the tentpole claim)."""

    @pytest.mark.parametrize("retrain", [True, False])
    def test_parallel_matches_serial_exactly(self, corpus, retrain):
        spec = SlidingWindowSpec(n_windows=3)
        curves = {}
        for n_jobs in (1, 4):
            evaluator = RecommendationEvaluator(
                corpus,
                spec=spec,
                thresholds=[0.0, 0.05, 0.1],
                retrain_per_window=retrain,
                n_jobs=n_jobs,
            )
            curves[n_jobs] = evaluator.evaluate(_cheap_factories())
        for name in curves[1]:
            assert curves[1][name].observations == curves[4][name].observations

    def test_parallel_counters_match_serial(self, corpus):
        from repro import obs
        from repro.obs import metrics

        spec = SlidingWindowSpec(n_windows=2)
        totals = {}
        try:
            for n_jobs in (1, 2):
                obs.reset_all()
                metrics.enable()
                RecommendationEvaluator(
                    corpus,
                    spec=spec,
                    thresholds=[0.05],
                    retrain_per_window=True,
                    n_jobs=n_jobs,
                ).evaluate(_cheap_factories())
                counters = metrics.snapshot()["counters"]
                totals[n_jobs] = {
                    key: counters.get(key, 0)
                    for key in (
                        "recommend.windows",
                        "recommend.companies",
                        "recommend.candidates",
                        "recommend.relevant",
                        "recommend.retrieved",
                        "recommend.hits",
                    )
                }
        finally:
            obs.disable_all()
            obs.reset_all()
        assert totals[1] == totals[2]

    def test_cached_fit_matches_fresh_fit(self, corpus, tmp_path):
        from repro.runtime import FitCache

        spec = SlidingWindowSpec(n_windows=2)

        def run(cache):
            evaluator = RecommendationEvaluator(
                corpus,
                spec=spec,
                thresholds=[0.05],
                retrain_per_window=True,
                fit_cache=cache,
            )
            return evaluator.evaluate(_cheap_factories())

        fresh = run(None)
        cache = FitCache(tmp_path)
        cold = run(cache)
        warm = run(cache)
        assert cache.hits > 0
        for name in fresh:
            assert fresh[name].observations == cold[name].observations
            assert fresh[name].observations == warm[name].observations
