"""Property-based tests: model invariants over randomised corpora.

A hypothesis strategy generates small random universes (random ownership
sets with random dates over a small vocabulary); every model must uphold
its contract on whatever comes out: finite perplexities >= 1, probability
outputs inside the simplex bounds, representation rows in the right space.
"""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.company import Company
from repro.data.corpus import Corpus
from repro.data.duns import DunsNumber
from repro.models.chh import ConditionalHeavyHitters
from repro.models.lda import LatentDirichletAllocation
from repro.models.ngram import NGramModel
from repro.models.unigram import UnigramModel

VOCAB = tuple(f"cat_{i}" for i in range(8))


@st.composite
def corpora(draw, min_companies=4, max_companies=12):
    """Random small corpora over an 8-category vocabulary."""
    n_companies = draw(st.integers(min_companies, max_companies))
    companies = []
    for i in range(n_companies):
        owned = draw(
            st.sets(st.integers(0, len(VOCAB) - 1), min_size=1, max_size=len(VOCAB))
        )
        first_seen = {}
        for token in owned:
            day_offset = draw(st.integers(0, 5000))
            first_seen[VOCAB[token]] = dt.date(2000, 1, 1) + dt.timedelta(
                days=day_offset
            )
        companies.append(
            Company(
                duns=DunsNumber.from_sequence(i),
                name=f"C{i}",
                country="US",
                sic2=80,
                first_seen=first_seen,
            )
        )
    return Corpus(companies, VOCAB)


class TestCorpusInvariants:
    @settings(max_examples=30, deadline=None)
    @given(corpora())
    def test_matrix_and_sequences_agree(self, corpus):
        matrix = corpus.binary_matrix()
        for row, seq in zip(matrix, corpus.sequences()):
            assert set(np.flatnonzero(row)) == set(seq)
            assert len(seq) == len(set(seq))  # categories never repeat

    @settings(max_examples=30, deadline=None)
    @given(corpora())
    def test_sequences_time_sorted(self, corpus):
        for dated in corpus.dated_sequences():
            dates = [d for __, d in dated]
            assert dates == sorted(dates)

    @settings(max_examples=30, deadline=None)
    @given(corpora())
    def test_total_products_matches_matrix(self, corpus):
        assert corpus.total_products() == int(corpus.binary_matrix().sum())


class TestUnigramProperties:
    @settings(max_examples=20, deadline=None)
    @given(corpora())
    def test_fit_produces_distribution(self, corpus):
        model = UnigramModel().fit(corpus)
        assert model.proba.sum() == pytest.approx(1.0)
        assert np.all(model.proba > 0.0)

    @settings(max_examples=20, deadline=None)
    @given(corpora())
    def test_self_perplexity_bounded_by_vocab(self, corpus):
        model = UnigramModel().fit(corpus)
        perplexity = model.perplexity(corpus)
        assert 1.0 <= perplexity <= len(VOCAB) + 1e-9


class TestNGramProperties:
    @settings(max_examples=20, deadline=None)
    @given(corpora(), st.integers(1, 3))
    def test_conditionals_are_distributions(self, corpus, order):
        model = NGramModel(order=order).fit(corpus)
        for history in ([], [0], [1, 2], [3, 4, 5]):
            proba = model.next_product_proba(history)
            assert proba.sum() == pytest.approx(1.0)
            assert np.all(proba >= 0.0)

    @settings(max_examples=20, deadline=None)
    @given(corpora())
    def test_log_prob_finite_on_unseen_corpus(self, corpus):
        # Train on half the companies, score the rest: smoothing must keep
        # every sequence finite.
        half = corpus.n_companies // 2
        if half == 0 or half == corpus.n_companies:
            return
        train = corpus.subset(range(half))
        test = corpus.subset(range(half, corpus.n_companies))
        model = NGramModel(order=2).fit(train)
        assert np.isfinite(model.log_prob(test))


class TestLDAProperties:
    @settings(max_examples=10, deadline=None)
    @given(corpora(min_companies=6), st.integers(2, 4))
    def test_fitted_parameters_live_on_simplices(self, corpus, n_topics):
        model = LatentDirichletAllocation(
            n_topics=n_topics, inference="variational", n_iter=15, seed=0
        ).fit(corpus)
        assert np.allclose(model.phi.sum(axis=1), 1.0)
        assert np.all(model.phi >= 0.0)
        theta = model.company_features(corpus)
        assert np.allclose(theta.sum(axis=1), 1.0)
        assert np.all(theta >= 0.0)

    @settings(max_examples=10, deadline=None)
    @given(corpora(min_companies=6))
    def test_recommender_scores_are_probabilities(self, corpus):
        model = LatentDirichletAllocation(
            n_topics=2, inference="variational", n_iter=15, seed=0
        ).fit(corpus)
        scores = model.batch_next_product_proba(corpus.sequences())
        assert np.all(scores >= 0.0)
        assert np.allclose(scores.sum(axis=1), 1.0)


class TestCHHProperties:
    @settings(max_examples=20, deadline=None)
    @given(corpora())
    def test_conditionals_normalised(self, corpus):
        model = ConditionalHeavyHitters(depth=2).fit(corpus)
        for history in ([], [0], [1, 2]):
            proba = model.next_product_proba(history)
            assert proba.sum() == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(corpora())
    def test_heavy_hitters_thresholds_respected(self, corpus):
        model = ConditionalHeavyHitters(depth=2, min_context_count=2).fit(corpus)
        for __, __, conditional in model.heavy_hitters(min_conditional=0.3):
            assert conditional >= 0.3
