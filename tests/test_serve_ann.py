"""ANN index, argpartition top-k, result cache and swap-generation tests.

Covers the serving speed layer's correctness obligations:

* ``top_k_from_scores`` (argpartition selection) is bit-identical to the
  stable full-sort ranking it replaced, including forced score ties;
* the LSH index is deterministic in its seed, its incremental ``add``
  path is query-identical to a single-shot build, and its recall@10 on
  real LDA company features clears the serving floor;
* the top-k cache is a correct LRU keyed by the registry generation, so
  a hot-swap atomically invalidates every cached answer;
* the registry publishes a monotonic generation and fires promotion
  subscribers (exceptions contained);
* ``/similar`` and ``/recommend`` report the answering backend/path in
  their bodies and ``serve.path{...}`` counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.similarity import top_k_from_scores, top_k_similar
from repro.app.filters import FirmographicFilter
from repro.app.tool import SalesRecommendationTool
from repro.data.internal import InternalSalesDatabase
from repro.models.ngram import NGramModel
from repro.serve import (
    LSHIndex,
    ModelRegistry,
    RecommendationService,
    ServiceConfig,
    TopKCache,
)
from repro.serve.ann import unit_rows


# ----------------------------------------------------------------------
# argpartition top-k == stable full sort (satellite 1)
# ----------------------------------------------------------------------
class TestTopKFromScores:
    def _reference(self, scores, k, exclude=None, candidate_mask=None):
        """The old implementation: stable argsort over the full array."""
        eligible = np.ones(len(scores), dtype=bool)
        if candidate_mask is not None:
            eligible &= candidate_mask
        if exclude is not None:
            eligible[exclude] = False
        candidates = np.flatnonzero(eligible)
        order = np.argsort(-scores[candidates], kind="stable")
        return candidates[order][:k]

    @pytest.mark.parametrize("n,k", [(1, 1), (7, 3), (50, 10), (50, 50), (50, 80)])
    def test_matches_stable_sort_on_random_scores(self, rng, n, k):
        scores = rng.normal(size=n)
        got = top_k_from_scores(scores, k)
        want = self._reference(scores, k)
        assert np.array_equal(got, want)

    def test_matches_stable_sort_with_forced_ties(self, rng):
        # Quantized scores force large tie groups: the boundary of the
        # partition must resolve them smallest-index-first, exactly like
        # the stable sort did.
        for trial in range(20):
            scores = np.round(rng.normal(size=60), 1)
            for k in (1, 5, 17, 59):
                got = top_k_from_scores(scores, k)
                want = self._reference(scores, k)
                assert np.array_equal(got, want), (trial, k)

    def test_all_equal_scores(self):
        scores = np.full(12, 0.5)
        assert np.array_equal(top_k_from_scores(scores, 4), [0, 1, 2, 3])

    def test_exclude_and_mask(self, rng):
        scores = np.round(rng.normal(size=40), 1)
        mask = rng.random(40) < 0.6
        mask[3] = True
        got = top_k_from_scores(scores, 5, exclude=3, candidate_mask=mask)
        want = self._reference(scores, 5, exclude=3, candidate_mask=mask)
        assert np.array_equal(got, want)

    def test_top_k_similar_unchanged_by_rewrite(self, rng):
        # The public helper must rank exactly as before the argpartition
        # rewrite: unit-cosine scores, stable ties, query excluded.
        features = rng.normal(size=(30, 4))
        features[5] = 0.0  # zero-norm row stays dissimilar to everything
        hits = top_k_similar(features, 2, 10)
        unit = unit_rows(features)
        scores = unit @ unit[2]
        scores[5] = 0.0
        want = self._reference(scores, 10, exclude=2)
        assert [i for i, _ in hits] == list(want)
        for i, score in hits:
            assert score == pytest.approx(float(scores[i]))


# ----------------------------------------------------------------------
# LSH index
# ----------------------------------------------------------------------
class TestLSHIndex:
    @pytest.fixture(scope="class")
    def vectors(self):
        rng = np.random.default_rng(42)
        centers = rng.normal(size=(8, 6))
        assignments = rng.integers(0, 8, size=400)
        return centers[assignments] + 0.15 * rng.normal(size=(400, 6))

    def test_seeded_build_is_reproducible(self, vectors):
        a = LSHIndex.build(vectors, seed=3)
        b = LSHIndex.build(vectors, seed=3)
        for q in (0, 17, 399):
            assert a.search(vectors[q], 10) == b.search(vectors[q], 10)
        assert a.build_recall == b.build_recall

    def test_incremental_add_matches_single_shot_build(self, vectors):
        whole = LSHIndex.build(vectors, seed=3, check_recall_queries=0)
        grown = LSHIndex(vectors.shape[1], seed=3)
        grown.add(vectors[:150])
        grown.add(vectors[150:])
        assert grown.size == whole.size
        for q in (1, 77, 250):
            assert grown.search(vectors[q], 10) == whole.search(vectors[q], 10)

    def test_rebuild_reuses_planes_and_stamps_version(self, vectors):
        index = LSHIndex.build(vectors, seed=3, check_recall_queries=0)
        before = index.search(vectors[5], 10)
        index.rebuild(vectors, model_version=7)
        assert index.search(vectors[5], 10) == before
        assert index.model_version == 7

    def test_scores_are_exact_cosine(self, vectors):
        index = LSHIndex.build(vectors, seed=3, check_recall_queries=0)
        unit = unit_rows(vectors)
        for i, score in index.search(vectors[9], 10, exclude=9):
            assert score == pytest.approx(float(unit[i] @ unit[9]))
            assert i != 9

    def test_recall_floor_on_lda_company_features(self, corpus, fitted_lda):
        features = fitted_lda.company_features(corpus)
        index = LSHIndex.build(features, seed=0)
        recall = index.recall_at_k(k=10, n_queries=32, seed=0)
        assert recall >= 0.95
        assert index.build_recall is not None and index.build_recall >= 0.95

    def test_min_recall_gate_raises_on_weak_build(self, vectors):
        # One table, one bit, one candidate: recall collapses, the gate
        # must refuse to serve the index.
        with pytest.raises(ValueError, match="recall"):
            LSHIndex.build(
                vectors, n_tables=1, n_bits=16, min_candidates=1, min_recall=0.999
            )

    def test_zero_query_and_empty_index(self, vectors):
        index = LSHIndex.build(vectors, seed=3, check_recall_queries=0)
        assert index.search(np.zeros(vectors.shape[1]), 5) == []
        assert LSHIndex(4).search(np.ones(4), 5) == []

    def test_dimension_mismatch_raises(self, vectors):
        index = LSHIndex.build(vectors, seed=3, check_recall_queries=0)
        with pytest.raises(ValueError, match="dim"):
            index.add(np.ones((3, vectors.shape[1] + 1)))
        with pytest.raises(ValueError, match="dim"):
            index.search(np.ones(vectors.shape[1] + 1), 5)


# ----------------------------------------------------------------------
# Tool backends
# ----------------------------------------------------------------------
class TestToolBackends:
    @pytest.fixture(scope="class")
    def tool(self, corpus, fitted_lda, universe):
        internal = InternalSalesDatabase(corpus.companies, seed=7)
        tool = SalesRecommendationTool(
            corpus, fitted_lda.company_features(corpus), internal
        )
        tool.enable_ann(seed=0)
        return tool

    def test_ann_results_are_exactly_reranked(self, tool):
        duns = tool.corpus.companies[0].duns.value
        exact, used_exact = tool.similar_companies_detail(duns, k=5, backend="exact")
        approx, used_ann = tool.similar_companies_detail(duns, k=5, backend="ann")
        assert used_exact == "exact" and used_ann == "ann"
        exact_scores = {h.duns: h.similarity for h in exact}
        for hit in approx:
            if hit.duns in exact_scores:  # shared hits carry exact scores
                assert hit.similarity == pytest.approx(exact_scores[hit.duns])

    def test_filters_fall_back_to_exact(self, tool):
        duns = tool.corpus.companies[0].duns.value
        filters = FirmographicFilter(country="US")
        hits, used = tool.similar_companies_detail(
            duns, k=5, filters=filters, backend="ann"
        )
        assert used == "exact"

    def test_missing_index_falls_back_to_exact(self, corpus, fitted_lda):
        internal = InternalSalesDatabase(corpus.companies, seed=7)
        bare = SalesRecommendationTool(
            corpus, fitted_lda.company_features(corpus), internal
        )
        duns = corpus.companies[0].duns.value
        hits, used = bare.similar_companies_detail(duns, k=5, backend="ann")
        assert used == "exact" and len(hits) == 5

    def test_unknown_backend_rejected(self, tool):
        with pytest.raises(ValueError, match="backend"):
            tool.similar_companies(
                tool.corpus.companies[0].duns.value, k=3, backend="fancy"
            )

    def test_refresh_features_rebuilds_index(self, corpus, fitted_lda):
        internal = InternalSalesDatabase(corpus.companies, seed=7)
        features = fitted_lda.company_features(corpus)
        tool = SalesRecommendationTool(corpus, features, internal)
        tool.enable_ann(seed=0)
        duns = corpus.companies[3].duns.value
        before = tool.similar_companies(duns, k=5, backend="ann")
        tool.refresh_features(features[:, ::-1].copy(), model_version=9)
        after = tool.similar_companies(duns, k=5, backend="ann")
        assert tool.model_version == 9
        assert tool.ann_index.model_version == 9
        # Reversed topic order preserves cosine geometry: same neighbors.
        assert [h.duns for h in after] == [h.duns for h in before]


# ----------------------------------------------------------------------
# Top-k LRU cache
# ----------------------------------------------------------------------
class TestTopKCache:
    def test_lru_eviction_order(self):
        cache = TopKCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a" to most-recent
        assert cache.put("c", 3) == 1  # evicts "b", the least-recent
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_stats_and_invalidate(self):
        cache = TopKCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("ghost")
        assert cache.stats() == {
            "size": 1, "capacity": 4, "hits": 1, "misses": 1, "evictions": 0,
        }
        assert cache.invalidate() == 1
        assert len(cache) == 0

    def test_put_existing_key_updates_without_eviction(self):
        cache = TopKCache(1)
        cache.put("a", 1)
        assert cache.put("a", 2) == 0
        assert cache.get("a") == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            TopKCache(0)


# ----------------------------------------------------------------------
# Registry generation + promotion subscribers
# ----------------------------------------------------------------------
class TestRegistryGeneration:
    def test_generation_monotonic_over_installs_and_swaps(self, split, fitted_lda):
        registry = ModelRegistry(split.validation, perplexity_tolerance=1.5)
        assert registry.generation == 0
        registry.install("lda", fitted_lda)
        assert registry.generation == 1
        registry.install("ngram", NGramModel(order=2).fit(split.train))
        assert registry.generation == 2
        report = registry.swap("ngram", NGramModel(order=2).fit(split.train))
        assert report.status == "promoted"
        assert report.generation == registry.generation == 3
        rejected = registry.swap("ngram", NGramModel())
        assert rejected.status == "rejected"
        assert registry.generation == 3  # rejections never bump

    def test_subscribers_fire_on_promotion_only(self, split, fitted_lda):
        registry = ModelRegistry(split.validation, perplexity_tolerance=1.5)
        registry.install("lda", fitted_lda)
        seen = []
        registry.subscribe(lambda report: seen.append(report.generation))
        registry.swap("lda", NGramModel())  # rejected: no notification
        assert seen == []
        registry.swap("lda", fitted_lda)
        assert seen == [2]

    def test_subscriber_exception_does_not_break_swap(self, split, fitted_lda):
        registry = ModelRegistry(split.validation, perplexity_tolerance=1.5)
        registry.install("lda", fitted_lda)

        def bad_subscriber(report):
            raise RuntimeError("consumer bug")

        registry.subscribe(bad_subscriber)
        report = registry.swap("lda", fitted_lda)
        assert report.status == "promoted"


# ----------------------------------------------------------------------
# Service: cache keyed by generation, swap invalidation, path audit
# ----------------------------------------------------------------------
class TestServiceCacheAndBackends:
    @pytest.fixture()
    def service(self, corpus, split, fitted_lda):
        registry = ModelRegistry(split.validation, perplexity_tolerance=1.5)
        registry.install("lda", fitted_lda)
        registry.install("ngram", NGramModel(order=2).fit(split.train))
        internal = InternalSalesDatabase(corpus.companies, seed=7)
        tool = SalesRecommendationTool(
            corpus, fitted_lda.company_features(corpus), internal
        )
        tool.model_version = registry.generation
        tool.enable_ann(seed=0)
        return RecommendationService(
            corpus=corpus,
            registry=registry,
            tiers=("lda", "ngram"),
            tool=tool,
            feature_slot="lda",
            config=ServiceConfig(topk_cache_size=32, similarity="ann"),
        )

    def test_repeat_request_is_served_from_cache(self, service, corpus):
        payload = {"history": [corpus.vocabulary[0]], "top_n": 4}
        first = service.handle("POST", "/recommend", payload).body
        second = service.handle("POST", "/recommend", payload).body
        assert first["path"] == "single"
        assert second["path"] == "cached"
        assert second["recommendations"] == first["recommendations"]
        assert second["tier"] == first["tier"]
        counters = service.metrics_snapshot()["counters"]
        assert counters['serve.cache.hit{endpoint="/recommend"}'] == 1
        assert counters['serve.cache.miss{endpoint="/recommend"}'] == 1
        # Cache hits still count as tier answers: the accounting
        # invariant (tier answers == 2xx responses carrying a tier).
        assert counters['serve.tier.answers{tier="lda"}'] == 2

    def test_hotswap_invalidates_cache_atomically(self, service, corpus, fitted_lda):
        payload = {"history": [corpus.vocabulary[1]], "top_n": 3}
        service.handle("POST", "/recommend", payload)
        assert service.handle("POST", "/recommend", payload).body["path"] == "cached"
        generation_before = service.registry.generation
        swap = service.handle(
            "POST", "/admin/hotswap", {"name": "ngram", "path": "unused"}
        )
        # The admin endpoint stages from a path; stage failure is a
        # rejection and must NOT invalidate. Promote through the registry.
        assert swap.status == 409
        assert service.handle("POST", "/recommend", payload).body["path"] == "cached"
        report = service.registry.swap("lda", fitted_lda)
        assert report.status == "promoted"
        assert service.registry.generation == generation_before + 1
        after = service.handle("POST", "/recommend", payload).body
        assert after["path"] == "single"  # generation changed: cache miss
        assert after["model_versions"]["lda"] == 2
        assert len(service.topk_cache) == 1  # old entries were dropped

    def test_promotion_refreshes_tool_features(self, service, fitted_lda):
        tool = service.tool
        version_before = tool.model_version
        report = service.registry.swap("lda", fitted_lda)
        assert report.status == "promoted"
        assert tool.model_version == report.generation > version_before
        assert tool.ann_index.model_version == report.generation

    def test_similar_reports_ann_backend_and_path_counter(self, service, corpus):
        duns = corpus.companies[0].duns.value
        body = service.handle("POST", "/similar", {"duns": duns, "k": 5}).body
        assert body["backend"] == "ann"
        assert len(body["similar"]) == 5
        counters = service.metrics_snapshot()["counters"]
        assert counters['serve.path{endpoint="/similar",path="ann"}'] == 1

    def test_degraded_answers_are_not_cached(self, service, corpus, monkeypatch):
        payload = {"history": [corpus.vocabulary[2]], "top_n": 3}
        monkeypatch.setenv(
            "REPRO_FAULTS", "crash:serve/score/lda,crash:serve/score/ngram"
        )
        degraded = service.handle("POST", "/recommend", payload).body
        assert degraded["degraded"] is True
        monkeypatch.delenv("REPRO_FAULTS")
        assert len(service.topk_cache) == 0
        fresh = service.handle("POST", "/recommend", payload).body
        assert fresh["path"] == "single"  # a miss, not a stale degraded hit
        assert fresh["degraded"] is False
