"""Tests for the CLI experiment runner."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_options(self):
        args = build_parser().parse_args(["--companies", "100", "--seed", "3", "table1"])
        assert args.companies == 100
        assert args.seed == 3
        assert args.command == "table1"

    def test_all_commands_parse(self):
        for command in (
            "table1", "lda-sweep", "lstm-grid", "recommend", "bpmf",
            "silhouette", "tsne", "sequentiality", "cocluster", "sales-demo",
            "ranking", "representations",
        ):
            args = build_parser().parse_args([command])
            assert args.command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["make-coffee"])


class TestExecution:
    """Fast end-to-end runs on tiny corpora."""

    def test_sequentiality_command(self, capsys):
        assert main(["--companies", "120", "sequentiality"]) == 0
        out = capsys.readouterr().out
        assert "order" in out
        assert "paper" in out

    def test_sales_demo_command(self, capsys):
        assert main(["--companies", "120", "sales-demo"]) == 0
        out = capsys.readouterr().out
        assert "top similar companies" in out
        assert "recommendations" in out

    def test_cocluster_command(self, capsys):
        assert main(["--companies", "120", "cocluster"]) == 0
        out = capsys.readouterr().out
        assert "purity" in out

    def test_tsne_command(self, capsys):
        assert main(["--companies", "120", "tsne"]) == 0
        out = capsys.readouterr().out
        assert "server_HW" in out
        assert "distance ratio" in out

    def test_ranking_command(self, capsys):
        assert main(["--companies", "150", "ranking", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "P@3" in out
        assert "LDA3" in out
