"""Tests for the CLI experiment runner."""

import json

import pytest

from repro import obs
from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_options(self):
        args = build_parser().parse_args(["--companies", "100", "--seed", "3", "table1"])
        assert args.companies == 100
        assert args.seed == 3
        assert args.command == "table1"

    def test_all_commands_parse(self):
        for command in (
            "table1", "lda-sweep", "lstm-grid", "recommend", "bpmf",
            "silhouette", "tsne", "sequentiality", "cocluster", "sales-demo",
            "ranking", "serve", "representations",
        ):
            args = build_parser().parse_args([command])
            assert args.command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["make-coffee"])

    def test_observability_flags(self):
        args = build_parser().parse_args(
            ["--log-level", "debug", "--log-json", "/tmp/x.jsonl",
             "--trace", "--profile", "table1"]
        )
        assert args.log_level == "debug"
        assert args.log_json == "/tmp/x.jsonl"
        assert args.trace and args.profile

    def test_observability_flags_default_off(self):
        args = build_parser().parse_args(["table1"])
        assert args.log_level == "warning"
        assert args.log_json is None
        assert not args.trace and not args.profile

    def test_runtime_flags(self):
        args = build_parser().parse_args(
            ["--jobs", "4", "--cache-dir", "/tmp/cache",
             "--metrics-json", "/tmp/m.json", "table1"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/cache"
        assert args.metrics_json == "/tmp/m.json"

    def test_runtime_flags_accepted_after_subcommand(self):
        args = build_parser().parse_args(["table1", "--jobs", "2"])
        assert args.jobs == 2

    def test_runtime_flags_default_serial_uncached(self):
        args = build_parser().parse_args(["table1"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.metrics_json is None

    def test_fig1_alias_for_lstm_grid(self):
        args = build_parser().parse_args(["fig1"])
        assert args.command == "fig1"
        assert args.dtype == "float32"
        assert args.epochs == 14

    def test_lstm_grid_dtype_flag(self):
        args = build_parser().parse_args(["lstm-grid", "--dtype", "float64"])
        assert args.dtype == "float64"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lstm-grid", "--dtype", "float16"])

    def test_recommend_defaults_to_paper_protocol(self):
        args = build_parser().parse_args(["recommend"])
        assert args.retrain is True

    def test_recommend_no_retrain_fast_path(self):
        args = build_parser().parse_args(["recommend", "--no-retrain"])
        assert args.retrain is False

    def test_serve_flag_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8151
        assert args.max_inflight == 32
        assert args.deadline_ms == 250.0
        assert args.quarantine is None

    def test_serve_flags_parsed(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "0",
             "--max-inflight", "4", "--deadline-ms", "100",
             "--quarantine", "/tmp/q.jsonl"]
        )
        assert args.host == "0.0.0.0"
        assert args.port == 0
        assert args.max_inflight == 4
        assert args.deadline_ms == 100.0
        assert args.quarantine == "/tmp/q.jsonl"

    def test_fault_tolerance_flags(self):
        args = build_parser().parse_args(
            ["--retries", "2", "--task-timeout", "30",
             "--checkpoint-dir", "/tmp/ckpt", "--resume",
             "--inject-faults", "crash:s:lda", "table1"]
        )
        assert args.retries == 2
        assert args.task_timeout == 30.0
        assert args.checkpoint_dir == "/tmp/ckpt"
        assert args.resume is True
        assert args.inject_faults == "crash:s:lda"

    def test_fault_tolerance_flags_after_subcommand(self):
        args = build_parser().parse_args(
            ["table1", "--retries", "1", "--checkpoint-dir", "/tmp/c"]
        )
        assert args.retries == 1
        assert args.checkpoint_dir == "/tmp/c"

    def test_fault_tolerance_flags_default_off(self):
        args = build_parser().parse_args(["table1"])
        assert args.retries == 0
        assert args.task_timeout is None
        assert args.checkpoint_dir is None
        assert args.resume is False
        assert args.inject_faults is None

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit):
            main(["--resume", "table1"])

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["--inject-faults", "explode:everywhere", "table1"])


class TestExecution:
    """Fast end-to-end runs on tiny corpora."""

    def test_sequentiality_command(self, capsys):
        assert main(["--companies", "120", "sequentiality"]) == 0
        out = capsys.readouterr().out
        assert "order" in out
        assert "paper" in out

    def test_sales_demo_command(self, capsys):
        assert main(["--companies", "120", "sales-demo"]) == 0
        out = capsys.readouterr().out
        assert "top similar companies" in out
        assert "recommendations" in out

    def test_cocluster_command(self, capsys):
        assert main(["--companies", "120", "cocluster"]) == 0
        out = capsys.readouterr().out
        assert "purity" in out

    def test_tsne_command(self, capsys):
        assert main(["--companies", "120", "tsne"]) == 0
        out = capsys.readouterr().out
        assert "server_HW" in out
        assert "distance ratio" in out

    def test_ranking_command(self, capsys):
        assert main(["--companies", "150", "ranking", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "P@3" in out
        assert "LDA3" in out


class TestObservabilityFlags:
    """End-to-end runs of the instrumented CLI paths."""

    @pytest.fixture(autouse=True)
    def _clean_obs_state(self):
        obs.disable_all()
        obs.reset_all()
        yield
        obs.disable_all()
        obs.reset_all()

    def test_trace_prints_timing_report(self, capsys, tmp_path):
        log_path = tmp_path / "run.jsonl"
        assert main(
            ["--companies", "120", "--trace", "--log-json", str(log_path),
             "sequentiality"]
        ) == 0
        out = capsys.readouterr().out
        assert "== timing report ==" in out
        assert "cmd.sequentiality" in out
        assert "exp.data.simulate" in out
        assert "exp.sequentiality.evaluate" in out
        records = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
            if line.strip()
        ]
        messages = {r["message"] for r in records}
        assert {"command started", "command finished", "run report"} <= messages
        report_record = next(r for r in records if r["message"] == "run report")
        assert report_record["trace"][0]["name"] == "cmd.sequentiality"

    def test_profile_prints_hot_functions(self, capsys):
        assert main(["--companies", "120", "--profile", "sequentiality"]) == 0
        out = capsys.readouterr().out
        assert "== profiles ==" in out
        assert "cmd.sequentiality" in out

    def test_flags_off_leave_observability_dormant(self, capsys):
        from repro.obs import metrics, trace

        assert main(["--companies", "120", "sequentiality"]) == 0
        assert not trace.is_enabled()
        assert trace.roots() == []
        assert metrics.snapshot()["counters"] == {}
        assert "timing report" not in capsys.readouterr().out

    def test_cache_and_metrics_json_round_trip(self, capsys, tmp_path):
        cache_dir = tmp_path / "fits"
        argv = [
            "--companies", "100", "--cache-dir", str(cache_dir),
            "recommend", "--windows", "2", "--no-retrain",
        ]
        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"
        assert main(argv + ["--metrics-json", str(cold_json)]) == 0
        cold_out = capsys.readouterr().out
        obs.disable_all()
        obs.reset_all()
        assert main(argv + ["--metrics-json", str(warm_json)]) == 0
        warm_out = capsys.readouterr().out
        assert cold_out == warm_out
        cold = json.loads(cold_json.read_text())["counters"]
        warm = json.loads(warm_json.read_text())["counters"]
        assert cold.get("cache.hit", 0) == 0
        assert cold["cache.miss"] > 0
        assert warm["cache.hit"] > 0
        assert warm.get("cache.miss", 0) == 0


class TestFaultToleranceFlow:
    """Crash injection, checkpointing and resume through the real CLI."""

    @pytest.fixture(autouse=True)
    def _clean_obs_state(self):
        obs.disable_all()
        obs.reset_all()
        yield
        obs.disable_all()
        obs.reset_all()

    BASE = ["--companies", "80", "--seed", "3", "table1"]

    def test_crash_checkpoint_resume_round_trip(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        assert main(self.BASE) == 0
        clean_out = capsys.readouterr().out

        obs.disable_all()
        obs.reset_all()
        assert main(
            self.BASE + ["--inject-faults", "crash:s:lda",
                         "--checkpoint-dir", str(ckpt)]
        ) == 0
        faulted_out = capsys.readouterr().out
        assert "failed" in faulted_out
        journal = (ckpt / "table1.journal.jsonl").read_text()
        assert '"status": "failed"' in journal
        assert journal.count('"status": "ok"') == 4

        obs.disable_all()
        obs.reset_all()
        metrics_json = tmp_path / "resume.json"
        assert main(
            self.BASE + ["--checkpoint-dir", str(ckpt), "--resume",
                         "--metrics-json", str(metrics_json)]
        ) == 0
        resumed_out = capsys.readouterr().out
        assert resumed_out == clean_out
        counters = json.loads(metrics_json.read_text())["counters"]
        assert counters["journal.skip"] == 4
        assert counters["journal.record"] == 1

    def test_fault_env_is_restored_after_run(self, capsys, tmp_path):
        import os as os_module

        assert main(self.BASE + ["--inject-faults", "crash:s:lda"]) == 0
        capsys.readouterr()
        assert "REPRO_FAULTS" not in os_module.environ
        assert "REPRO_FAULTS_STATE" not in os_module.environ


class TestCorpusCommands:
    def test_corpus_flags_parse(self):
        args = build_parser().parse_args(
            ["corpus", "build", "some-dir", "--chunk-size", "100"]
        )
        assert (args.command, args.action, args.dir) == ("corpus", "build", "some-dir")
        assert args.chunk_size == 100
        args = build_parser().parse_args(["--corpus-dir", "d", "table1"])
        assert args.corpus_dir == "d"
        assert build_parser().parse_args(["table1"]).corpus_dir is None

    def test_build_info_and_run_round_trip(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        assert main(
            ["--companies", "80", "--seed", "5", "corpus", "build", corpus_dir,
             "--chunk-size", "30"]
        ) == 0
        built_out = capsys.readouterr().out
        assert "fingerprint:" in built_out

        assert main(["corpus", "info", corpus_dir]) == 0
        info_out = capsys.readouterr().out
        # info reports the identical fingerprint the build printed
        fingerprint = [
            line.split()[-1] for line in built_out.splitlines() if "fingerprint" in line
        ][0]
        assert fingerprint in info_out

        assert main(
            ["table1", "--corpus-dir", corpus_dir, "--methods", "unigram"]
        ) == 0
        table_out = capsys.readouterr().out
        assert "unigram" in table_out

    def test_unknown_table1_method_rejected(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        assert main(["--companies", "40", "corpus", "build", corpus_dir]) == 0
        with pytest.raises(SystemExit, match="unknown table1 method"):
            main(["table1", "--corpus-dir", corpus_dir, "--methods", "nope"])

    def test_ground_truth_commands_reject_corpus_dir(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        assert main(["--companies", "40", "corpus", "build", corpus_dir]) == 0
        capsys.readouterr()
        for command in ("tsne", "cocluster", "representations"):
            with pytest.raises(SystemExit, match="ground truth"):
                main([command, "--corpus-dir", corpus_dir])


class TestScenarioCommand:
    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["scenario", "build", "out-dir", "--pack", "drift",
             "--scenario-seed", "9"]
        )
        assert (args.command, args.action, args.dir) == ("scenario", "build", "out-dir")
        assert args.pack == "drift"
        assert args.scenario_seed == 9

    def test_list_packs(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for pack in ("messy-world", "aliases", "drift", "mna"):
            assert pack in out

    def test_build_requires_dir(self):
        with pytest.raises(SystemExit, match="DIR argument"):
            main(["--companies", "60", "scenario", "build"])

    def test_build_is_deterministic_per_seed(self, capsys, tmp_path):
        argv = ["--companies", "60", "--seed", "5", "scenario", "build"]

        def digest_of(out):
            return [
                line.split()[-1]
                for line in out.splitlines()
                if "manifest digest" in line
            ][0]

        assert main(argv + [str(tmp_path / "a"), "--scenario-seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(argv + [str(tmp_path / "b"), "--scenario-seed", "3"]) == 0
        second = capsys.readouterr().out
        assert main(argv + [str(tmp_path / "c"), "--scenario-seed", "4"]) == 0
        third = capsys.readouterr().out
        assert digest_of(first) == digest_of(second)
        assert digest_of(first) != digest_of(third)
        assert "events:" in first

    def test_built_scenario_serves_other_commands(self, capsys, tmp_path):
        scenario_dir = str(tmp_path / "messy")
        assert main(
            ["--companies", "60", "scenario", "build", scenario_dir,
             "--pack", "aliases"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["table1", "--corpus-dir", scenario_dir, "--methods", "unigram"]
        ) == 0
        assert "unigram" in capsys.readouterr().out


class TestReplayCommand:
    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["replay", "--windows", "4", "--threshold", "0.2", "--model",
             "ngram", "--canary", "--candidate-pack", "drift",
             "--candidate-seed", "2"]
        )
        assert args.windows == 4
        assert args.threshold == 0.2
        assert args.model == "ngram"
        assert args.canary is True
        assert args.candidate_pack == "drift"
        assert args.candidate_seed == 2

    def test_replay_prints_window_table(self, capsys):
        assert main(
            ["--companies", "80", "replay", "--windows", "2", "--model",
             "unigram"]
        ) == 0
        out = capsys.readouterr().out
        assert "replay of frozen unigram over 2 windows" in out
        assert "precision" in out and "recall" in out
        assert "mean recall" in out

    def test_replay_canary_verdict_printed(self, capsys):
        assert main(
            ["--companies", "80", "replay", "--windows", "2", "--model",
             "unigram", "--canary"]
        ) == 0
        out = capsys.readouterr().out
        assert "canary verdict:" in out
        assert "recommendation_divergence" in out

    def test_replay_journal_resume(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        argv = ["--companies", "80", "replay", "--windows", "2", "--model",
                "unigram", "--checkpoint-dir", ckpt]
        assert main(argv) == 0
        first = capsys.readouterr().out
        obs.disable_all()
        obs.reset_all()
        metrics_json = str(tmp_path / "m.json")
        assert main(argv + ["--resume", "--metrics-json", metrics_json]) == 0
        second = capsys.readouterr().out
        assert first == second
        counters = json.loads((tmp_path / "m.json").read_text())["counters"]
        assert counters["journal.skip"] == 2

    def test_serve_canary_flag(self):
        assert build_parser().parse_args(["serve"]).canary == 0
        assert build_parser().parse_args(["serve", "--canary", "3"]).canary == 3
