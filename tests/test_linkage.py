"""Tests for record linkage: normalisation, Jaro-Winkler, blocked matching."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.linkage import (
    CompanyNameMatcher,
    EntityResolver,
    jaro_similarity,
    jaro_winkler_similarity,
    normalize_company_name,
)


class TestNormalizeCompanyName:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("Acme Corp.", "acme"),
            ("ACME CORPORATION", "acme"),
            ("Acme Holdings, LLC", "acme"),
            ("  Acme   Inc  ", "acme"),
            ("Johnson & Johnson", "johnson and johnson"),
            ("Müller GmbH", "muller"),  # diacritics fold to their base letter
            ("A.B.C. Ltd", "a b c"),
            ("Café Sociedad Anónima", "cafe sociedad anonima"),
            ("Ｆｕｌｌｗｉｄｔｈ Ｃｏ", "fullwidth"),  # compatibility forms collapse
            ("Acme’s – Apex · Co", "acme s apex"),  # unicode punctuation strips
        ],
    )
    def test_normalisation(self, raw, expected):
        assert normalize_company_name(raw) == expected

    def test_pure_suffix_normalises_to_empty(self):
        assert normalize_company_name("Inc.") == ""

    def test_pure_punctuation_normalises_to_empty(self):
        assert normalize_company_name("’–·") == ""

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            normalize_company_name(42)

    def test_idempotent(self):
        once = normalize_company_name("Acme Widget Co.")
        assert normalize_company_name(once) == once

    @given(st.text(max_size=24))
    def test_total_over_text(self, raw):
        # Never raises, never returns non-string, always idempotent.
        normal = normalize_company_name(raw)
        assert isinstance(normal, str)
        assert normalize_company_name(normal) == normal


class TestJaroSimilarity:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_known_value(self):
        # Classic textbook pair.
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_symmetric_and_bounded(self, a, b):
        s = jaro_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(jaro_similarity(b, a))

    @given(st.text(min_size=1, max_size=12))
    def test_identity(self, a):
        assert jaro_similarity(a, a) == 1.0


class TestJaroWinkler:
    def test_prefix_boost(self):
        plain = jaro_similarity("acme labs", "acme labz")
        boosted = jaro_winkler_similarity("acme labs", "acme labz")
        assert boosted > plain

    def test_known_value(self):
        assert jaro_winkler_similarity("martha", "marhta") == pytest.approx(0.9611, abs=1e-3)

    def test_invalid_prefix_scale(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.3)

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_dominates_jaro(self, a, b):
        assert jaro_winkler_similarity(a, b) >= jaro_similarity(a, b) - 1e-12


class TestCompanyNameMatcher:
    REFERENCE = [
        "Acme Manufacturing Inc.",
        "Acme Fabrication LLC",
        "Northwind Traders",
        "Contoso Ltd.",
        "Blue Ridge Logistics Corp.",
    ]

    def test_exact_normalised_match(self):
        matcher = CompanyNameMatcher(self.REFERENCE)
        result = matcher.match("ACME MANUFACTURING CORPORATION")
        # 'corporation' strips away but 'inc' on the reference side too.
        assert result is not None
        index, score = result
        assert self.REFERENCE[index].startswith("Acme Manufacturing")
        assert score == 1.0

    def test_fuzzy_match_within_block(self):
        matcher = CompanyNameMatcher(self.REFERENCE)
        result = matcher.match("Acme Manufactuing")  # typo
        assert result is not None
        assert self.REFERENCE[result[0]] == "Acme Manufacturing Inc."

    def test_below_threshold_returns_none(self):
        matcher = CompanyNameMatcher(self.REFERENCE, threshold=0.97)
        assert matcher.match("Acme Manufactuing Grp") is None

    def test_first_token_typo_rescued_by_fuzzy_blocks(self):
        # 'Akme' lands in the wrong block; the default fuzzy-block pass
        # rescues it by scanning Jaro-Winkler-close block keys.
        matcher = CompanyNameMatcher(self.REFERENCE)
        result = matcher.match("Akme Manufacturing")
        assert result is not None
        assert self.REFERENCE[result[0]] == "Acme Manufacturing Inc."

    def test_exact_blocking_without_fuzzy_rescue(self):
        matcher = CompanyNameMatcher(self.REFERENCE, fuzzy_blocks=False)
        # 'Akme' blocks under 'akme', no candidates there.
        assert matcher.match("Akme Manufacturing") is None

    def test_invalid_block_threshold(self):
        with pytest.raises(ValueError):
            CompanyNameMatcher(self.REFERENCE, block_threshold=0.0)

    def test_empty_query(self):
        matcher = CompanyNameMatcher(self.REFERENCE)
        assert matcher.match("LLC") is None

    def test_match_all(self):
        matcher = CompanyNameMatcher(self.REFERENCE)
        results = matcher.match_all(["Contoso", "Unknown Company"])
        assert results[0] is not None and self.REFERENCE[results[0][0]] == "Contoso Ltd."
        assert results[1] is None

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CompanyNameMatcher(self.REFERENCE, threshold=0.0)

    def test_len(self):
        assert len(CompanyNameMatcher(self.REFERENCE)) == 5

    def test_simulator_names_link_to_themselves(self, universe):
        names = [c.name for c in universe.companies[:50]]
        matcher = CompanyNameMatcher(names)
        for i, name in enumerate(names):
            result = matcher.match(name.upper())
            assert result is not None
            # Generated names may repeat; the match must normalise equally.
            assert normalize_company_name(names[result[0]]) == normalize_company_name(name)

    def test_recall_floor_under_alias_corruption(self, corpus):
        """The hardened matcher must relink most scenario-aliased names.

        The ``aliases`` pack's manifest is ground truth: every alias
        event records the clean name (``before``) and its corrupted form
        (``after``).  Querying the corrupted names against the clean
        reference list must recover the original entity for at least
        85% of events — the floor that makes messy-feed linkage usable.
        """
        from repro.scenarios import build_scenario

        result = build_scenario(corpus, "aliases", seed=5)
        events = result.manifest.by_kind("alias")
        assert len(events) >= 50
        names = [c.name for c in corpus.companies]
        matcher = CompanyNameMatcher(names)
        relinked = 0
        for event in events:
            match = matcher.match(event.after)
            if match is not None and (
                normalize_company_name(names[match[0]])
                == normalize_company_name(event.before)
            ):
                relinked += 1
        assert relinked / len(events) >= 0.85


class TestEntityResolver:
    REFERENCE = [
        "Acme Manufacturing Inc.",
        "Northwind Traders",
        "Contoso Ltd.",
        "Blue Ridge Logistics Corp.",
    ]

    def test_exact_resolves(self):
        decision = EntityResolver(self.REFERENCE).resolve("ACME MANUFACTURING")
        assert decision.resolved
        assert decision.status == "resolved"
        assert decision.reason == "exact_normalized"
        assert decision.score == 1.0

    def test_close_typo_resolves_fuzzy(self):
        decision = EntityResolver(self.REFERENCE).resolve("Northwind Tradres")
        assert decision.resolved
        assert decision.reason == "fuzzy_accept"
        assert decision.index == 1

    def test_marginal_candidate_goes_to_review(self):
        resolver = EntityResolver(self.REFERENCE, accept=0.97, review=0.85)
        decision = resolver.resolve("Northwind Tradres Grp")
        assert decision.status == "review"
        assert decision.reason == "needs_review"
        assert decision.index == 1
        assert 0.85 <= decision.score < 0.97

    def test_unrelated_name_unmatched(self):
        decision = EntityResolver(self.REFERENCE).resolve("Zephyr Quantum Labs")
        assert decision.status == "unmatched"
        assert decision.reason == "below_threshold"
        assert decision.index is None

    def test_empty_name_unmatched_with_reason(self):
        decision = EntityResolver(self.REFERENCE).resolve("LLC")
        assert decision.status == "unmatched"
        assert decision.reason == "empty_name"

    def test_as_dict_is_machine_readable(self):
        payload = EntityResolver(self.REFERENCE).resolve("Contoso").as_dict()
        assert payload == {
            "status": "resolved",
            "index": 2,
            "score": 1.0,
            "reason": "exact_normalized",
        }

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            EntityResolver(self.REFERENCE).resolve(None)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            EntityResolver(self.REFERENCE, accept=0.8, review=0.9)

    @given(st.text(max_size=20))
    def test_total_over_text(self, query):
        decision = EntityResolver(self.REFERENCE).resolve(query)
        assert decision.status in ("resolved", "review", "unmatched")
        assert 0.0 <= decision.score <= 1.0
