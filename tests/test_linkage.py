"""Tests for record linkage: normalisation, Jaro-Winkler, blocked matching."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.linkage import (
    CompanyNameMatcher,
    jaro_similarity,
    jaro_winkler_similarity,
    normalize_company_name,
)


class TestNormalizeCompanyName:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("Acme Corp.", "acme"),
            ("ACME CORPORATION", "acme"),
            ("Acme Holdings, LLC", "acme"),
            ("  Acme   Inc  ", "acme"),
            ("Johnson & Johnson", "johnson and johnson"),
            ("Müller GmbH", "m ller"),  # non-ascii folds to separator
            ("A.B.C. Ltd", "a b c"),
        ],
    )
    def test_normalisation(self, raw, expected):
        assert normalize_company_name(raw) == expected

    def test_pure_suffix_normalises_to_empty(self):
        assert normalize_company_name("Inc.") == ""

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            normalize_company_name(42)

    def test_idempotent(self):
        once = normalize_company_name("Acme Widget Co.")
        assert normalize_company_name(once) == once


class TestJaroSimilarity:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_known_value(self):
        # Classic textbook pair.
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_symmetric_and_bounded(self, a, b):
        s = jaro_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(jaro_similarity(b, a))

    @given(st.text(min_size=1, max_size=12))
    def test_identity(self, a):
        assert jaro_similarity(a, a) == 1.0


class TestJaroWinkler:
    def test_prefix_boost(self):
        plain = jaro_similarity("acme labs", "acme labz")
        boosted = jaro_winkler_similarity("acme labs", "acme labz")
        assert boosted > plain

    def test_known_value(self):
        assert jaro_winkler_similarity("martha", "marhta") == pytest.approx(0.9611, abs=1e-3)

    def test_invalid_prefix_scale(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.3)

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_dominates_jaro(self, a, b):
        assert jaro_winkler_similarity(a, b) >= jaro_similarity(a, b) - 1e-12


class TestCompanyNameMatcher:
    REFERENCE = [
        "Acme Manufacturing Inc.",
        "Acme Fabrication LLC",
        "Northwind Traders",
        "Contoso Ltd.",
        "Blue Ridge Logistics Corp.",
    ]

    def test_exact_normalised_match(self):
        matcher = CompanyNameMatcher(self.REFERENCE)
        result = matcher.match("ACME MANUFACTURING CORPORATION")
        # 'corporation' strips away but 'inc' on the reference side too.
        assert result is not None
        index, score = result
        assert self.REFERENCE[index].startswith("Acme Manufacturing")
        assert score == 1.0

    def test_fuzzy_match_within_block(self):
        matcher = CompanyNameMatcher(self.REFERENCE)
        result = matcher.match("Acme Manufactuing")  # typo
        assert result is not None
        assert self.REFERENCE[result[0]] == "Acme Manufacturing Inc."

    def test_below_threshold_returns_none(self):
        matcher = CompanyNameMatcher(self.REFERENCE, threshold=0.97)
        assert matcher.match("Acme Manufactuing Grp") is None

    def test_different_block_not_searched(self):
        matcher = CompanyNameMatcher(self.REFERENCE)
        # 'Akme' blocks under 'akme', no candidates there.
        assert matcher.match("Akme Manufacturing") is None

    def test_empty_query(self):
        matcher = CompanyNameMatcher(self.REFERENCE)
        assert matcher.match("LLC") is None

    def test_match_all(self):
        matcher = CompanyNameMatcher(self.REFERENCE)
        results = matcher.match_all(["Contoso", "Unknown Company"])
        assert results[0] is not None and self.REFERENCE[results[0][0]] == "Contoso Ltd."
        assert results[1] is None

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CompanyNameMatcher(self.REFERENCE, threshold=0.0)

    def test_len(self):
        assert len(CompanyNameMatcher(self.REFERENCE)) == 5

    def test_simulator_names_link_to_themselves(self, universe):
        names = [c.name for c in universe.companies[:50]]
        matcher = CompanyNameMatcher(names)
        for i, name in enumerate(names):
            result = matcher.match(name.upper())
            assert result is not None
            # Generated names may repeat; the match must normalise equally.
            assert normalize_company_name(names[result[0]]) == normalize_company_name(name)
