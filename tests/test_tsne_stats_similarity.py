"""Tests for t-SNE, statistics helpers and similarity search."""

import datetime as dt

import numpy as np
import pytest

from repro.analysis.similarity import (
    cosine_similarity_matrix,
    pairwise_distances,
    top_k_similar,
)
from repro.analysis.stats import (
    bootstrap_confidence_interval,
    mean_confidence_interval,
    sequentiality_test,
)
from repro.analysis.tsne import TSNE
from repro.data.company import Company
from repro.data.corpus import Corpus
from repro.data.duns import DunsNumber


class TestTSNE:
    def test_preserves_cluster_structure(self, rng):
        # Two well-separated 10-D blobs must stay separated in 2-D.
        a = rng.normal(0, 0.05, size=(15, 10))
        b = rng.normal(3, 0.05, size=(15, 10))
        data = np.vstack([a, b])
        embedding = TSNE(2, perplexity=6.0, n_iter=300, seed=0).fit_transform(data)
        centroid_a = embedding[:15].mean(axis=0)
        centroid_b = embedding[15:].mean(axis=0)
        spread_a = np.linalg.norm(embedding[:15] - centroid_a, axis=1).mean()
        spread_b = np.linalg.norm(embedding[15:] - centroid_b, axis=1).mean()
        gap = np.linalg.norm(centroid_a - centroid_b)
        assert gap > 2 * max(spread_a, spread_b)

    def test_output_shape_and_centering(self, rng):
        data = rng.normal(size=(12, 5))
        model = TSNE(2, perplexity=3.0, n_iter=100, seed=0)
        out = model.fit_transform(data)
        assert out.shape == (12, 2)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-8)
        assert np.isfinite(model.kl_divergence_)

    def test_deterministic_given_seed(self, rng):
        data = rng.normal(size=(10, 4))
        a = TSNE(2, perplexity=3.0, n_iter=50, seed=1).fit_transform(data)
        b = TSNE(2, perplexity=3.0, n_iter=50, seed=1).fit_transform(data)
        assert np.allclose(a, b)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError, match="at least 4"):
            TSNE(2, perplexity=1.5).fit_transform(np.zeros((3, 2)))

    def test_perplexity_too_large_rejected(self, rng):
        with pytest.raises(ValueError, match="perplexity"):
            TSNE(2, perplexity=20.0).fit_transform(rng.normal(size=(10, 3)))


class TestConfidenceIntervals:
    def test_mean_ci_contains_mean(self, rng):
        data = rng.normal(5.0, 1.0, size=40)
        mean, low, high = mean_confidence_interval(data)
        assert low < mean < high
        assert mean == pytest.approx(data.mean())

    def test_mean_ci_narrows_with_samples(self, rng):
        small = rng.normal(size=20)
        large = np.concatenate([small] * 25)
        __, lo_s, hi_s = mean_confidence_interval(small)
        __, lo_l, hi_l = mean_confidence_interval(large)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_single_observation_degenerate(self):
        mean, low, high = mean_confidence_interval(np.array([3.0]))
        assert mean == low == high == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval(np.array([]))

    def test_bootstrap_close_to_normal_ci(self, rng):
        data = rng.normal(0.0, 1.0, size=200)
        __, lo_n, hi_n = mean_confidence_interval(data)
        __, lo_b, hi_b = bootstrap_confidence_interval(data, seed=0)
        assert lo_b == pytest.approx(lo_n, abs=0.05)
        assert hi_b == pytest.approx(hi_n, abs=0.05)

    def test_bootstrap_deterministic_given_seed(self, rng):
        data = rng.normal(size=30)
        assert bootstrap_confidence_interval(data, seed=1) == bootstrap_confidence_interval(
            data, seed=1
        )


class TestSequentialityTest:
    @staticmethod
    def _corpus(sequences, vocab=("a", "b", "c", "d")):
        companies = []
        for i, seq in enumerate(sequences):
            first_seen = {
                vocab[t]: dt.date(2000, 1, 1) + dt.timedelta(days=31 * j)
                for j, t in enumerate(seq)
            }
            companies.append(
                Company(
                    duns=DunsNumber.from_sequence(i), name=f"C{i}", country="US",
                    sic2=80, first_seen=first_seen,
                )
            )
        return Corpus(companies, vocab)

    def test_deterministic_order_highly_significant(self):
        corpus = self._corpus([[0, 1, 2, 3]] * 40)
        report = sequentiality_test(corpus, order=2)
        assert report.significant_fraction == 1.0

    def test_shuffled_order_rarely_significant(self, rng):
        sequences = []
        for __ in range(60):
            seq = [0, 1, 2, 3]
            rng.shuffle(seq)
            sequences.append(seq)
        corpus = self._corpus(sequences)
        report = sequentiality_test(corpus, order=2, alpha=0.01)
        assert report.significant_fraction < 0.3

    def test_order_one_rejected(self, corpus):
        with pytest.raises(ValueError, match="order >= 2"):
            sequentiality_test(corpus, order=1)

    def test_degenerate_alpha_rejected(self, corpus):
        with pytest.raises(ValueError):
            sequentiality_test(corpus, alpha=0.0)

    def test_report_counts_consistent(self, corpus):
        report = sequentiality_test(corpus, order=2)
        assert 0 <= report.n_significant <= report.n_distinct
        assert report.order == 2


class TestSimilarity:
    def test_cosine_matrix_diagonal_ones(self, rng):
        features = rng.normal(size=(8, 4))
        sim = cosine_similarity_matrix(features)
        assert np.allclose(np.diag(sim), 1.0)
        assert np.allclose(sim, sim.T)

    def test_zero_rows_dissimilar(self):
        features = np.array([[1.0, 0.0], [0.0, 0.0]])
        sim = cosine_similarity_matrix(features)
        assert sim[0, 1] == 0.0
        assert sim[1, 1] == 0.0

    def test_pairwise_euclidean(self):
        features = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = pairwise_distances(features, metric="euclidean")
        assert distances[0, 1] == pytest.approx(5.0)

    def test_top_k_orders_by_similarity(self):
        features = np.array([[1.0, 0.0], [0.9, 0.1], [0.0, 1.0], [1.0, 0.01]])
        hits = top_k_similar(features, 0, 2)
        assert [i for i, __ in hits] == [3, 1]

    def test_top_k_excludes_query(self, rng):
        features = rng.normal(size=(10, 3))
        hits = top_k_similar(features, 4, 9)
        assert 4 not in [i for i, __ in hits]

    def test_candidate_mask_respected(self):
        features = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 0.0]])
        mask = np.array([True, False, True])
        hits = top_k_similar(features, 0, 5, candidate_mask=mask)
        assert [i for i, __ in hits] == [2]

    def test_empty_candidates(self):
        features = np.eye(3)
        mask = np.zeros(3, dtype=bool)
        assert top_k_similar(features, 0, 2, candidate_mask=mask) == []

    def test_euclidean_metric_scores_negated_distance(self):
        features = np.array([[0.0], [1.0], [3.0]])
        hits = top_k_similar(features, 0, 2, metric="euclidean")
        assert hits[0][0] == 1
        assert hits[0][1] == pytest.approx(-1.0)

    def test_invalid_query_index(self, rng):
        with pytest.raises(IndexError):
            top_k_similar(rng.normal(size=(4, 2)), 9, 1)

    def test_mask_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            top_k_similar(rng.normal(size=(4, 2)), 0, 1, candidate_mask=np.ones(3, bool))
