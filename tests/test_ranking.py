"""Tests for the top-k ranking metrics and evaluator."""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.lda import LatentDirichletAllocation
from repro.recommend.baselines import RandomRecommender
from repro.recommend.ranking import (
    RankingReport,
    evaluate_ranking,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)


class TestPointMetrics:
    def test_precision_at_k(self):
        assert precision_at_k([1, 2, 3, 4], {1, 3}, 2) == 0.5
        assert precision_at_k([1, 2, 3, 4], {1, 3}, 4) == 0.5
        assert precision_at_k([9, 8], {1}, 5) == 0.0

    def test_precision_with_short_list(self):
        # Fewer than k items: precision is over what was actually shown.
        assert precision_at_k([1], {1}, 5) == 1.0

    def test_precision_empty_ranking(self):
        assert precision_at_k([], {1}, 3) == 0.0

    def test_recall_at_k(self):
        assert recall_at_k([1, 2, 3], {1, 9}, 2) == 0.5
        assert recall_at_k([1, 9, 3], {1, 9}, 2) == 1.0
        assert recall_at_k([1, 2], set(), 2) == 0.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank([5, 1, 2], {1}) == pytest.approx(0.5)
        assert reciprocal_rank([1, 2], {1}) == 1.0
        assert reciprocal_rank([5, 6], {1}) == 0.0

    def test_ndcg_perfect_ranking(self):
        assert ndcg_at_k([1, 2, 9, 8], {1, 2}, 4) == pytest.approx(1.0)

    def test_ndcg_order_sensitivity(self):
        early = ndcg_at_k([1, 9, 8], {1}, 3)
        late = ndcg_at_k([9, 8, 1], {1}, 3)
        assert early > late > 0.0

    def test_ndcg_empty_truth(self):
        assert ndcg_at_k([1, 2], set(), 2) == 0.0

    def test_invalid_k(self):
        with pytest.raises((ValueError, TypeError)):
            precision_at_k([1], {1}, 0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 20), unique=True, max_size=15),
        st.sets(st.integers(0, 20), max_size=8),
        st.integers(1, 10),
    )
    def test_property_metrics_bounded(self, ranked, truth, k):
        for value in (
            precision_at_k(ranked, truth, k),
            recall_at_k(ranked, truth, k),
            reciprocal_rank(ranked, truth),
            ndcg_at_k(ranked, truth, k),
        ):
            assert 0.0 <= value <= 1.0 + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 20), unique=True, min_size=1, max_size=15),
        st.sets(st.integers(0, 20), min_size=1, max_size=8),
    )
    def test_property_recall_monotone_in_k(self, ranked, truth):
        values = [recall_at_k(ranked, truth, k) for k in range(1, len(ranked) + 1)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


class TestEvaluateRanking:
    def test_lda_beats_random(self, corpus):
        lda_report = evaluate_ranking(
            corpus,
            lambda: LatentDirichletAllocation(
                n_topics=3, inference="variational", n_iter=60, seed=0
            ),
            k=5,
        )
        random_report = evaluate_ranking(corpus, lambda: RandomRecommender(), k=5)
        assert isinstance(lda_report, RankingReport)
        assert lda_report.n_companies == random_report.n_companies
        assert lda_report.precision > random_report.precision
        assert lda_report.ndcg > random_report.ndcg

    def test_report_values_bounded(self, corpus):
        report = evaluate_ranking(corpus, lambda: RandomRecommender(), k=3)
        for value in (report.precision, report.recall, report.mrr, report.ndcg):
            assert 0.0 <= value <= 1.0

    def test_invalid_horizon(self, corpus):
        with pytest.raises(ValueError, match="horizon"):
            evaluate_ranking(
                corpus,
                lambda: RandomRecommender(),
                cutoff=dt.date(2014, 1, 1),
                horizon=dt.date(2013, 1, 1),
            )

    def test_random_mrr_near_uniform_expectation(self, corpus):
        # With uniform scores the ranking is arbitrary-but-fixed; MRR should
        # be far below a perfect recommender's.
        report = evaluate_ranking(corpus, lambda: RandomRecommender(), k=5)
        assert report.mrr < 0.6
