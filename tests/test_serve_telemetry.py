"""Service-level tests for request-scoped telemetry (`repro.serve` + `repro.obs`).

The isolation contract under the threaded transport: every request's
captured span tree contains only that request's spans and counters, the
request id flows admission → ladder → scorers and back out on the
response header, ``/metrics`` speaks strict Prometheus, a fault burst
trips the fast-window burn-rate alert, and flight-recorder entries are
retrievable by the exemplar ``request_id``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.models.ngram import NGramModel
from repro.obs import context as obs_context
from repro.obs import prom, trace
from repro.serve import (
    ModelRegistry,
    RecommendationService,
    ServiceConfig,
    ServiceResponse,
    start_server,
)


@pytest.fixture()
def service(corpus, split, fitted_lda):
    registry = ModelRegistry(split.validation, perplexity_tolerance=1.5)
    registry.install("lda", fitted_lda)
    registry.install("ngram", NGramModel(order=2).fit(split.train))
    return RecommendationService(
        corpus=corpus,
        registry=registry,
        tiers=("lda", "ngram"),
        config=ServiceConfig(
            breaker_recovery_s=30.0,
            slo_fast_window_s=0.5,
            slo_slow_window_s=5.0,
            profile_max_seconds=0.1,
        ),
    )


def _mark_scorers(service):
    """Wrap every tier scorer to stamp the current request id into the trace.

    The marker counter makes cross-request contamination directly visible:
    a span tree containing a foreign request's marker is a failed test.
    """
    for tier in list(service.ladder.tiers) + [service.ladder.floor]:
        original = tier.scorer

        def marked(history, threshold, top_n, _original=original):
            rid = obs_context.current_request_id()
            trace.add_counter(f"rid.{rid}")
            return _original(history, threshold, top_n)

        object.__setattr__(tier, "scorer", marked)


def _marker_counters(spans):
    """All ``rid.*`` counter names found anywhere in a span forest."""
    found = []

    def visit(node):
        for name in node.get("counters", {}):
            if name.startswith("rid."):
                found.append(name)
        for child in node.get("children", ()):
            visit(child)

    for root in spans:
        visit(root)
    return found


class TestRequestScope:
    def test_response_echoes_inbound_request_id(self, service):
        response = service.handle(
            "POST", "/recommend", {"history": []}, {"X-Request-Id": "caller-7"}
        )
        assert response.status == 200
        assert response.headers["X-Request-Id"] == "caller-7"

    def test_request_id_minted_when_absent_or_invalid(self, service):
        minted = service.handle("POST", "/recommend", {"history": []})
        assert len(minted.headers["X-Request-Id"]) == 16
        bad = service.handle(
            "POST", "/recommend", {"history": []}, {"x-request-id": "bad id\n"}
        )
        assert bad.headers["X-Request-Id"] != "bad id\n"

    def test_every_endpoint_carries_request_id(self, service):
        for method, path in [
            ("GET", "/healthz"),
            ("GET", "/metrics"),
            ("GET", "/slo"),
            ("GET", "/nope"),
        ]:
            assert "X-Request-Id" in service.handle(method, path).headers

    def test_concurrent_span_trees_never_mix(self, service):
        """16 threads hammer /recommend; each span tree is its own request's."""
        _mark_scorers(service)
        n_threads, per_thread = 16, 4
        results: dict[str, list] = {}
        errors: list[str] = []
        barrier = threading.Barrier(n_threads)

        def work(i: int) -> None:
            barrier.wait()
            for j in range(per_thread):
                rid = f"t{i}-r{j}"
                response = service.handle(
                    "POST",
                    "/recommend",
                    {"history": [], "top_n": 1 + (i % 5)},
                    {"X-Request-Id": rid},
                )
                if response.status != 200:
                    errors.append(f"{rid}: status {response.status}")
                if response.headers.get("X-Request-Id") != rid:
                    errors.append(f"{rid}: echoed {response.headers.get('X-Request-Id')}")

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

        for i in range(n_threads):
            for j in range(per_thread):
                rid = f"t{i}-r{j}"
                record = service.flight.lookup(rid)
                assert record is not None, f"{rid} not kept by the flight recorder"
                roots = [s["name"] for s in record["spans"]]
                assert roots == ["serve.request"], roots
                assert record["spans"][0]["n_calls"] == 1
                markers = set(_marker_counters(record["spans"]))
                assert markers == {f"rid.{rid}"}, (
                    f"{rid}: span tree contaminated with {markers}"
                )

    def test_scorer_spans_propagate_into_request_tree(self, service):
        response = service.handle("POST", "/recommend", {"history": []})
        record = service.flight.lookup(response.headers["X-Request-Id"])
        root = record["spans"][0]
        child_names = [c["name"] for c in root.get("children", ())]
        assert "serve.score.lda" in child_names


class TestMetricsExposition:
    def test_json_without_headers_keeps_legacy_shape(self, service):
        service.handle("POST", "/recommend", {"history": []})
        body = service.handle("GET", "/metrics").body
        assert set(body) >= {"counters", "gauges", "histograms", "breakers", "flight"}

    def test_accept_json_selects_json_over_http_headers(self, service):
        response = service.handle(
            "GET", "/metrics", None, {"Accept": "application/json"}
        )
        assert response.text is None and isinstance(response.body, dict)

    def test_default_http_scrape_is_strict_prometheus(self, service):
        service.handle("POST", "/recommend", {"history": []})
        response = service.handle("GET", "/metrics", None, {"Accept": "*/*"})
        assert response.content_type.startswith("text/plain; version=0.0.4")
        parsed = prom.parse(response.text)
        assert "serve_requests" in parsed["families"]

    def test_no_unlabeled_serve_metric_survives_traffic(self, service):
        """The CI guard: every serve.* family must carry labels."""
        service.handle("POST", "/recommend", {"history": []})
        service.handle("POST", "/recommend", {"history": ["nope"]})  # rejected
        service.handle("POST", "/similar", {"duns": "0"})
        service.handle("GET", "/metrics", None, {"Accept": "*/*"})
        response = service.handle("GET", "/metrics", None, {"Accept": "*/*"})
        prom.parse(response.text, require_labels_prefix="serve_")

    def test_openmetrics_exemplars_round_trip_into_flight_recorder(self, service):
        response = service.handle("POST", "/recommend", {"history": []})
        rid = response.headers["X-Request-Id"]
        scrape = service.handle(
            "GET", "/metrics", None, {"Accept": "application/openmetrics-text"}
        )
        assert scrape.content_type.startswith("application/openmetrics-text")
        assert f'# {{request_id="{rid}"}}' in scrape.text
        debug = service.handle("GET", f"/admin/debug?request_id={rid}")
        assert debug.status == 200
        assert debug.body["request_id"] == rid

    def test_per_endpoint_latency_histograms(self, service):
        service.handle("POST", "/recommend", {"history": []})
        service.handle("GET", "/healthz")
        histograms = service.metrics_snapshot()["histograms"]
        assert 'serve.latency.ms{endpoint="/recommend"}' in histograms
        assert 'serve.latency.ms{endpoint="/healthz"}' in histograms


class TestSLOEndpoint:
    def test_slo_reports_objectives(self, service):
        service.handle("POST", "/recommend", {"history": []})
        body = service.handle("GET", "/slo").body
        assert set(body["objectives"]) == {"availability", "latency", "quality"}
        assert body["alerts"] == []
        assert body["objectives"]["availability"]["fast"]["bad"] == 0

    def test_fault_burst_trips_fast_window_burn_alert(self, service, monkeypatch):
        """Crashing the primary tier degrades answers, burning quality budget."""
        monkeypatch.setenv("REPRO_FAULTS", "crash:serve/score/lda")
        for _ in range(12):
            response = service.handle("POST", "/recommend", {"history": []})
            assert response.status == 200
            assert response.body["degraded"] is True
        report = service.handle("GET", "/slo").body
        quality = report["objectives"]["quality"]
        assert quality["fast"]["burn_rate"] >= report["burn_threshold"]
        assert "quality" in report["alerts"]
        assert report["objectives"]["availability"]["alerting"] is False

    def test_shed_burns_availability(self, corpus, split, fitted_lda):
        registry = ModelRegistry(split.validation)
        registry.install("lda", fitted_lda)
        shedding = RecommendationService(
            corpus=corpus,
            registry=registry,
            tiers=("lda",),
            config=ServiceConfig(max_inflight=0),
        )
        shedding.handle("POST", "/recommend", {"history": []})
        report = shedding.handle("GET", "/slo").body
        assert report["objectives"]["availability"]["fast"]["bad"] == 1


class TestAdminEndpoints:
    def test_debug_jsonl_dump_and_sections(self, service):
        ok = service.handle("POST", "/recommend", {"history": []})
        service.handle("POST", "/recommend", {"history": ["nope"]})
        dump = service.handle("GET", "/admin/debug")
        assert dump.content_type == "application/x-ndjson"
        records = [json.loads(line) for line in dump.text.strip().splitlines()]
        assert {r["request_id"] for r in records} >= {ok.headers["X-Request-Id"]}
        failed = service.handle("GET", "/admin/debug?section=failed")
        failed_records = [json.loads(l) for l in failed.text.strip().splitlines()]
        assert all(r["failed"] for r in failed_records)
        assert len(failed_records) == 1

    def test_debug_validates_parameters(self, service):
        assert service.handle("GET", "/admin/debug?section=bogus").status == 400
        assert service.handle("GET", "/admin/debug?limit=x").status == 400
        assert service.handle("GET", "/admin/debug?request_id=ghost").status == 404

    def test_profile_endpoint_samples_and_clamps(self, service):
        response = service.handle("GET", "/admin/profile?seconds=50")
        assert response.status == 200
        assert response.body["seconds"] == pytest.approx(0.1)  # clamped
        assert response.body["samples"] >= 1
        assert service.handle("GET", "/admin/profile?seconds=abc").status == 400
        assert service.handle("GET", "/admin/profile?seconds=-1").status == 400

    def test_telemetry_failure_never_becomes_5xx(self, service, monkeypatch):
        def boom(**kwargs):
            raise RuntimeError("recorder exploded")

        monkeypatch.setattr(service.flight, "record", boom)
        response = service.handle("POST", "/recommend", {"history": []})
        assert response.status == 200


class TestResponsePayload:
    def test_text_response_payload_bytes(self):
        response = ServiceResponse(200, None, text="hello\n", content_type="text/plain")
        assert response.payload() == b"hello\n"

    def test_json_response_payload_bytes(self):
        response = ServiceResponse(200, {"a": 1})
        assert json.loads(response.payload()) == {"a": 1}


class TestHTTPTransportTelemetry:
    @pytest.fixture()
    def live(self, service):
        server, _thread = start_server(service)
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()

    def _request(self, base, path, data=None, headers=None, method=None):
        request = urllib.request.Request(
            base + path,
            data=data,
            headers={"Content-Type": "application/json", **(headers or {})},
            method=method or ("POST" if data is not None else "GET"),
        )
        try:
            with urllib.request.urlopen(request, timeout=10.0) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), exc.read()

    def test_request_id_flows_over_http(self, live):
        status, headers, body = self._request(
            live, "/recommend", b'{"history": []}', {"X-Request-Id": "http-1"}
        )
        assert status == 200
        assert headers["X-Request-Id"] == "http-1"

    def test_http_scrape_negotiates_content_type(self, live):
        status, headers, body = self._request(live, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        prom.parse(body.decode())
        status, headers, body = self._request(
            live, "/metrics", headers={"Accept": "application/json"}, method="GET"
        )
        assert headers["Content-Type"] == "application/json"
        assert "counters" in json.loads(body)

    def test_concurrent_http_requests_isolated_span_trees(self, live, service):
        _mark_scorers(service)
        n_threads = 16
        errors: list[str] = []
        barrier = threading.Barrier(n_threads)

        def work(i: int) -> None:
            barrier.wait()
            rid = f"http-t{i}"
            status, headers, _body = self._request(
                live, "/recommend", b'{"history": []}', {"X-Request-Id": rid}
            )
            if status != 200 or headers.get("X-Request-Id") != rid:
                errors.append(f"{rid}: {status} {headers.get('X-Request-Id')}")

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        for i in range(n_threads):
            rid = f"http-t{i}"
            status, _headers, body = self._request(
                live, f"/admin/debug?request_id={rid}"
            )
            assert status == 200
            record = json.loads(body)
            markers = set(_marker_counters(record["spans"]))
            assert markers == {f"rid.{rid}"}
