"""Fault-matrix tests for the resilient serving layer (`repro.serve`).

Covers the full degradation contract with deterministic clocks and fault
injection: breaker transitions, deadline exhaustion mid-score, hot-swap
validation failure + rollback, load shedding at the in-flight limit,
quarantine accounting — plus property-style tests that admission never
lets an out-of-vocabulary token reach a model.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.models.ngram import NGramModel
from repro.models.unigram import UnigramModel
from repro.runtime import faults
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionError,
    AdmissionPolicy,
    CircuitBreaker,
    DegradationLadder,
    ModelRegistry,
    QuarantineLog,
    RecommendationService,
    ServiceConfig,
    Tier,
    start_server,
)


class FakeClock:
    """Injectable monotonic clock advanced by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        defaults = dict(failure_threshold=3, window=5, recovery_time=10.0)
        defaults.update(kwargs)
        return CircuitBreaker("tier", clock=clock, **defaults)

    def test_starts_closed_and_allows(self):
        breaker = self._breaker(FakeClock())
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_stays_closed_below_threshold(self):
        breaker = self._breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_trips_open_at_threshold(self):
        breaker = self._breaker(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_window_slides_old_failures_out(self):
        # After [F, S, S, F] only one failure remains inside a 3-wide
        # window, so a threshold of 2 must not trip until the next failure.
        breaker = self._breaker(FakeClock(), failure_threshold=2, window=3)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_half_open_after_recovery_time(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_single_probe(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert not breaker.allow()  # probe slot taken

    def test_probe_success_closes_and_clears_window(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.snapshot()["recent_failures"] == 0

    def test_probe_failure_reopens_and_restarts_clock(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.0)
        assert breaker.state == OPEN  # recovery clock restarted at reopen
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_cancel_releases_probe_slot_without_outcome(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.cancel()
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # slot free again

    def test_slow_success_counts_as_failure(self):
        breaker = self._breaker(FakeClock(), latency_budget=0.1)
        for _ in range(3):
            breaker.record_success(latency=0.5)
        assert breaker.state == OPEN

    def test_fast_success_within_budget_is_success(self):
        breaker = self._breaker(FakeClock(), latency_budget=0.1)
        for _ in range(5):
            breaker.record_success(latency=0.05)
        assert breaker.state == CLOSED

    def test_transition_callback_sequence(self):
        clock = FakeClock()
        seen: list[tuple[str, str, str]] = []
        breaker = CircuitBreaker(
            "t",
            failure_threshold=1,
            window=1,
            recovery_time=1.0,
            clock=clock,
            on_transition=lambda *args: seen.append(args),
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert seen == [
            ("t", CLOSED, OPEN),
            ("t", OPEN, HALF_OPEN),
            ("t", HALF_OPEN, CLOSED),
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"failure_threshold": 5, "window": 3},
            {"recovery_time": 0.0},
            {"latency_budget": -1.0},
        ],
    )
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker("t", **kwargs)


# ----------------------------------------------------------------------
# Admission control + quarantine
# ----------------------------------------------------------------------
VOCAB = ("catA", "catB", "catC", "catD")
POLICY = AdmissionPolicy(VOCAB, max_history=6, max_top_n=10)


class TestAdmission:
    def test_valid_names_and_ids_mix(self):
        request = POLICY.validate_recommend({"history": ["catA", 2, "catD"]})
        assert request.history == (0, 2, 3)
        assert request.top_n == POLICY.default_top_n
        assert request.deadline_s == POLICY.default_deadline_s

    def test_non_mapping_payload_400(self):
        with pytest.raises(AdmissionError) as exc:
            POLICY.validate_recommend([1, 2, 3])
        assert exc.value.status == 400
        assert exc.value.reason == "malformed"

    def test_missing_history_422(self):
        with pytest.raises(AdmissionError) as exc:
            POLICY.validate_recommend({"top_n": 3})
        assert exc.value.status == 422
        assert exc.value.reason == "schema"

    def test_unknown_category_422(self):
        with pytest.raises(AdmissionError) as exc:
            POLICY.validate_recommend({"history": ["catA", "mainframe-zX"]})
        assert exc.value.status == 422
        assert exc.value.reason == "vocabulary"
        assert "mainframe-zX" in exc.value.detail

    def test_out_of_range_token_422(self):
        for bad in (-1, len(VOCAB)):
            with pytest.raises(AdmissionError) as exc:
                POLICY.validate_recommend({"history": [bad]})
            assert exc.value.reason == "vocabulary"

    def test_bool_token_rejected_as_schema(self):
        with pytest.raises(AdmissionError) as exc:
            POLICY.validate_recommend({"history": [True]})
        assert exc.value.reason == "schema"

    def test_oversized_history_413(self):
        with pytest.raises(AdmissionError) as exc:
            POLICY.validate_recommend({"history": ["catA"] * 7})
        assert exc.value.status == 413
        assert exc.value.reason == "oversized"

    def test_top_n_bounds(self):
        assert POLICY.validate_recommend({"history": [], "top_n": 10}).top_n == 10
        for bad in (0, 11, "five", 2.5, True):
            with pytest.raises(AdmissionError):
                POLICY.validate_recommend({"history": [], "top_n": bad})

    def test_threshold_bounds(self):
        ok = POLICY.validate_recommend({"history": [], "threshold": 0.3})
        assert ok.threshold == pytest.approx(0.3)
        for bad in (-0.1, 1.5, "high", True):
            with pytest.raises(AdmissionError):
                POLICY.validate_recommend({"history": [], "threshold": bad})

    def test_deadline_clamped_to_max(self):
        request = POLICY.validate_recommend({"history": [], "deadline_ms": 60_000})
        assert request.deadline_s == POLICY.max_deadline_s
        for bad in (0, -5, "fast", True):
            with pytest.raises(AdmissionError):
                POLICY.validate_recommend({"history": [], "deadline_ms": bad})

    def test_malformed_duns_422(self):
        with pytest.raises(AdmissionError) as exc:
            POLICY.validate_recommend({"history": [], "duns": "12345"})
        assert exc.value.reason == "duns"

    def test_valid_duns_accepted(self):
        request = POLICY.validate_recommend({"history": [], "duns": "000000000"})
        assert request.duns == "000000000"

    def test_similar_requires_duns(self):
        with pytest.raises(AdmissionError) as exc:
            POLICY.validate_similar({"k": 3})
        assert exc.value.reason == "schema"
        duns, k = POLICY.validate_similar({"duns": "000000000", "k": 3})
        assert (duns, k) == ("000000000", 3)

    def test_similar_rejects_bad_k(self):
        for bad in (0, -2, "many", True):
            with pytest.raises(AdmissionError):
                POLICY.validate_similar({"duns": "000000000", "k": bad})

    def test_admission_error_must_be_4xx(self):
        with pytest.raises(ValueError):
            AdmissionError(500, "oops", "not allowed")

    @given(
        payload=st.recursive(
            st.none()
            | st.booleans()
            | st.integers(-10_000, 10_000)
            | st.floats(allow_nan=False, allow_infinity=False)
            | st.text(max_size=12),
            lambda children: st.lists(children, max_size=6)
            | st.dictionaries(st.text(max_size=8), children, max_size=5),
            max_leaves=24,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_property_arbitrary_payload_never_passes_oov(self, payload):
        """Whatever arrives: either a 4xx AdmissionError or in-vocab tokens."""
        try:
            request = POLICY.validate_recommend(payload)
        except AdmissionError as exc:
            assert 400 <= exc.status < 500
        else:
            assert all(0 <= t < len(VOCAB) for t in request.history)
            assert len(request.history) <= POLICY.max_history

    @given(
        history=st.lists(
            st.one_of(
                st.integers(-5, 10),
                st.sampled_from(["catA", "catB", "router", ""]),
                st.booleans(),
                st.floats(allow_nan=False),
            ),
            max_size=6,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_property_history_tokens_always_in_vocabulary(self, history):
        try:
            request = POLICY.validate_recommend({"history": history})
        except AdmissionError:
            return
        assert all(0 <= t < len(VOCAB) for t in request.history)


class TestQuarantineLog:
    def test_ring_buffer_drops_oldest(self):
        log = QuarantineLog(capacity=2)
        for i in range(3):
            log.record("schema", f"bad {i}", {"i": i})
        assert log.total == 3
        entries = log.entries()
        assert len(entries) == 2
        assert entries[0]["detail"] == "bad 1"

    def test_jsonl_file_appended(self, tmp_path):
        path = tmp_path / "quarantine.jsonl"
        log = QuarantineLog(path)
        log.record("vocabulary", "oov", {"history": ["x"]})
        log.record("duns", "bad", {"duns": "1"})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["reason"] for entry in lines] == ["vocabulary", "duns"]

    def test_unserialisable_payload_repr_fallback(self):
        log = QuarantineLog()
        log.record("schema", "bad", object())
        assert "object" in log.entries()[0]["payload"]


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
def _answer(token: int):
    def scorer(history, threshold, top_n):
        return [(token, 0.9)]

    return scorer


def _raises(history, threshold, top_n):
    raise RuntimeError("model exploded")


def _sleeps(seconds: float):
    def scorer(history, threshold, top_n):
        time.sleep(seconds)
        return [(7, 0.5)]

    return scorer


class TestDegradationLadder:
    def _ladder(self, tiers):
        return DegradationLadder(tiers, floor=Tier("floor", _answer(99)))

    def test_first_tier_answers_not_degraded(self):
        ladder = self._ladder([Tier("a", _answer(1), CircuitBreaker("a"))])
        result = ladder.score([0], deadline_s=1.0)
        assert result.tier == "a"
        assert not result.degraded
        assert result.recommendations == [(1, 0.9)]
        assert [o.status for o in result.outcomes] == ["ok"]

    def test_error_falls_through_to_next_tier(self):
        ladder = self._ladder(
            [
                Tier("a", _raises, CircuitBreaker("a")),
                Tier("b", _answer(2), CircuitBreaker("b")),
            ]
        )
        result = ladder.score([0], deadline_s=1.0)
        assert result.tier == "b"
        assert result.degraded
        statuses = [o.status for o in result.outcomes]
        assert statuses == ["error", "ok"]
        assert "model exploded" in result.outcomes[0].error

    def test_timeout_mid_score_degrades_to_floor(self):
        ladder = self._ladder([Tier("slow", _sleeps(0.5), CircuitBreaker("slow"))])
        result = ladder.score([0], deadline_s=0.05)
        assert result.tier == "floor"
        assert result.degraded
        assert result.outcomes[0].status == "timeout"
        assert result.recommendations == [(99, 0.9)]

    def test_budget_exhaustion_skips_later_tiers(self):
        ladder = self._ladder(
            [
                Tier("slow", _sleeps(0.4), CircuitBreaker("slow")),
                Tier("never", _answer(3), CircuitBreaker("never")),
            ]
        )
        result = ladder.score([0], deadline_s=0.05)
        statuses = [o.status for o in result.outcomes]
        assert statuses == ["timeout", "no_budget", "ok"]
        assert result.tier == "floor"

    def test_open_breaker_skips_without_calling_scorer(self):
        calls = []

        def spy(history, threshold, top_n):
            calls.append(1)
            return [(1, 0.9)]

        breaker = CircuitBreaker("a", failure_threshold=1, window=1)
        breaker.record_failure()
        ladder = self._ladder([Tier("a", spy, breaker)])
        result = ladder.score([0], deadline_s=1.0)
        assert result.tier == "floor"
        assert result.outcomes[0].status == "breaker_open"
        assert not calls

    def test_failures_trip_breaker_then_skip(self):
        breaker = CircuitBreaker("a", failure_threshold=2, window=4)
        ladder = self._ladder([Tier("a", _raises, breaker)])
        ladder.score([0], deadline_s=1.0)
        ladder.score([0], deadline_s=1.0)
        assert breaker.state == OPEN
        result = ladder.score([0], deadline_s=1.0)
        assert result.outcomes[0].status == "breaker_open"

    def test_top_n_truncates(self):
        def many(history, threshold, top_n):
            return [(i, 1.0 - i / 10) for i in range(10)]

        ladder = self._ladder([Tier("a", many, CircuitBreaker("a"))])
        result = ladder.score([0], deadline_s=1.0, top_n=3)
        assert len(result.recommendations) == 3

    def test_floor_with_breaker_rejected(self):
        with pytest.raises(ValueError, match="floor"):
            DegradationLadder([], floor=Tier("floor", _answer(0), CircuitBreaker("f")))

    def test_duplicate_tier_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DegradationLadder(
                [Tier("x", _answer(0), CircuitBreaker("x"))],
                floor=Tier("x", _answer(1)),
            )

    def test_nonpositive_deadline_rejected(self):
        ladder = self._ladder([])
        with pytest.raises(ValueError):
            ladder.score([0], deadline_s=0.0)

    def test_floor_only_ladder_not_degraded(self):
        ladder = self._ladder([])
        result = ladder.score([0], deadline_s=1.0)
        assert result.tier == "floor"
        assert not result.degraded


# ----------------------------------------------------------------------
# Model registry + hot swap
# ----------------------------------------------------------------------
class _WorseModel(UnigramModel):
    """Fitted model whose reference perplexity flunks any gate."""

    def perplexity(self, corpus):
        return 1e9


class _NaNModel(UnigramModel):
    def perplexity(self, corpus):
        return float("nan")


class _BrokenPerplexity(UnigramModel):
    def perplexity(self, corpus):
        raise RuntimeError("numerics diverged")


class TestModelRegistry:
    @pytest.fixture()
    def registry(self, split):
        registry = ModelRegistry(split.validation, perplexity_tolerance=1.25)
        registry.install("uni", UnigramModel().fit(split.train))
        return registry

    def test_install_and_lookup(self, registry):
        assert registry.names() == ["uni"]
        assert registry.version("uni") == 1
        assert registry.recommender("uni").model is registry.model("uni")
        snapshot = registry.snapshot()
        assert snapshot["uni"]["version"] == 1
        assert snapshot["uni"]["model"] == "UnigramModel"

    def test_install_rejects_unfitted_and_duplicates(self, registry, split):
        with pytest.raises(ValueError, match="fitted"):
            registry.install("other", UnigramModel())
        with pytest.raises(ValueError, match="already installed"):
            registry.install("uni", UnigramModel().fit(split.train))

    def test_swap_unknown_slot_is_admission_error(self, registry, split):
        with pytest.raises(AdmissionError) as exc:
            registry.swap("ghost", UnigramModel().fit(split.train))
        assert exc.value.status == 404

    def test_equivalent_candidate_promoted(self, registry, split):
        report = registry.swap("uni", UnigramModel().fit(split.train))
        assert report.status == "promoted"
        assert report.version == 2
        assert registry.version("uni") == 2
        assert registry.history[-1] is report

    def test_swap_from_saved_artifact(self, registry, split, tmp_path):
        path = tmp_path / "candidate.npz"
        UnigramModel().fit(split.train).save(path)
        report = registry.swap("uni", path)
        assert report.status == "promoted"

    def test_corrupt_artifact_rejected_model_keeps_serving(
        self, registry, split, tmp_path
    ):
        path = tmp_path / "staged.npz"
        registry.model("uni").save(path)
        path.write_bytes(b"\x00garbage, not a zip archive\x00")
        serving_before = registry.model("uni")
        history = split.test.sequences()[0][:4]
        recs_before = registry.recommender("uni").recommend_scored(history)

        report = registry.swap("uni", path)
        assert report.status == "rejected"
        assert "stage failed" in report.reason
        assert registry.version("uni") == 1
        # Previous model keeps serving bit-identical responses.
        assert registry.model("uni") is serving_before
        assert registry.recommender("uni").recommend_scored(history) == recs_before

    def test_unfitted_candidate_rejected(self, registry):
        report = registry.swap("uni", UnigramModel())
        assert report.status == "rejected"
        assert "not a fitted" in report.reason

    def test_vocabulary_mismatch_rejected(self, registry, split):
        narrow = split.train.restrict_vocabulary(split.train.vocabulary[:10])
        report = registry.swap("uni", UnigramModel().fit(narrow))
        assert report.status == "rejected"
        assert "vocabulary" in report.reason

    def test_perplexity_gate_rejects_worse_candidate(self, registry, split):
        report = registry.swap("uni", _WorseModel().fit(split.train))
        assert report.status == "rejected"
        assert "exceeds the gate" in report.reason
        assert report.candidate_perplexity == pytest.approx(1e9)
        assert registry.version("uni") == 1

    def test_non_finite_candidate_perplexity_rejected(self, registry, split):
        report = registry.swap("uni", _NaNModel().fit(split.train))
        assert report.status == "rejected"
        assert "non-finite" in report.reason

    def test_perplexity_evaluation_failure_degrades_to_rejection(self, registry, split):
        report = registry.swap("uni", _BrokenPerplexity().fit(split.train))
        assert report.status == "rejected"
        assert "numerics diverged" in report.reason

    def test_rejections_accumulate_in_history(self, registry, split):
        registry.swap("uni", UnigramModel())
        registry.swap("uni", UnigramModel().fit(split.train))
        assert [r.status for r in registry.history] == ["rejected", "promoted"]


# ----------------------------------------------------------------------
# Service core (transport-agnostic)
# ----------------------------------------------------------------------
@pytest.fixture()
def service(corpus, split, fitted_lda):
    registry = ModelRegistry(split.validation, perplexity_tolerance=1.5)
    registry.install("lda", fitted_lda)
    registry.install("ngram", NGramModel(order=2).fit(split.train))
    return RecommendationService(
        corpus=corpus,
        registry=registry,
        tiers=("lda", "ngram"),
        config=ServiceConfig(breaker_recovery_s=30.0),
    )


class TestService:
    def test_healthz_and_readyz(self, service):
        health = service.handle("GET", "/healthz", None)
        assert health.status == 200 and health.body["status"] == "alive"
        ready = service.handle("GET", "/readyz", None)
        assert ready.status == 200 and ready.body["ready"] is True
        assert ready.body["models"]["lda"]["version"] == 1

    def test_recommend_valid_full_tier(self, service, corpus):
        response = service.handle(
            "POST", "/recommend", {"history": [corpus.vocabulary[0]], "top_n": 4}
        )
        assert response.status == 200
        assert response.body["tier"] == "lda"
        assert response.body["degraded"] is False
        assert len(response.body["recommendations"]) <= 4
        for rec in response.body["recommendations"]:
            assert 0 <= rec["token"] < corpus.n_products
            assert rec["category"] == corpus.vocabulary[rec["token"]]
        counters = service.metrics_snapshot()["counters"]
        assert counters['serve.tier.answers{tier="lda"}'] == 1
        assert counters['serve.requests{endpoint="/recommend",outcome="ok"}'] == 1

    def test_recommend_bytes_body(self, service, corpus):
        body = json.dumps({"history": [corpus.vocabulary[1]]}).encode()
        assert service.handle("POST", "/recommend", body).status == 200

    def test_malformed_json_400(self, service):
        response = service.handle("POST", "/recommend", b'{"history": [broken')
        assert response.status == 400
        assert response.body["error"] == "malformed"

    def test_oov_rejected_and_quarantined(self, service):
        response = service.handle(
            "POST", "/recommend", {"history": ["quantum-blockchain-ai"]}
        )
        assert response.status == 422
        assert response.body["error"] == "vocabulary"
        assert service.quarantine.total == 1
        counters = service.metrics_snapshot()["counters"]
        assert counters['serve.rejected{endpoint="/recommend",reason="vocabulary"}'] == 1
        assert (
            counters['serve.requests{endpoint="/recommend",outcome="rejected"}'] == 1
        )

    def test_unknown_path_404_and_wrong_method_405(self, service):
        assert service.handle("GET", "/nope", None).status == 404
        response = service.handle("GET", "/recommend", None)
        assert response.status == 405
        assert response.headers["Allow"] == "POST"
        assert service.handle("POST", "/healthz", b"{}").status == 405

    def test_similar_not_configured_404(self, service):
        response = service.handle("POST", "/similar", {"duns": "000000000"})
        assert response.status == 404
        assert response.body["error"] == "not_configured"

    def test_load_shed_at_inflight_limit(self, corpus, split, fitted_lda):
        registry = ModelRegistry(split.validation)
        registry.install("lda", fitted_lda)
        shedding = RecommendationService(
            corpus=corpus,
            registry=registry,
            tiers=("lda",),
            config=ServiceConfig(max_inflight=0, retry_after_s=2.0),
        )
        response = shedding.handle("POST", "/recommend", {"history": []})
        assert response.status == 429
        assert response.headers["Retry-After"] == "2"
        counters = shedding.metrics_snapshot()["counters"]
        assert counters['serve.shed{endpoint="/recommend"}'] == 1
        assert counters['serve.requests{endpoint="/recommend",outcome="shed"}'] == 1

    def test_concurrent_overload_sheds_excess(self, corpus, split, fitted_lda):
        registry = ModelRegistry(split.validation)
        registry.install("lda", fitted_lda)
        gate = threading.Event()

        service = RecommendationService(
            corpus=corpus,
            registry=registry,
            tiers=("lda",),
            config=ServiceConfig(max_inflight=1, default_deadline_ms=2000.0),
        )
        # First request blocks inside scoring until the gate opens.
        slow_recommender = service.registry.recommender("lda")
        original = slow_recommender.recommend_scored

        def blocking(history, *, threshold=None):
            gate.wait(2.0)
            return original(history, threshold=threshold)

        slow_recommender.recommend_scored = blocking  # type: ignore[method-assign]
        statuses = []

        def call():
            statuses.append(service.handle("POST", "/recommend", {"history": []}).status)

        first = threading.Thread(target=call)
        first.start()
        time.sleep(0.05)  # let the first request occupy the slot
        second = service.handle("POST", "/recommend", {"history": []})
        gate.set()
        first.join(timeout=5.0)
        assert second.status == 429
        assert statuses == [200]

    def test_injected_crash_degrades_and_trips_breaker(self, service, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:serve/score/lda")
        payload = {"history": [corpus.vocabulary[0]]}
        for _ in range(3):
            response = service.handle("POST", "/recommend", payload)
            assert response.status == 200
            assert response.body["tier"] == "ngram"
            assert response.body["degraded"] is True
            assert response.body["outcomes"][0]["status"] == "error"
        # Threshold reached: the lda breaker is now open and skipped.
        response = service.handle("POST", "/recommend", payload)
        assert response.body["outcomes"][0]["status"] == "breaker_open"
        snapshot = service.metrics_snapshot()
        assert snapshot["breakers"]["lda"]["state"] == OPEN
        assert (
            snapshot["counters"]['serve.breaker.transitions{state="open",tier="lda"}']
            == 1
        )
        assert (
            snapshot["counters"]['serve.requests{endpoint="/recommend",outcome="degraded"}']
            == 4
        )

    def test_deadline_exceeded_mid_score_degrades(self, service, corpus, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "hang:serve/score/lda:seconds=0.5")
        response = service.handle(
            "POST", "/recommend", {"history": [corpus.vocabulary[0]], "deadline_ms": 80}
        )
        assert response.status == 200
        assert response.body["degraded"] is True
        assert response.body["tier"] in ("ngram", "popularity")
        assert response.body["outcomes"][0]["status"] == "timeout"

    def test_popularity_floor_always_answers(self, service, corpus, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "crash:serve/score/lda,crash:serve/score/ngram"
        )
        response = service.handle("POST", "/recommend", {"history": [0, 1]})
        assert response.status == 200
        assert response.body["tier"] == "popularity"
        owned = {0, 1}
        assert all(rec["token"] not in owned for rec in response.body["recommendations"])

    def test_hotswap_rejection_rolls_back_bit_identically(
        self, service, corpus, tmp_path
    ):
        probe = {"history": [corpus.vocabulary[0], corpus.vocabulary[3]], "top_n": 5}
        before = service.handle("POST", "/recommend", probe).body

        staged = tmp_path / "staged.npz"
        service.registry.model("lda").save(staged)
        staged.write_bytes(b"\x00rotten bits\x00")
        response = service.handle(
            "POST", "/admin/hotswap", {"name": "lda", "path": str(staged)}
        )
        assert response.status == 409
        assert response.body["status"] == "rejected"

        after = service.handle("POST", "/recommend", probe).body
        # Latency jitter aside, the served answer must be bit-identical.
        assert after["recommendations"] == before["recommendations"]
        assert after["model_versions"] == before["model_versions"]
        assert after["tier"] == before["tier"]
        counters = service.metrics_snapshot()["counters"]
        assert counters['serve.swap{status="rejected"}'] == 1

    def test_hotswap_promotion_bumps_version(self, service, tmp_path):
        staged = tmp_path / "good.npz"
        service.registry.model("lda").save(staged)
        response = service.handle(
            "POST", "/admin/hotswap", {"name": "lda", "path": str(staged)}
        )
        assert response.status == 200
        assert response.body["status"] == "promoted"
        assert response.body["version"] == 2
        ready = service.handle("GET", "/readyz", None)
        assert ready.body["models"]["lda"]["version"] == 2

    def test_hotswap_schema_and_unknown_slot(self, service, tmp_path):
        assert service.handle("POST", "/admin/hotswap", {"name": "lda"}).status == 422
        staged = tmp_path / "m.npz"
        service.registry.model("lda").save(staged)
        response = service.handle(
            "POST", "/admin/hotswap", {"name": "ghost", "path": str(staged)}
        )
        assert response.status == 404

    def test_readiness_drops_during_swap_and_recovers(
        self, service, tmp_path, monkeypatch
    ):
        observed = {}
        original = service.registry.swap

        def spy(name, source):
            observed["ready_mid_swap"] = service.ready
            return original(name, source)

        monkeypatch.setattr(service.registry, "swap", spy)
        staged = tmp_path / "m.npz"
        service.registry.model("lda").save(staged)
        response = service.handle(
            "POST", "/admin/hotswap", {"name": "lda", "path": str(staged)}
        )
        assert response.status == 200
        assert observed["ready_mid_swap"] is False
        assert service.ready is True
        assert service.handle("GET", "/readyz", None).status == 200

    def test_readiness_restored_even_when_swap_raises(self, service, monkeypatch):
        def boom(name, source):
            raise AdmissionError(404, "unknown_model", "nope")

        monkeypatch.setattr(service.registry, "swap", boom)
        response = service.handle(
            "POST", "/admin/hotswap", {"name": "x", "path": "/nope"}
        )
        assert response.status == 404
        assert service.ready is True

    def test_metrics_endpoint_shape(self, service):
        service.handle("POST", "/recommend", {"history": []})
        response = service.handle("GET", "/metrics", None)
        assert response.status == 200
        assert "counters" in response.body
        assert response.body["tiers"] == ["lda", "ngram", "popularity"]
        assert response.body["breakers"]["lda"]["state"] == CLOSED
        assert response.body["models"]["lda"]["version"] == 1

    def test_handle_never_raises(self, service):
        """The last-resort guard: even a poisoned route yields a response."""
        response = service.handle("POST", "/recommend", object())
        assert response.status in (400, 422, 500)

    @given(
        payload=st.dictionaries(
            st.sampled_from(["history", "top_n", "threshold", "deadline_ms", "duns"]),
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(-100, 100),
                st.text(max_size=10),
                st.lists(
                    st.one_of(st.integers(-50, 50), st.text(max_size=10)), max_size=8
                ),
            ),
            max_size=5,
        )
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_property_service_never_5xx(self, service, corpus, payload):
        response = service.handle("POST", "/recommend", payload)
        assert response.status < 500
        if response.status == 200:
            for rec in response.body["recommendations"]:
                assert 0 <= rec["token"] < corpus.n_products


# ----------------------------------------------------------------------
# HTTP transport end-to-end
# ----------------------------------------------------------------------
class TestServeHTTP:
    @pytest.fixture()
    def live(self, service):
        server, thread = start_server(service)
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()

    def _post(self, base, path, data: bytes):
        request = urllib.request.Request(
            base + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=10.0) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read() or b"{}")

    def test_recommend_round_trip(self, live, corpus):
        status, body = self._post(
            live, "/recommend", json.dumps({"history": [corpus.vocabulary[0]]}).encode()
        )
        assert status == 200
        assert body["tier"] == "lda"

    def test_bad_json_400_over_http(self, live):
        status, body = self._post(live, "/recommend", b"{nope")
        assert status == 400
        assert body["error"] == "malformed"

    def test_health_over_http(self, live):
        with urllib.request.urlopen(live + "/healthz", timeout=10.0) as resp:
            assert resp.status == 200

    def test_quarantine_file_written(self, corpus, split, fitted_lda, tmp_path):
        registry = ModelRegistry(split.validation)
        registry.install("lda", fitted_lda)
        quarantine_path = tmp_path / "bad.jsonl"
        service = RecommendationService(
            corpus=corpus,
            registry=registry,
            tiers=("lda",),
            config=ServiceConfig(quarantine_path=str(quarantine_path)),
        )
        service.handle("POST", "/recommend", {"history": ["not-a-product"]})
        entries = [json.loads(l) for l in quarantine_path.read_text().splitlines()]
        assert len(entries) == 1
        assert entries[0]["reason"] == "vocabulary"


class TestFaultInjectionReset:
    def test_reset_firing_counts_rearms_specs(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:somewhere:times=1")
        monkeypatch.delenv("REPRO_FAULTS_STATE", raising=False)
        faults.reset_firing_counts()
        with pytest.raises(faults.InjectedFault):
            faults.inject("somewhere/deep")
        faults.inject("somewhere/deep")  # consumed: no raise
        faults.reset_firing_counts()
        with pytest.raises(faults.InjectedFault):
            faults.inject("somewhere/deep")
