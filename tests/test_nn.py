"""Unit tests for the neural-network substrate: layers, cells, losses, optim.

Gradient correctness is verified by central finite differences on every
parameter matrix of both cell types, through a full multi-layer network.
"""

import numpy as np
import pytest

from repro.models.nn.cells import GRUCell, LSTMCell
from repro.models.nn.layers import Dense, Embedding
from repro.models.nn.losses import masked_softmax_cross_entropy, softmax
from repro.models.nn.network import RecurrentLM
from repro.models.nn.optim import SGD, Adam, clip_gradients


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(4, 7))
        out = softmax(logits)
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_stable_for_large_logits(self):
        out = softmax(np.array([[1000.0, 1000.0, -1000.0]]))
        assert np.allclose(out[0, :2], 0.5)

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 5))
        assert np.allclose(softmax(logits), softmax(logits + 100.0))


class TestMaskedCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.zeros((1, 2, 3))
        logits[0, 0, 1] = 50.0
        logits[0, 1, 2] = 50.0
        targets = np.array([[1, 2]])
        mask = np.ones((1, 2), dtype=bool)
        loss, __ = masked_softmax_cross_entropy(logits, targets, mask)
        assert loss < 1e-6

    def test_uniform_prediction_log_vocab(self):
        logits = np.zeros((1, 1, 8))
        loss, __ = masked_softmax_cross_entropy(
            logits, np.array([[3]]), np.ones((1, 1), dtype=bool)
        )
        assert loss == pytest.approx(np.log(8))

    def test_masked_positions_ignored(self, rng):
        logits = rng.normal(size=(2, 3, 5))
        targets = rng.integers(0, 5, size=(2, 3))
        mask = np.array([[True, True, False], [True, False, False]])
        loss_a, grad_a = masked_softmax_cross_entropy(logits, targets, mask)
        # Perturb masked logits; nothing may change.
        perturbed = logits.copy()
        perturbed[0, 2] += 10.0
        perturbed[1, 1:] -= 5.0
        loss_b, grad_b = masked_softmax_cross_entropy(perturbed, targets, mask)
        assert loss_a == pytest.approx(loss_b)
        assert np.allclose(grad_a[mask], grad_b[mask])
        assert np.all(grad_b[~mask] == 0.0)

    def test_gradient_matches_finite_difference(self, rng):
        logits = rng.normal(size=(2, 2, 4))
        targets = rng.integers(0, 4, size=(2, 2))
        mask = np.array([[True, True], [True, False]])
        __, grad = masked_softmax_cross_entropy(logits, targets, mask)
        eps = 1e-6
        for idx in [(0, 0, 1), (1, 0, 3), (0, 1, 2)]:
            plus = logits.copy()
            plus[idx] += eps
            minus = logits.copy()
            minus[idx] -= eps
            fd = (
                masked_softmax_cross_entropy(plus, targets, mask)[0]
                - masked_softmax_cross_entropy(minus, targets, mask)[0]
            ) / (2 * eps)
            assert grad[idx] == pytest.approx(fd, abs=1e-6)

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError, match="no tokens"):
            masked_softmax_cross_entropy(
                np.zeros((1, 1, 2)), np.zeros((1, 1), dtype=int),
                np.zeros((1, 1), dtype=bool),
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            masked_softmax_cross_entropy(
                np.zeros((1, 2, 3)), np.zeros((1, 3), dtype=int),
                np.ones((1, 2), dtype=bool),
            )


class TestEmbedding:
    def test_lookup(self):
        layer = Embedding(5, 3, seed=0)
        out = layer.forward(np.array([[0, 4], [2, 2]]))
        assert out.shape == (2, 2, 3)
        assert np.allclose(out[0, 0], layer.params["W"][0])

    def test_out_of_range_rejected(self):
        layer = Embedding(5, 3, seed=0)
        with pytest.raises(ValueError):
            layer.forward(np.array([[5]]), validate=True)

    def test_validation_is_opt_in(self):
        # The range scan is hoisted out of the hot path; without validate=
        # the lookup is a pure gather (numpy still rejects ids >= vocab).
        layer = Embedding(5, 3, seed=0)
        with pytest.raises(IndexError):
            layer.forward(np.array([[5]]))
        with pytest.raises(ValueError):
            layer.forward(np.array([[-1]]), validate=True)

    def test_backward_accumulates_per_token(self):
        layer = Embedding(4, 2, seed=0)
        tokens = np.array([[1, 1]])
        grad_out = np.ones((1, 2, 2))
        layer.backward(tokens, grad_out)
        # Token 1 appears twice: its gradient accumulates both.
        assert np.allclose(layer.grads["W"][1], 2.0)
        assert np.allclose(layer.grads["W"][0], 0.0)

    def test_zero_grads(self):
        layer = Embedding(4, 2, seed=0)
        layer.backward(np.array([[0]]), np.ones((1, 1, 2)))
        layer.zero_grads()
        assert np.all(layer.grads["W"] == 0.0)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 6, seed=0)
        assert layer.forward(rng.normal(size=(3, 2, 4))).shape == (3, 2, 6)

    def test_wrong_input_dim_rejected(self, rng):
        with pytest.raises(ValueError):
            Dense(4, 6, seed=0).forward(rng.normal(size=(3, 5)))

    def test_backward_gradients_match_fd(self, rng):
        layer = Dense(3, 2, seed=0)
        x = rng.normal(size=(4, 3))

        def loss(weights, bias):
            return float(((x @ weights + bias) ** 2).sum())

        out = layer.forward(x)
        dx = layer.backward(x, 2.0 * out)
        eps = 1e-6
        w = layer.params["W"]
        idx = (1, 0)
        w_plus, w_minus = w.copy(), w.copy()
        w_plus[idx] += eps
        w_minus[idx] -= eps
        fd = (loss(w_plus, layer.params["b"]) - loss(w_minus, layer.params["b"])) / (2 * eps)
        assert layer.grads["W"][idx] == pytest.approx(fd, rel=1e-5)
        # dx check
        x_plus, x_minus = x.copy(), x.copy()
        x_plus[0, 0] += eps
        x_minus[0, 0] -= eps
        fd_x = (
            float(((x_plus @ w + layer.params["b"]) ** 2).sum())
            - float(((x_minus @ w + layer.params["b"]) ** 2).sum())
        ) / (2 * eps)
        assert dx[0, 0] == pytest.approx(fd_x, rel=1e-5)


@pytest.mark.parametrize("cell_cls", [LSTMCell, GRUCell])
class TestCells:
    def test_step_shapes(self, cell_cls, rng):
        cell = cell_cls(3, 5, seed=0)
        state = cell.initial_state(2)
        x = rng.normal(size=(2, 3))
        h, new_state, cache = cell.step(x, state)
        assert h.shape == (2, 5)
        assert all(s.shape == (2, 5) for s in new_state)

    def test_state_evolves(self, cell_cls, rng):
        cell = cell_cls(3, 5, seed=0)
        state = cell.initial_state(1)
        x = rng.normal(size=(1, 3))
        h1, state, __ = cell.step(x, state)
        h2, __, __ = cell.step(x, state)
        assert not np.allclose(h1, h2)

    def test_saturation_is_finite(self, cell_cls):
        cell = cell_cls(2, 3, seed=0)
        state = cell.initial_state(1)
        h, state, __ = cell.step(np.full((1, 2), 1e6), state)
        assert np.all(np.isfinite(h))


class TestFullNetworkGradients:
    @pytest.mark.parametrize("cell", ["lstm", "gru"])
    def test_every_parameter_matches_finite_difference(self, cell):
        net = RecurrentLM(vocab_size=5, hidden=4, n_layers=2, cell=cell, dropout=0.0, seed=1)
        tokens = np.array([[5, 0, 1, 2], [5, 3, 5, 5]])
        targets = np.array([[0, 1, 2, 4], [3, 0, 0, 0]])
        mask = np.array([[True, True, True, True], [True, False, False, False]])

        def total_loss():
            logits, __ = net.forward(tokens, train=False)
            return masked_softmax_cross_entropy(logits, targets, mask)[0]

        net.zero_grads()
        logits, cache = net.forward(tokens, train=False)
        __, dlogits = masked_softmax_cross_entropy(logits, targets, mask)
        net.backward(dlogits, cache)
        grads = {k: v.copy() for k, v in net.grads().items()}
        params = net.params()
        rng = np.random.default_rng(0)
        eps = 1e-6
        for key, param in params.items():
            for __i in range(3):
                idx = tuple(rng.integers(s) for s in param.shape)
                original = param[idx]
                param[idx] = original + eps
                loss_plus = total_loss()
                param[idx] = original - eps
                loss_minus = total_loss()
                param[idx] = original
                fd = (loss_plus - loss_minus) / (2 * eps)
                assert grads[key][idx] == pytest.approx(fd, abs=2e-7), key

    def test_carried_state_changes_predictions(self):
        net = RecurrentLM(vocab_size=4, hidden=3, n_layers=1, dropout=0.0, seed=0)
        tokens = np.array([[0, 1]])
        fresh, cache = net.forward(tokens, train=False)
        carried, __ = net.forward(tokens, train=False, states=cache["final_states"])
        assert not np.allclose(fresh, carried)

    def test_dropout_requires_rng_in_training(self):
        net = RecurrentLM(vocab_size=4, hidden=3, dropout=0.5, seed=0)
        with pytest.raises(ValueError, match="rng"):
            net.forward(np.array([[0]]), train=True)

    def test_eval_mode_deterministic_despite_dropout(self):
        net = RecurrentLM(vocab_size=4, hidden=3, dropout=0.5, seed=0)
        tokens = np.array([[0, 1, 2]])
        a, __ = net.forward(tokens, train=False)
        b, __ = net.forward(tokens, train=False)
        assert np.allclose(a, b)

    def test_n_parameters_counts_everything(self):
        net = RecurrentLM(vocab_size=5, hidden=4, n_layers=1, cell="lstm", seed=0)
        expected = (5 + 1) * 4 + (4 * 16 + 4 * 16 + 16) + (4 * 5 + 5)
        assert net.n_parameters() == expected

    def test_final_hidden_uses_sequence_lengths(self):
        net = RecurrentLM(vocab_size=4, hidden=3, dropout=0.0, seed=0)
        tokens = np.array([[4, 0, 1], [4, 2, 4]])
        lengths = np.array([3, 2])
        hidden = net.final_hidden(tokens, lengths)
        # Row 1's final state must match running its 2-token prefix alone.
        solo = net.final_hidden(np.array([[4, 2]]), np.array([2]))
        assert np.allclose(hidden[1], solo[0])

    def test_final_hidden_validates_lengths(self):
        net = RecurrentLM(vocab_size=4, hidden=3, seed=0)
        with pytest.raises(ValueError):
            net.final_hidden(np.array([[0, 1]]), np.array([3]))


class TestOptimizers:
    def test_sgd_moves_against_gradient(self):
        params = {"w": np.array([1.0, 2.0])}
        grads = {"w": np.array([0.5, -0.5])}
        SGD(lr=0.1).update(params, grads)
        assert np.allclose(params["w"], [0.95, 2.05])

    def test_sgd_momentum_accumulates(self):
        params = {"w": np.array([0.0])}
        grads = {"w": np.array([1.0])}
        opt = SGD(lr=0.1, momentum=0.9)
        opt.update(params, grads)
        first = params["w"].copy()
        opt.update(params, grads)
        second_step = params["w"] - first
        assert abs(second_step[0]) > 0.1  # momentum term adds up

    def test_adam_converges_on_quadratic(self):
        params = {"w": np.array([5.0])}
        opt = Adam(lr=0.1)
        for __ in range(300):
            grads = {"w": 2.0 * params["w"]}
            opt.update(params, grads)
        assert abs(params["w"][0]) < 1e-2

    def test_adam_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)

    def test_clip_gradients_scales_in_place(self):
        grads = {"a": np.array([3.0, 4.0])}
        norm = clip_gradients(grads, max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(grads["a"]) == pytest.approx(1.0)

    def test_clip_noop_below_threshold(self):
        grads = {"a": np.array([0.3, 0.4])}
        clip_gradients(grads, max_norm=1.0)
        assert np.allclose(grads["a"], [0.3, 0.4])
