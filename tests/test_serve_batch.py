"""Micro-batching tests: coalescing, deadlines, bit-identity, fallback.

The batching contract (`repro.serve.batch`):

* an idle batcher adds **zero latency** — a lone request takes the exact
  single-request path;
* a queued request never waits for batch-mates past its deadline
  allowance (``wait_fraction`` of its budget, capped by the window);
* a batch of one routes through the single path, so it is bit-identical
  to an unbatched service by construction; larger batches produce the
  same rankings as the single path because the batched tier scorer
  mirrors ``ThresholdRecommender`` exactly;
* a failing batched path degrades **per request** — every member falls
  back to its own single-path walk; batch-mates never share a failure.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.ngram import NGramModel
from repro.serve import (
    DegradationLadder,
    MicroBatcher,
    ModelRegistry,
    RecommendationService,
    ServiceConfig,
    Tier,
)


def _echo_single(history, threshold, top_n, deadline_s):
    return ("single", tuple(history), threshold, top_n)


def _echo_batch(histories, thresholds, top_ns, budget_s):
    return [
        ("batched", tuple(h), t, n)
        for h, t, n in zip(histories, thresholds, top_ns)
    ]


# ----------------------------------------------------------------------
# MicroBatcher unit behaviour
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_idle_request_takes_single_path(self):
        batcher = MicroBatcher(_echo_single, _echo_batch, window_s=0.05)
        try:
            answer = batcher.submit([1, 2], None, 5, 1.0)
            assert answer.path == "single"
            assert answer.batch_size == 1
            assert answer.waited_ms == 0.0
            assert answer.result == ("single", (1, 2), None, 5)
        finally:
            batcher.close()

    def test_concurrent_requests_coalesce_into_one_batch(self):
        release = threading.Event()
        started = threading.Event()

        def blocking_single(history, threshold, top_n, deadline_s):
            started.set()
            release.wait(5.0)
            return _echo_single(history, threshold, top_n, deadline_s)

        batcher = MicroBatcher(
            blocking_single, _echo_batch, window_s=0.05, batch_max=8
        )
        try:
            with ThreadPoolExecutor(max_workers=5) as pool:
                blocker = pool.submit(batcher.submit, [0], None, 5, 5.0)
                assert started.wait(2.0)
                # These arrive while the blocker is in flight: they queue.
                followers = [
                    pool.submit(batcher.submit, [i], None, 5, 5.0)
                    for i in range(1, 5)
                ]
                answers = [f.result(timeout=5.0) for f in followers]
                release.set()
                blocker.result(timeout=5.0)
            batched = [a for a in answers if a.path == "batched"]
            assert len(batched) >= 2  # they coalesced, not one-by-one
            sizes = {a.batch_size for a in batched}
            assert all(size >= 2 for size in sizes)
            for i, answer in enumerate(answers, start=1):
                expected = ("batched", (i,), None, 5)
                if answer.path == "single":
                    expected = ("single", (i,), None, 5)
                assert answer.result == expected
        finally:
            batcher.close()

    def test_batch_of_one_routes_through_single_path(self):
        release = threading.Event()
        started = threading.Event()

        def blocking_single(history, threshold, top_n, deadline_s):
            if tuple(history) == (0,):
                started.set()
                release.wait(5.0)
            return _echo_single(history, threshold, top_n, deadline_s)

        batcher = MicroBatcher(blocking_single, _echo_batch, window_s=0.02)
        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                blocker = pool.submit(batcher.submit, [0], None, 5, 5.0)
                assert started.wait(2.0)
                lone = pool.submit(batcher.submit, [9], None, 5, 5.0)
                answer = lone.result(timeout=5.0)
                release.set()
                blocker.result(timeout=5.0)
            # The lone queued request drained into a batch of one and ran
            # the single-request path: bit-identical by construction.
            assert answer.path == "single"
            assert answer.batch_size == 1
            assert answer.result == ("single", (9,), None, 5)
        finally:
            batcher.close()

    def test_batch_failure_degrades_per_request_not_batch_mates(self):
        release = threading.Event()
        started = threading.Event()

        def blocking_single(history, threshold, top_n, deadline_s):
            if tuple(history) == (0,):
                started.set()
                release.wait(5.0)
            return _echo_single(history, threshold, top_n, deadline_s)

        def broken_batch(histories, thresholds, top_ns, budget_s):
            raise RuntimeError("GEMM exploded")

        batcher = MicroBatcher(
            blocking_single, broken_batch, window_s=0.02, batch_max=8
        )
        try:
            with ThreadPoolExecutor(max_workers=5) as pool:
                blocker = pool.submit(batcher.submit, [0], None, 5, 5.0)
                assert started.wait(2.0)
                followers = [
                    pool.submit(batcher.submit, [i], None, 5, 5.0)
                    for i in range(1, 5)
                ]
                answers = [f.result(timeout=5.0) for f in followers]
                release.set()
                blocker.result(timeout=5.0)
            # Every member was answered by its own solo fallback; the
            # batch failure never surfaced to any caller.
            for i, answer in enumerate(answers, start=1):
                assert answer.path == "single"
                assert answer.result == ("single", (i,), None, 5)
        finally:
            batcher.close()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            MicroBatcher(_echo_single, _echo_batch, window_s=0.0)
        with pytest.raises(ValueError, match="batch_max"):
            MicroBatcher(_echo_single, _echo_batch, batch_max=0)
        with pytest.raises(ValueError, match="wait_fraction"):
            MicroBatcher(_echo_single, _echo_batch, wait_fraction=1.5)

    def test_closed_batcher_rejects_submissions(self):
        batcher = MicroBatcher(_echo_single, _echo_batch)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit([1], None, 5, 1.0)

    @settings(max_examples=10, deadline=None)
    @given(
        deadline_s=st.floats(min_value=0.01, max_value=0.5),
        window_s=st.floats(min_value=0.005, max_value=0.2),
        wait_fraction=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_queued_wait_never_exceeds_deadline_allowance(
        self, deadline_s, window_s, wait_fraction
    ):
        """Property: queue wait <= min(window, wait_fraction * deadline).

        A blocker occupies the direct path for longer than any allowance,
        so the queued request *must* be drained by the collector at its
        ``latest_start`` — if the deadline cap were ignored, the measured
        wait would stretch to the blocker's full duration.
        """
        release = threading.Event()
        started = threading.Event()

        def blocking_single(history, threshold, top_n, budget_s):
            if tuple(history) == (0,):
                started.set()
                release.wait(10.0)
            return _echo_single(history, threshold, top_n, budget_s)

        batcher = MicroBatcher(
            blocking_single,
            _echo_batch,
            window_s=window_s,
            wait_fraction=wait_fraction,
        )
        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                blocker = pool.submit(batcher.submit, [0], None, 5, 20.0)
                assert started.wait(2.0)
                begun = time.monotonic()
                answer = pool.submit(batcher.submit, [7], None, 5, deadline_s).result(
                    timeout=10.0
                )
                elapsed = time.monotonic() - begun
                release.set()
                blocker.result(timeout=5.0)
            allowance = min(window_s, wait_fraction * deadline_s)
            # Generous scheduling slack: the property under test is that
            # the wait tracks the *allowance*, not the blocker's 10 s.
            assert elapsed <= allowance + 0.25
            assert answer.waited_ms / 1000.0 <= allowance + 0.25
        finally:
            batcher.close()


# ----------------------------------------------------------------------
# Batched ladder walk
# ----------------------------------------------------------------------
class TestLadderScoreBatch:
    def _ladder(self, tiers):
        return DegradationLadder(
            tiers,
            floor=Tier(
                "floor",
                lambda history, threshold, top_n: [(99, 0.5)][:top_n],
            ),
        )

    def test_batch_matches_single_walk(self):
        def scorer(history, threshold, top_n):
            return [(h * 10, 1.0 - 0.1 * i) for i, h in enumerate(history)][:top_n]

        def batch_scorer(histories, thresholds, top_ns):
            return [
                scorer(h, t, n)
                for h, t, n in zip(histories, thresholds, top_ns)
            ]

        ladder = self._ladder(
            [Tier("model", scorer, batch_scorer=batch_scorer)]
        )
        histories = [[1, 2], [3], [4, 5, 6]]
        batch = ladder.score_batch(histories, deadline_s=1.0, top_ns=[2, 2, 2])
        for history, result in zip(histories, batch):
            single = ladder.score(history, deadline_s=1.0, top_n=2)
            assert result.tier == single.tier == "model"
            assert result.recommendations == single.recommendations
            assert result.degraded is False

    def test_batch_without_batch_scorer_loops_single_scorer(self):
        calls = []

        def scorer(history, threshold, top_n):
            calls.append(list(history))
            return [(len(history), 1.0)]

        ladder = self._ladder([Tier("model", scorer)])
        results = ladder.score_batch([[1], [2, 3]], deadline_s=1.0)
        assert [r.recommendations for r in results] == [[(1, 1.0)], [(2, 1.0)]]
        assert calls == [[1], [2, 3]]

    def test_batch_error_degrades_whole_batch_with_audit(self):
        def broken(history, threshold, top_n):
            raise RuntimeError("tier down")

        ladder = self._ladder([Tier("model", broken)])
        results = ladder.score_batch([[1], [2]], deadline_s=1.0)
        for result in results:
            assert result.tier == "floor"
            assert result.degraded is True
            assert result.recommendations == [(99, 0.5)]
            statuses = {o.tier: o.status for o in result.outcomes}
            assert statuses == {"model": "error", "floor": "ok"}

    def test_batch_timeout_degrades_to_floor(self):
        def slow_batch(histories, thresholds, top_ns):
            time.sleep(0.5)
            return [[(1, 1.0)] for _ in histories]

        def scorer(history, threshold, top_n):
            time.sleep(0.5)
            return [(1, 1.0)]

        ladder = self._ladder(
            [Tier("model", scorer, batch_scorer=slow_batch)]
        )
        results = ladder.score_batch([[1], [2]], deadline_s=0.02)
        for result in results:
            assert result.tier == "floor"
            statuses = {o.tier: o.status for o in result.outcomes}
            assert statuses["model"] == "timeout"

    def test_wrong_length_from_batch_scorer_is_an_error_outcome(self):
        ladder = self._ladder(
            [
                Tier(
                    "model",
                    lambda h, t, n: [(1, 1.0)],
                    batch_scorer=lambda hs, ts, ns: [[(1, 1.0)]],  # short
                )
            ]
        )
        results = ladder.score_batch([[1], [2]], deadline_s=1.0)
        assert all(r.tier == "floor" for r in results)

    def test_empty_batch(self):
        ladder = self._ladder([])
        assert ladder.score_batch([], deadline_s=1.0) == []


# ----------------------------------------------------------------------
# Service-level bit-identity: batched answers == unbatched answers
# ----------------------------------------------------------------------
class TestServiceBatching:
    @pytest.fixture()
    def services(self, corpus, split, fitted_lda):
        """An unbatched and a batched service sharing fitted models."""
        def build(config):
            registry = ModelRegistry(split.validation, perplexity_tolerance=1.5)
            registry.install("lda", fitted_lda)
            registry.install("ngram", NGramModel(order=2).fit(split.train))
            return RecommendationService(
                corpus=corpus,
                registry=registry,
                tiers=("lda", "ngram"),
                config=config,
            )

        plain = build(ServiceConfig())
        batched = build(
            ServiceConfig(batch_window_ms=50.0, batch_max=8, max_inflight=64)
        )
        yield plain, batched
        batched.close()

    def test_batched_responses_bit_identical_to_single(self, services, corpus):
        plain, batched = services
        payloads = [
            {"history": [corpus.vocabulary[i % 5]], "top_n": 4, "deadline_ms": 2000}
            for i in range(12)
        ]
        expected = [
            plain.handle("POST", "/recommend", p).body for p in payloads
        ]
        with ThreadPoolExecutor(max_workers=12) as pool:
            got = list(
                pool.map(
                    lambda p: batched.handle("POST", "/recommend", p).body,
                    payloads,
                )
            )
        saw_batched = False
        for want, have in zip(expected, got):
            assert have["tier"] == want["tier"]
            assert have["degraded"] is False
            assert have["recommendations"] == want["recommendations"]
            saw_batched = saw_batched or have["path"] == "batched"
        assert saw_batched, "concurrent load never coalesced a batch"
        counters = batched.metrics_snapshot()["counters"]
        assert counters.get('serve.path{endpoint="/recommend",path="batched"}', 0) > 0

    def test_sequential_requests_stay_on_single_path(self, services, corpus):
        _, batched = services
        body = batched.handle(
            "POST", "/recommend", {"history": [corpus.vocabulary[0]]}
        ).body
        assert body["path"] == "single"
        assert body["batch_size"] == 1
        assert body["queue_wait_ms"] == 0.0
