"""Contract tests every GenerativeModel implementation must satisfy."""

import numpy as np
import pytest

from repro.models import (
    BayesianPMF,
    ConditionalHeavyHitters,
    LatentDirichletAllocation,
    LSTMModel,
    NGramModel,
    UnigramModel,
)
from repro.models.base import NotFittedError
from repro.recommend.baselines import RandomRecommender

MODEL_FACTORIES = {
    "unigram": lambda: UnigramModel(),
    "bigram": lambda: NGramModel(order=2),
    "trigram": lambda: NGramModel(order=3),
    "lda_gibbs": lambda: LatentDirichletAllocation(n_topics=3, n_iter=30, seed=0),
    "lda_vb": lambda: LatentDirichletAllocation(
        n_topics=3, inference="variational", n_iter=30, seed=0
    ),
    "chh": lambda: ConditionalHeavyHitters(depth=2),
    "lstm": lambda: LSTMModel(hidden=16, n_layers=1, n_epochs=2, seed=0),
    "bpmf": lambda: BayesianPMF(n_factors=4, n_iter=10, seed=0),
    "random": lambda: RandomRecommender(),
}


@pytest.fixture(scope="module", params=sorted(MODEL_FACTORIES))
def fitted_model(request, split):
    """Each model fitted once on the session train split."""
    model = MODEL_FACTORIES[request.param]()
    return model.fit(split.train)


class TestContract:
    def test_fit_returns_self_and_sets_vocab(self, fitted_model, split):
        assert fitted_model.is_fitted
        assert fitted_model.vocab_size == split.train.n_products

    def test_perplexity_positive_and_finite(self, fitted_model, split):
        perplexity = fitted_model.perplexity(split.test)
        assert np.isfinite(perplexity)
        assert 1.0 <= perplexity

    def test_log_prob_negative(self, fitted_model, split):
        assert fitted_model.log_prob(split.test) < 0.0

    def test_next_product_proba_shape_and_range(self, fitted_model, split):
        history = split.test.sequences()[0][:3]
        proba = fitted_model.next_product_proba(history)
        assert proba.shape == (split.train.n_products,)
        assert np.all(proba >= 0.0)
        assert np.all(proba <= 1.0)

    def test_next_product_proba_empty_history(self, fitted_model):
        proba = fitted_model.next_product_proba([])
        assert np.all(np.isfinite(proba))

    def test_next_product_proba_rejects_bad_tokens(self, fitted_model):
        with pytest.raises((ValueError, TypeError)):
            fitted_model.next_product_proba([9999])
        with pytest.raises((ValueError, TypeError)):
            fitted_model.next_product_proba(["OS"])

    def test_batch_matches_single(self, fitted_model, split):
        histories = [s[:4] for s in split.test.sequences()[:5]]
        batch = fitted_model.batch_next_product_proba(histories)
        for row, history in zip(batch, histories):
            single = fitted_model.next_product_proba(history)
            assert np.allclose(row, single, atol=1e-8)

    def test_batch_empty_returns_empty_matrix(self, fitted_model):
        batch = fitted_model.batch_next_product_proba([])
        assert batch.shape == (0, fitted_model.vocab_size)

    def test_save_load_roundtrip(self, fitted_model, split, tmp_path):
        path = tmp_path / "model.npz"
        fitted_model.save(path)
        loaded = type(fitted_model).load(path)
        history = split.test.sequences()[0][:3]
        assert np.allclose(
            loaded.next_product_proba(history),
            fitted_model.next_product_proba(history),
        )
        assert loaded.log_prob(split.test) == pytest.approx(
            fitted_model.log_prob(split.test), rel=1e-9
        )

    def test_save_load_roundtrip_without_npz_suffix(self, fitted_model, split, tmp_path):
        # Regression: np.savez silently appends ".npz", so save("model.bin")
        # wrote model.bin.npz and load("model.bin") raised FileNotFoundError.
        path = tmp_path / "model.bin"
        fitted_model.save(path)
        loaded = type(fitted_model).load(path)
        assert loaded.vocab_size == fitted_model.vocab_size
        history = split.test.sequences()[0][:3]
        assert np.allclose(
            loaded.next_product_proba(history),
            fitted_model.next_product_proba(history),
        )

    def test_mismatched_corpus_rejected(self, fitted_model, split):
        narrow = split.test.subset(range(min(5, split.test.n_companies)))
        # Build a corpus with a smaller vocabulary to trigger the mismatch.
        from repro.data.corpus import Corpus

        used = sorted({c for comp in narrow.companies for c in comp.categories})
        mini = Corpus(narrow.companies, tuple(used))
        if mini.n_products != fitted_model.vocab_size:
            with pytest.raises(ValueError):
                fitted_model.log_prob(mini)


class TestNotFitted:
    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_unfitted_usage_raises(self, name):
        model = MODEL_FACTORIES[name]()
        with pytest.raises(NotFittedError):
            model.next_product_proba([0])
        with pytest.raises(NotFittedError):
            __ = model.vocab_size
        with pytest.raises(NotFittedError):
            model.save("/tmp/should_not_exist.npz")


class TestLoadSafety:
    def test_wrong_class_rejected(self, split, tmp_path):
        model = UnigramModel().fit(split.train)
        path = tmp_path / "unigram.npz"
        model.save(path)
        with pytest.raises(ValueError, match="UnigramModel"):
            NGramModel.load(path)
