"""Tests for the product-type granularity mode and roll-up."""

import pytest

from repro.data.catalog import build_default_catalog
from repro.data.corpus import Corpus
from repro.data.synthetic import InstallBaseSimulator, SimulatorConfig
from repro.experiments.future_work import (
    rollup_types_to_categories,
    run_type_granularity_study,
)


@pytest.fixture(scope="module")
def type_universe():
    catalog = build_default_catalog()
    config = SimulatorConfig(n_companies=120, granularity="product_type")
    simulator = InstallBaseSimulator(config, catalog=catalog)
    return catalog, simulator.generate(seed=13)


class TestCatalogLeafHelpers:
    def test_product_type_names_count(self):
        catalog = build_default_catalog()
        names = catalog.product_type_names()
        assert len(names) == 76  # two types per category
        assert len(set(names)) == 76

    def test_category_of_type(self):
        catalog = build_default_catalog()
        name = catalog.product_type_names()[0]
        category = catalog.category_of_type(name)
        assert category in catalog.categories
        assert name.startswith(category)

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            build_default_catalog().category_of_type("warp_drive_type_9")


class TestTypeGranularity:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="granularity"):
            SimulatorConfig(granularity="vendor")
        with pytest.raises(ValueError):
            SimulatorConfig(second_type_rate=1.5)

    def test_companies_own_product_types(self, type_universe):
        catalog, universe = type_universe
        valid_types = set(catalog.product_type_names())
        for company in universe.companies:
            assert company.categories <= valid_types

    def test_type_corpus_builds(self, type_universe):
        catalog, universe = type_universe
        corpus = Corpus(universe.companies, catalog.product_type_names())
        assert corpus.n_products == 76
        assert corpus.total_products() > 0

    def test_second_types_appear(self, type_universe):
        catalog, universe = type_universe
        owned_types = {t for c in universe.companies for t in c.categories}
        second_types = {t for t in owned_types if t.endswith("_type_2")}
        assert second_types  # second_type_rate 0.4 must produce some

    def test_second_type_never_earlier_than_first(self, type_universe):
        catalog, universe = type_universe
        for company in universe.companies:
            for type_name, date in company.first_seen.items():
                if type_name.endswith("_type_2"):
                    first = type_name.replace("_type_2", "_type_1")
                    if first in company.first_seen:
                        assert company.first_seen[first] <= date


class TestRollup:
    def test_rollup_produces_category_corpus(self, type_universe):
        catalog, universe = type_universe
        corpus = Corpus(universe.companies, catalog.product_type_names())
        rolled = rollup_types_to_categories(corpus, catalog)
        assert rolled.n_products == 38
        assert rolled.n_companies == corpus.n_companies

    def test_rollup_takes_earliest_date(self, type_universe):
        catalog, universe = type_universe
        corpus = Corpus(universe.companies, catalog.product_type_names())
        rolled = rollup_types_to_categories(corpus, catalog)
        by_duns = {c.duns.value: c for c in corpus.companies}
        for company in rolled.companies:
            original = by_duns[company.duns.value]
            for category, date in company.first_seen.items():
                member_dates = [
                    d
                    for t, d in original.first_seen.items()
                    if catalog.category_of_type(t) == category
                ]
                assert date == min(member_dates)

    def test_rollup_rejects_category_corpus(self, corpus):
        catalog = build_default_catalog()
        with pytest.raises(ValueError, match="not product types"):
            rollup_types_to_categories(corpus, catalog)


class TestStudyDriver:
    def test_study_keys_and_bounds(self):
        results = run_type_granularity_study(n_companies=150, n_iter=20)
        assert set(results) == {"product_type", "category"}
        for metrics in results.values():
            assert metrics["test_perplexity"] > 1.0
            assert 0.0 <= metrics["profile_purity"] <= 1.0
