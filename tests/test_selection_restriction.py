"""Tests for model selection utilities and vocabulary restriction."""

import numpy as np
import pytest

from repro.data.catalog import HARDWARE_CATEGORIES, build_default_catalog
from repro.data.corpus import Corpus
from repro.data.synthetic import InstallBaseSimulator, SimulatorConfig
from repro.models.lda import LatentDirichletAllocation
from repro.models.selection import select_lda_topics, select_lstm_architecture


class TestSelectLdaTopics:
    def test_returns_fitted_winner_and_sorted_leaderboard(self, split):
        model, leaderboard = select_lda_topics(
            split, topic_grid=(2, 4), n_iter=40, seed=0
        )
        assert model.is_fitted
        scores = [row["validation_perplexity"] for row in leaderboard]
        assert scores == sorted(scores)
        assert len(leaderboard) == 2

    def test_winner_matches_leaderboard_head(self, split):
        model, leaderboard = select_lda_topics(
            split, topic_grid=(2, 4, 8), n_iter=40, seed=0
        )
        assert model.n_topics == int(leaderboard[0]["n_topics"])

    def test_accepts_raw_corpus(self, corpus):
        model, leaderboard = select_lda_topics(
            corpus, topic_grid=(2, 4), n_iter=30, seed=0
        )
        assert model.is_fitted

    def test_input_type_grid(self, split):
        __, leaderboard = select_lda_topics(
            split, topic_grid=(3,), input_types=("binary", "tfidf"),
            n_iter=30, seed=0,
        )
        inputs = {row["input"] for row in leaderboard}
        assert inputs == {"binary", "tfidf"}

    def test_empty_grid_rejected(self, split):
        with pytest.raises(ValueError):
            select_lda_topics(split, topic_grid=())

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            select_lda_topics([1, 2, 3])


class TestSelectLstmArchitecture:
    def test_small_grid(self, split):
        model, leaderboard = select_lstm_architecture(
            split, layer_grid=(1,), node_grid=(16, 32), n_epochs=3, seed=0
        )
        assert model.is_fitted
        assert len(leaderboard) == 2
        assert model.hidden == int(leaderboard[0]["nodes"])

    def test_empty_grid_rejected(self, split):
        with pytest.raises(ValueError):
            select_lstm_architecture(split, node_grid=())


class TestVocabularyRestriction:
    @pytest.fixture(scope="class")
    def full_universe_corpus(self):
        # Generate over the full 91-category universe (Section 2's setting
        # before the restriction step).
        catalog = build_default_catalog(full_universe=True)
        simulator = InstallBaseSimulator(
            SimulatorConfig(n_companies=150), catalog=catalog
        )
        companies = simulator.generate_companies(seed=9)
        return Corpus(companies, catalog.categories)

    def test_restricts_91_to_38(self, full_universe_corpus):
        restricted = full_universe_corpus.restrict_vocabulary(HARDWARE_CATEGORIES)
        assert restricted.n_products == 38
        for company in restricted.companies:
            assert company.categories <= set(HARDWARE_CATEGORIES)

    def test_restriction_preserves_dates(self, full_universe_corpus):
        restricted = full_universe_corpus.restrict_vocabulary(HARDWARE_CATEGORIES)
        by_duns = {c.duns.value: c for c in full_universe_corpus.companies}
        for company in restricted.companies:
            original = by_duns[company.duns.value]
            for category, date in company.first_seen.items():
                assert original.first_seen[category] == date

    def test_restricted_corpus_is_modelable(self, full_universe_corpus):
        restricted = full_universe_corpus.restrict_vocabulary(HARDWARE_CATEGORIES)
        model = LatentDirichletAllocation(
            n_topics=2, inference="variational", n_iter=20, seed=0
        ).fit(restricted)
        assert np.isfinite(model.perplexity(restricted))

    def test_unknown_category_rejected(self, corpus):
        with pytest.raises(ValueError, match="unknown"):
            corpus.restrict_vocabulary(("OS", "flying_cars"))

    def test_empty_vocabulary_rejected(self, corpus):
        with pytest.raises(ValueError):
            corpus.restrict_vocabulary(())

    def test_restriction_to_everything_is_identity(self, corpus):
        same = corpus.restrict_vocabulary(corpus.vocabulary)
        assert (same.binary_matrix() == corpus.binary_matrix()).all()


class TestProspectList:
    def test_prospect_list_sorted_and_client_free(self, corpus, fitted_lda, universe):
        from repro.app import SalesRecommendationTool
        from repro.data.internal import InternalSalesDatabase

        internal = InternalSalesDatabase(universe.companies, client_rate=0.5, seed=0)
        tool = SalesRecommendationTool(
            corpus, fitted_lda.company_features(corpus), internal
        )
        prospects = tool.prospect_list(max_prospects=10)
        assert 0 < len(prospects) <= 10
        strengths = [total for __, total, __r in prospects]
        assert strengths == sorted(strengths, reverse=True)
        for duns, __, recommendations in prospects:
            assert not internal.is_client(duns)
            assert recommendations
