"""Executable-documentation tests: the example scripts must keep running.

The two heavyweight examples (whitespace_analysis, model_bakeoff) are
exercised indirectly through the APIs they use; the fast ones run here
end-to-end so documentation rot fails CI.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"example {name} is missing"
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart_runs(self, capsys):
        out = _run_example("quickstart.py", capsys)
        assert "held-out perplexity" in out
        assert "recommended next products" in out
        assert "topic 0" in out

    def test_custom_data_runs(self, capsys):
        out = _run_example("custom_data.py", capsys)
        assert "install records" in out
        assert "aggregated" in out
        assert "recommended" in out

    def test_streaming_rules_runs(self, capsys):
        out = _run_example("streaming_rules.py", capsys)
        assert "exact CHH found" in out
        assert "strongest rules within" in out

    @pytest.mark.parametrize(
        "name",
        ["quickstart.py", "whitespace_analysis.py", "model_bakeoff.py",
         "streaming_rules.py", "custom_data.py"],
    )
    def test_example_compiles(self, name):
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")
