"""Model-specific tests for the LSTM language model."""

import numpy as np
import pytest

from repro.models.lstm import LSTMModel
from repro.models.unigram import UnigramModel


class TestConstruction:
    def test_default_lr_depends_on_optimizer(self):
        assert LSTMModel(optimizer="sgd").lr == pytest.approx(2.0)
        assert LSTMModel(optimizer="adam").lr == pytest.approx(0.002)

    def test_explicit_lr_wins(self):
        assert LSTMModel(optimizer="sgd", lr=0.5).lr == 0.5

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            LSTMModel(cell="rnn")
        with pytest.raises(ValueError):
            LSTMModel(batching="document")
        with pytest.raises(ValueError):
            LSTMModel(lr_decay=1.5)
        with pytest.raises(ValueError):
            LSTMModel(dropout=1.0)


class TestTraining:
    def test_training_reduces_train_perplexity(self, split):
        model = LSTMModel(hidden=32, n_layers=1, n_epochs=6, seed=0).fit(split.train)
        history = model.training_history
        assert len(history) == 6
        assert history[-1]["train_perplexity"] < history[0]["train_perplexity"]

    def test_beats_unigram(self, split):
        # Adam with small batches converges within the epoch budget even on
        # the 210-company fixture (the stream is only ~1.6k tokens).
        lstm = LSTMModel(
            hidden=64, n_layers=1, n_epochs=20, optimizer="adam",
            batch_size=8, num_steps=10, seed=0,
        ).fit(split.train)
        unigram = UnigramModel().fit(split.train)
        assert lstm.perplexity(split.test) < unigram.perplexity(split.test)

    def test_validation_selects_best_epoch(self, split):
        model = LSTMModel(
            hidden=32, n_epochs=6, validation=split.validation, seed=0
        ).fit(split.train)
        recorded = [h["valid_perplexity"] for h in model.training_history]
        final = model.perplexity(split.validation)
        assert final == pytest.approx(min(recorded), rel=1e-6)

    def test_deterministic_given_seed(self, split):
        a = LSTMModel(hidden=16, n_epochs=2, seed=5).fit(split.train)
        b = LSTMModel(hidden=16, n_epochs=2, seed=5).fit(split.train)
        assert a.perplexity(split.test) == pytest.approx(b.perplexity(split.test))

    def test_company_batching_mode(self, split):
        model = LSTMModel(
            hidden=16, n_epochs=2, batching="company", optimizer="adam", seed=0
        ).fit(split.train)
        assert np.isfinite(model.perplexity(split.test))

    def test_gru_cell_trains(self, split):
        model = LSTMModel(hidden=16, cell="gru", n_epochs=2, seed=0).fit(split.train)
        assert np.isfinite(model.perplexity(split.test))

    def test_n_parameters_dominated_by_recurrent_term(self, split):
        # Section 5 cites nc * (4 nc + no) as the dominating LSTM term.
        model = LSTMModel(hidden=100, n_layers=1, n_epochs=1, seed=0).fit(split.train)
        dominating = 100 * (4 * 100 + 38)
        assert model.n_parameters > dominating


class TestPrediction:
    @pytest.fixture(scope="class")
    def fitted(self, split):
        return LSTMModel(hidden=32, n_epochs=4, seed=0).fit(split.train)

    def test_next_product_proba_is_distribution(self, fitted, split):
        proba = fitted.next_product_proba(split.test.sequences()[0][:3])
        assert proba.sum() == pytest.approx(1.0)

    def test_prediction_depends_on_history(self, fitted, split):
        sequences = [s for s in split.test.sequences() if len(s) >= 3]
        a = fitted.next_product_proba(sequences[0][:3])
        b = fitted.next_product_proba([])
        assert not np.allclose(a, b)

    def test_company_features_shape(self, fitted, split):
        features = fitted.company_features(split.test)
        assert features.shape == (split.test.n_companies, 32)
        # Non-empty companies must have non-zero embeddings.
        lengths = [len(s) for s in split.test.sequences()]
        for row, length in zip(features, lengths):
            if length > 0:
                assert np.any(row != 0.0)

    def test_stream_scoring_counts_all_products(self, fitted, split):
        # A corpus duplicated twice must score (almost exactly) twice the
        # log-prob; stream scoring carries state across company boundaries,
        # so the agreement is near-exact rather than bitwise.
        doubled = split.test.subset(
            list(range(split.test.n_companies)) + list(range(split.test.n_companies)),
            allow_duplicates=True,
        )
        assert fitted.log_prob(doubled) == pytest.approx(
            2.0 * fitted.log_prob(split.test), rel=1e-3
        )

    def test_company_scoring_is_exactly_additive(self, split):
        model = LSTMModel(
            hidden=16, n_epochs=1, batching="company", optimizer="adam", seed=0
        ).fit(split.train)
        doubled = split.test.subset(
            list(range(split.test.n_companies)) + list(range(split.test.n_companies)),
            allow_duplicates=True,
        )
        assert model.log_prob(doubled) == pytest.approx(
            2.0 * model.log_prob(split.test), rel=1e-12
        )
