"""Shared fixtures: small deterministic universes and fitted models.

Expensive artefacts (generated universes, fitted models) are session-scoped
so the whole suite stays fast; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.corpus import Corpus
from repro.data.synthetic import InstallBaseSimulator, SimulatorConfig
from repro.models.lda import LatentDirichletAllocation


@pytest.fixture(scope="session")
def simulator() -> InstallBaseSimulator:
    """Simulator over the default 38-category catalog, 300 companies."""
    return InstallBaseSimulator(SimulatorConfig(n_companies=300))


@pytest.fixture(scope="session")
def universe(simulator):
    """A generated 300-company universe (seed 7)."""
    return simulator.generate(seed=7)


@pytest.fixture(scope="session")
def corpus(simulator, universe) -> Corpus:
    """Corpus over the full 38-category vocabulary."""
    return Corpus(universe.companies, simulator.catalog.categories)


@pytest.fixture(scope="session")
def split(corpus):
    """The standard 70/10/20 split of the session corpus."""
    return corpus.split((0.7, 0.1, 0.2), seed=1)


@pytest.fixture(scope="session")
def fitted_lda(split) -> LatentDirichletAllocation:
    """A variational LDA(3) fitted on the session train split."""
    return LatentDirichletAllocation(
        n_topics=3, inference="variational", n_iter=60, seed=0
    ).fit(split.train)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)
