"""Tests for spectral co-clustering."""

import numpy as np
import pytest

from repro.analysis.cocluster import SpectralCoclustering


def _block_matrix(rng, n_rows=40, n_cols=12, noise=0.02):
    """Two clean diagonal blocks plus noise."""
    matrix = (rng.random((n_rows, n_cols)) < noise).astype(float)
    matrix[: n_rows // 2, : n_cols // 2] = 1.0
    matrix[n_rows // 2 :, n_cols // 2 :] = 1.0
    return matrix


class TestSpectralCoclustering:
    def test_recovers_block_structure(self, rng):
        matrix = _block_matrix(rng)
        model = SpectralCoclustering(n_clusters=2, seed=0).fit(matrix)
        rows, cols = model.row_labels_, model.column_labels_
        # Rows of the same block share a label; blocks get distinct labels.
        assert len(set(rows[:20].tolist())) == 1
        assert len(set(rows[20:].tolist())) == 1
        assert rows[0] != rows[-1]
        # Column labels mirror the row blocks.
        assert cols[0] == rows[0]
        assert cols[-1] == rows[-1]

    def test_deterministic_given_seed(self, rng):
        matrix = _block_matrix(rng)
        a = SpectralCoclustering(2, seed=1).fit(matrix)
        b = SpectralCoclustering(2, seed=1).fit(matrix)
        assert np.array_equal(a.row_labels_, b.row_labels_)

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError, match="non-negative"):
            SpectralCoclustering(2).fit(np.array([[1.0, -1.0], [0.5, 0.5]]))

    def test_rejects_empty_rows(self):
        matrix = np.array([[1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError, match="empty"):
            SpectralCoclustering(2).fit(matrix)

    def test_summary_reports_block_density(self, rng):
        matrix = _block_matrix(rng, noise=0.0)
        model = SpectralCoclustering(2, seed=0).fit(matrix)
        summaries = model.cocluster_summary(matrix)
        densities = sorted(s["density"] for s in summaries)
        assert densities[-1] == pytest.approx(1.0)
        assert densities[0] == pytest.approx(1.0)

    def test_summary_requires_fit(self, rng):
        with pytest.raises(RuntimeError):
            SpectralCoclustering(2).cocluster_summary(_block_matrix(rng))

    def test_lda_features_beat_raw_coclustering(self, corpus, universe, fitted_lda):
        # The Section 3.1 narrative, in its robust comparative form: company
        # clusters from LDA features align with the true latent profiles at
        # least as well as raw-matrix co-clustering does.
        from repro.analysis.kmeans import KMeans
        from repro.models.lda import LatentDirichletAllocation

        matrix = corpus.binary_matrix()
        keep = matrix.sum(axis=1) > 0
        n_profiles = universe.config.n_profiles
        model = SpectralCoclustering(n_clusters=n_profiles, seed=0).fit(
            matrix[keep][:, matrix.sum(axis=0) > 0]
        )
        truth = universe.ground_truth.company_mixture.argmax(axis=1)[keep]

        def purity(labels):
            total = 0
            for k in np.unique(labels):
                members = truth[labels == k]
                total += np.bincount(members).max() if len(members) else 0
            return total / len(truth)

        lda = LatentDirichletAllocation(
            n_topics=n_profiles, inference="variational", n_iter=60, seed=0
        ).fit(corpus)
        theta = lda.company_features(corpus)[keep]
        lda_labels = KMeans(n_profiles, seed=0).fit_predict(theta)
        assert purity(lda_labels) >= purity(model.row_labels_) - 0.02
        assert purity(lda_labels) > 0.85
