"""Tests for the sales application (Section 6)."""

import logging

import numpy as np
import pytest

from repro.app.filters import FirmographicFilter
from repro.app.tool import SalesRecommendationTool
from repro.data.internal import InternalSalesDatabase


@pytest.fixture(scope="module")
def internal(universe):
    return InternalSalesDatabase(universe.companies, client_rate=0.5, seed=0)


@pytest.fixture(scope="module")
def tool(corpus, fitted_lda, internal):
    return SalesRecommendationTool(corpus, fitted_lda.company_features(corpus), internal)


class TestFirmographicFilter:
    def test_empty_filter_matches_everything(self, internal, universe):
        empty = FirmographicFilter()
        for company in universe.companies[:20]:
            assert empty.matches(internal.firmographics(company.duns.value))

    def test_industry_filter(self, internal, universe):
        company = universe.companies[0]
        record = internal.firmographics(company.duns.value)
        assert FirmographicFilter(sic2=record.sic2).matches(record)
        wrong = 80 if record.sic2 != 80 else 73
        assert not FirmographicFilter(sic2=wrong).matches(record)

    def test_employee_range(self, internal, universe):
        record = internal.firmographics(universe.companies[0].duns.value)
        assert FirmographicFilter(
            min_employees=record.employees, max_employees=record.employees
        ).matches(record)
        assert not FirmographicFilter(min_employees=record.employees + 1).matches(record)

    def test_revenue_range(self, internal, universe):
        record = internal.firmographics(universe.companies[0].duns.value)
        assert not FirmographicFilter(
            max_revenue_musd=record.revenue_musd / 2
        ).matches(record)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            FirmographicFilter(min_employees=100, max_employees=10)
        with pytest.raises(ValueError):
            FirmographicFilter(min_revenue_musd=5.0, max_revenue_musd=1.0)


class TestSalesRecommendationTool:
    def test_feature_row_count_validated(self, corpus, internal):
        with pytest.raises(ValueError, match="rows"):
            SalesRecommendationTool(corpus, np.zeros((3, 2)), internal)

    def test_similar_companies_sorted_and_exclude_self(self, tool, corpus):
        target = corpus.companies[0].duns.value
        hits = tool.similar_companies(target, k=10)
        assert len(hits) == 10
        assert target not in [h.duns for h in hits]
        similarities = [h.similarity for h in hits]
        assert similarities == sorted(similarities, reverse=True)

    def test_similar_companies_actually_similar(self, tool, corpus, universe):
        # The top match must share the query's dominant latent profile far
        # more often than chance.
        labels = universe.ground_truth.company_mixture.argmax(axis=1)
        by_duns = {c.duns.value: i for i, c in enumerate(corpus.companies)}
        agreements = 0
        for company in corpus.companies[:40]:
            hits = tool.similar_companies(company.duns.value, k=1)
            if hits:
                agreements += int(
                    labels[by_duns[company.duns.value]] == labels[by_duns[hits[0].duns]]
                )
        assert agreements / 40 > 0.8

    def test_industry_filter_respected(self, tool, corpus, internal):
        target = corpus.companies[0]
        filters = FirmographicFilter(sic2=target.sic2)
        for hit in tool.similar_companies(target.duns.value, k=5, filters=filters):
            assert internal.firmographics(hit.duns).sic2 == target.sic2

    def test_unknown_company_raises(self, tool):
        with pytest.raises(KeyError):
            tool.similar_companies("999999999")

    def test_oversized_k_clamped_with_warning(self, tool, corpus, caplog):
        target = corpus.companies[0].duns.value
        with caplog.at_level(logging.WARNING, logger="repro.app.tool"):
            hits = tool.similar_companies(target, k=corpus.n_companies + 50)
        assert len(hits) == corpus.n_companies - 1
        assert any("clamping" in record.message for record in caplog.records)

    def test_k_within_pool_does_not_warn(self, tool, corpus, caplog):
        target = corpus.companies[0].duns.value
        with caplog.at_level(logging.WARNING, logger="repro.app.tool"):
            tool.similar_companies(target, k=3)
        assert not caplog.records

    def test_empty_filtered_pool_returns_no_hits(self, tool, corpus):
        target = corpus.companies[0]
        # A filter no candidate can satisfy leaves an empty pool.
        impossible = FirmographicFilter(min_employees=10**9)
        hits = tool.similar_companies(target.duns.value, k=5, filters=impossible)
        assert hits == []

    def test_nonpositive_k_still_rejected(self, tool, corpus):
        target = corpus.companies[0].duns.value
        for bad in (0, -3):
            with pytest.raises(ValueError):
                tool.similar_companies(target, k=bad)

    def test_recommendations_exclude_owned(self, tool, corpus):
        target = corpus.companies[0]
        for rec in tool.recommend_products(target.duns.value, top_n=10):
            assert rec.category not in target.categories

    def test_recommendation_strengths_normalised(self, tool, corpus):
        target = corpus.companies[0]
        recs = tool.recommend_products(target.duns.value, k_neighbors=30, top_n=38)
        assert recs, "expected at least one recommendation"
        strengths = [r.strength for r in recs]
        assert strengths == sorted(strengths, reverse=True)
        assert all(0.0 < s <= 1.0 for s in strengths)
        assert all(r.n_supporters >= 1 for r in recs)

    def test_clients_only_restricts_evidence(self, tool, corpus, internal):
        target = corpus.companies[0]
        all_evidence = tool.recommend_products(
            target.duns.value, k_neighbors=30, top_n=38, clients_only=False
        )
        clients_only = tool.recommend_products(
            target.duns.value, k_neighbors=30, top_n=38, clients_only=True
        )
        # Restricting to clients cannot increase the supporter counts.
        support_all = {r.category: r.n_supporters for r in all_evidence}
        for rec in clients_only:
            assert rec.n_supporters <= support_all.get(rec.category, 0)

    def test_whitespace_report_partitions(self, tool, corpus, internal):
        target = corpus.companies[0]
        report = tool.whitespace_report(target.duns.value)
        assert report["sold_by_us"] | report["competitor_owned"] == report["owned"]
        assert not report["sold_by_us"] & report["competitor_owned"]

    def test_missing_firmographics_rejected(self, corpus, fitted_lda, universe):
        partial = InternalSalesDatabase(universe.companies[:10], seed=0)
        with pytest.raises(ValueError, match="lack firmographics"):
            SalesRecommendationTool(
                corpus, fitted_lda.company_features(corpus), partial
            )
