"""Tests for the time-sliced replay harness and the canary promotion gate."""

import datetime as dt
import math

import numpy as np
import pytest

from repro.models.lda import LatentDirichletAllocation
from repro.models.ngram import NGramModel
from repro.models.unigram import UnigramModel
from repro.recommend.windows import SlidingWindowSpec
from repro.replay import CanaryGate, CanaryVerdict, ReplayHarness, ReplayWindowResult
from repro.runtime import RunJournal
from repro.scenarios import build_scenario

SPEC = SlidingWindowSpec(n_windows=3)


@pytest.fixture(scope="module")
def drifted_lda(corpus):
    """An LDA fitted on drift-corrupted data — the canary's reject case."""
    corrupted = build_scenario(corpus, "drift", seed=1).corpus
    return LatentDirichletAllocation(
        n_topics=3, inference="variational", n_iter=60, seed=1
    ).fit(corrupted)


@pytest.fixture(scope="module")
def clean_refit_lda(split):
    """A clean same-family refit — the canary's promote case."""
    return LatentDirichletAllocation(
        n_topics=3, inference="variational", n_iter=60, seed=1
    ).fit(split.train)


class TestReplayWindowResult:
    def _result(self, **overrides):
        base = dict(
            window_start=dt.date(2013, 1, 1),
            window_end=dt.date(2014, 1, 1),
            n_companies=10,
            n_retrieved=8,
            n_correct=4,
            n_relevant=5,
            js_divergence=0.02,
            drifted=False,
            recommended=(3, 5, 0),
        )
        base.update(overrides)
        return ReplayWindowResult(**base)

    def test_quality_metrics(self):
        result = self._result()
        assert result.precision == pytest.approx(0.5)
        assert result.recall == pytest.approx(0.8)
        assert result.f1 == pytest.approx(2 * 0.5 * 0.8 / 1.3)

    def test_empty_retrieval_gives_nan_precision(self):
        result = self._result(n_retrieved=0, n_correct=0)
        assert math.isnan(result.precision)
        assert math.isnan(result.f1)

    def test_no_relevant_gives_zero_recall(self):
        assert self._result(n_relevant=0).recall == 0.0

    def test_json_round_trip(self):
        result = self._result()
        assert ReplayWindowResult.from_json(result.as_json()) == result

    def test_json_round_trip_nan_divergence(self):
        result = self._result(js_divergence=float("nan"))
        payload = result.as_json()
        assert payload["js_divergence"] is None
        restored = ReplayWindowResult.from_json(payload)
        assert math.isnan(restored.js_divergence)


class TestReplayHarness:
    def test_replay_produces_one_result_per_window(self, corpus, fitted_lda):
        harness = ReplayHarness(corpus, spec=SPEC)
        report = harness.replay(fitted_lda, "lda")
        assert report.n_windows == 3
        assert report.label == "lda"
        for result in report.results:
            assert result.n_companies > 0
            assert 0 <= result.n_correct <= result.n_retrieved
            assert len(result.recommended) == corpus.n_products
            assert sum(result.recommended) == result.n_retrieved
        assert 0.0 <= report.mean_recall() <= 1.0
        dist = report.recommendation_distribution()
        assert dist.shape == (corpus.n_products,)
        assert dist.sum() > 0

    def test_unfitted_model_rejected(self, corpus):
        harness = ReplayHarness(corpus, spec=SPEC)
        with pytest.raises(ValueError, match="not fitted"):
            harness.replay(UnigramModel(), "uni")

    def test_no_pretraffic_rejected(self, corpus):
        early = SlidingWindowSpec(first_start=dt.date(1990, 1, 1), n_windows=2)
        with pytest.raises(ValueError, match="before 1990-01-01"):
            ReplayHarness(corpus, spec=early)

    def test_invalid_divergence_threshold(self, corpus):
        with pytest.raises(ValueError, match="positive"):
            ReplayHarness(corpus, spec=SPEC, divergence_threshold=0.0)

    def test_journal_resume_skips_scoring(self, corpus, split, tmp_path):
        model = UnigramModel().fit(split.train)
        path = tmp_path / "replay.jsonl"
        first = ReplayHarness(
            corpus, spec=SPEC, journal=RunJournal(path)
        ).replay(model, "uni")

        resumed_harness = ReplayHarness(
            corpus, spec=SPEC, journal=RunJournal(path, resume=True)
        )

        def boom(histories):
            raise AssertionError("resume must not re-score completed windows")

        model.batch_next_product_proba = boom
        resumed = resumed_harness.replay(model, "uni")
        assert resumed == first

    def test_journal_keys_separate_labels(self, corpus, split, tmp_path):
        journal = RunJournal(tmp_path / "replay.jsonl")
        harness = ReplayHarness(corpus, spec=SPEC, journal=journal)
        uni = harness.replay(UnigramModel().fit(split.train), "uni")
        ngram = harness.replay(NGramModel(order=2).fit(split.train), "ngram")
        assert uni.results != ngram.results


class TestCanaryGate:
    def test_clean_refit_promotes(self, split, fitted_lda, clean_refit_lda):
        gate = CanaryGate(split.validation, spec=SPEC)
        verdict = gate.evaluate(fitted_lda, clean_refit_lda)
        assert verdict.passed
        assert verdict.reason == "passed"
        assert verdict.regressed_windows <= gate.max_regressed

    def test_drifted_candidate_rejected(self, split, fitted_lda, drifted_lda):
        gate = CanaryGate(split.validation, spec=SPEC)
        verdict = gate.evaluate(fitted_lda, drifted_lda)
        assert not verdict.passed
        assert verdict.reason in ("quality_regression", "recommendation_divergence")
        assert verdict.detail

    def test_verdict_dict_is_machine_readable(self, split, fitted_lda, drifted_lda):
        gate = CanaryGate(split.validation, spec=SPEC)
        payload = gate.evaluate(fitted_lda, drifted_lda).as_dict()
        assert payload["passed"] is False
        assert payload["n_windows"] == 3
        assert isinstance(payload["regressed_windows"], int)
        assert set(payload) == {
            "passed",
            "reason",
            "detail",
            "regressed_windows",
            "n_windows",
            "recommendation_divergence",
            "incumbent_mean_recall",
            "candidate_mean_recall",
        }
        assert 0.0 <= payload["incumbent_mean_recall"] <= 1.0
        assert 0.0 <= payload["candidate_mean_recall"] <= 1.0

    def test_incumbent_replay_cached_across_evaluations(
        self, split, fitted_lda, clean_refit_lda, monkeypatch
    ):
        gate = CanaryGate(split.validation, spec=SPEC)
        calls = []
        original = gate.harness.replay

        def counting(model, label):
            calls.append(label)
            return original(model, label)

        monkeypatch.setattr(gate.harness, "replay", counting)
        gate.evaluate(fitted_lda, clean_refit_lda)
        gate.evaluate(fitted_lda, clean_refit_lda)
        assert calls.count("incumbent") == 1
        assert calls.count("candidate") == 2

    def test_divergence_gate_rejects_shifted_recommendations(
        self, split, fitted_lda, clean_refit_lda
    ):
        gate = CanaryGate(
            split.validation, spec=SPEC, quality_margin=1.0, divergence_threshold=1e-6
        )
        verdict = gate.evaluate(fitted_lda, clean_refit_lda)
        assert not verdict.passed
        assert verdict.reason == "recommendation_divergence"

    def test_invalid_parameters(self, split):
        with pytest.raises(ValueError):
            CanaryGate(split.validation, spec=SPEC, quality_margin=-0.1)
        with pytest.raises(ValueError):
            CanaryGate(split.validation, spec=SPEC, max_regressed=-1)
        with pytest.raises(ValueError):
            CanaryGate(split.validation, spec=SPEC, divergence_threshold=0.0)

    def test_identical_models_always_pass(self, split, fitted_lda):
        gate = CanaryGate(split.validation, spec=SPEC)
        verdict = gate.evaluate(fitted_lda, fitted_lda)
        assert verdict.passed
        assert verdict.regressed_windows == 0
        assert verdict.recommendation_divergence == pytest.approx(0.0, abs=1e-12)


class TestRegistryCanaryGate:
    """The promotion contract: reject-and-keep-serving vs promote."""

    @pytest.fixture()
    def registry(self, split, fitted_lda):
        from repro.serve import ModelRegistry

        registry = ModelRegistry(
            split.validation,
            # Loose enough that the canary — not the perplexity gate — is
            # the deciding check for the drifted candidate.
            perplexity_tolerance=6.0,
            canary=CanaryGate(split.validation, spec=SPEC),
        )
        registry.install("lda", fitted_lda)
        return registry

    def test_drifted_candidate_rejected_with_canary_reason(
        self, registry, split, drifted_lda
    ):
        history = split.test.sequences()[0][:4]
        recs_before = registry.recommender("lda").recommend_scored(history)

        report = registry.swap("lda", drifted_lda)
        assert report.status == "rejected"
        assert "canary rejected" in report.reason
        assert report.canary is not None
        assert report.canary["passed"] is False
        assert registry.version("lda") == 1
        # The incumbent keeps serving bit-identically.
        assert registry.recommender("lda").recommend_scored(history) == recs_before

    def test_clean_candidate_promotes_with_canary_report(
        self, registry, clean_refit_lda
    ):
        report = registry.swap("lda", clean_refit_lda)
        assert report.status == "promoted"
        assert report.canary is not None
        assert report.canary["passed"] is True
        assert registry.version("lda") == 2

    def test_rejection_recorded_in_history_as_dict(self, registry, drifted_lda):
        report = registry.swap("lda", drifted_lda)
        payload = report.as_dict()
        assert payload["status"] == "rejected"
        assert payload["canary"]["reason"] in (
            "quality_regression",
            "recommendation_divergence",
        )
        assert registry.history[-1] is report


class TestServiceCanaryGate:
    """End-to-end: /admin/hotswap answers 409 and the 200 path is stable."""

    @pytest.fixture()
    def service(self, corpus, split, fitted_lda):
        from repro.serve import ModelRegistry, RecommendationService, ServiceConfig

        registry = ModelRegistry(
            split.validation,
            perplexity_tolerance=6.0,
            canary=CanaryGate(split.validation, spec=SPEC),
        )
        registry.install("lda", fitted_lda)
        return RecommendationService(
            corpus=corpus,
            registry=registry,
            tiers=("lda",),
            config=ServiceConfig(batch_window_ms=0.0, topk_cache_size=0),
        )

    @staticmethod
    def _stable_fields(response):
        return {
            key: response.body[key]
            for key in ("tier", "recommendations", "model_versions")
        }

    def test_hotswap_409_keeps_serving_bit_identically(
        self, service, corpus, drifted_lda, tmp_path
    ):
        payload = {"history": [corpus.vocabulary[0], corpus.vocabulary[2]], "top_n": 5}
        before = service.handle("POST", "/recommend", payload)
        assert before.status == 200

        staged = tmp_path / "drifted.npz"
        drifted_lda.save(staged)
        swap = service.handle(
            "POST", "/admin/hotswap", {"name": "lda", "path": str(staged)}
        )
        assert swap.status == 409
        assert "canary rejected" in swap.body["reason"]
        assert swap.body["canary"]["passed"] is False

        after = service.handle("POST", "/recommend", payload)
        assert after.status == 200
        assert self._stable_fields(after) == self._stable_fields(before)

    def test_hotswap_promotes_clean_candidate(
        self, service, corpus, clean_refit_lda, tmp_path
    ):
        staged = tmp_path / "clean.npz"
        clean_refit_lda.save(staged)
        swap = service.handle(
            "POST", "/admin/hotswap", {"name": "lda", "path": str(staged)}
        )
        assert swap.status == 200
        assert swap.body["status"] == "promoted"
        assert swap.body["canary"]["passed"] is True
        assert swap.body["version"] == 2
