"""Tests for silhouette scores."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.silhouette import silhouette_samples, silhouette_score


class TestSilhouetteSamples:
    def test_well_separated_clusters_near_one(self, rng):
        data = np.vstack(
            [rng.normal(0, 0.01, size=(20, 2)), rng.normal(100, 0.01, size=(20, 2))]
        )
        labels = np.array([0] * 20 + [1] * 20)
        values = silhouette_samples(data, labels)
        assert values.min() > 0.99

    def test_random_labels_near_zero(self, rng):
        data = rng.normal(size=(100, 2))
        labels = rng.integers(0, 2, size=100)
        score = silhouette_samples(data, labels).mean()
        assert abs(score) < 0.15

    def test_misassigned_point_negative(self):
        data = np.array([[0.0], [0.1], [10.0], [10.1], [0.05]])
        labels = np.array([0, 0, 1, 1, 1])  # last point wrongly in cluster 1
        values = silhouette_samples(data, labels)
        assert values[-1] < 0.0

    def test_known_two_point_clusters(self):
        # Two tight pairs distance 1 apart internally 0.2.
        data = np.array([[0.0], [0.2], [1.0], [1.2]])
        labels = np.array([0, 0, 1, 1])
        values = silhouette_samples(data, labels)
        # First point: a = 0.2, b = mean(1.0, 1.2) = 1.1.
        assert values[0] == pytest.approx((1.1 - 0.2) / 1.1)
        # Second point: a = 0.2, b = mean(0.8, 1.0) = 0.9.
        assert values[1] == pytest.approx((0.9 - 0.2) / 0.9)

    def test_singleton_cluster_scores_zero(self):
        data = np.array([[0.0], [0.1], [5.0]])
        labels = np.array([0, 0, 1])
        values = silhouette_samples(data, labels)
        assert values[2] == 0.0

    def test_single_cluster_rejected(self):
        with pytest.raises(ValueError, match="two clusters"):
            silhouette_samples(np.zeros((3, 2)), np.zeros(3, dtype=int))

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError):
            silhouette_samples(np.zeros((3, 2)), np.zeros(2, dtype=int))

    def test_cosine_metric(self, rng):
        directions = np.vstack(
            [
                rng.normal(0, 0.01, size=(10, 2)) + [1.0, 0.0],
                rng.normal(0, 0.01, size=(10, 2)) + [0.0, 1.0],
            ]
        )
        labels = np.array([0] * 10 + [1] * 10)
        score = silhouette_samples(directions, labels, metric="cosine").mean()
        assert score > 0.8

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            silhouette_samples(np.zeros((4, 2)), np.array([0, 0, 1, 1]), metric="manhattan")

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5000))
    def test_property_values_bounded(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(30, 3))
        labels = rng.integers(0, 3, size=30)
        if len(np.unique(labels)) < 2:
            return
        values = silhouette_samples(data, labels)
        assert np.all(values >= -1.0 - 1e-9)
        assert np.all(values <= 1.0 + 1e-9)


class TestSilhouetteScore:
    def test_matches_sample_mean(self, rng):
        data = rng.normal(size=(40, 2))
        labels = rng.integers(0, 3, size=40)
        full = silhouette_score(data, labels)
        assert full == pytest.approx(silhouette_samples(data, labels).mean())

    def test_sampled_score_close_to_full(self, rng):
        data = np.vstack(
            [rng.normal(0, 0.1, size=(200, 2)), rng.normal(5, 0.1, size=(200, 2))]
        )
        labels = np.array([0] * 200 + [1] * 200)
        full = silhouette_score(data, labels)
        sampled = silhouette_score(data, labels, sample_size=100, seed=0)
        assert sampled == pytest.approx(full, abs=0.05)

    def test_sample_size_too_small_rejected(self, rng):
        data = rng.normal(size=(50, 2))
        labels = rng.integers(0, 2, size=50)
        with pytest.raises(ValueError):
            silhouette_score(data, labels, sample_size=1)

    def test_better_clustering_scores_higher(self, rng):
        data = np.vstack(
            [rng.normal(0, 0.2, size=(30, 2)), rng.normal(4, 0.2, size=(30, 2))]
        )
        good = np.array([0] * 30 + [1] * 30)
        bad = np.tile([0, 1], 30)
        assert silhouette_score(data, good) > silhouette_score(data, bad) + 0.5
