"""End-to-end integration tests: the paper's pipeline on a small universe.

These tests tie the whole library together: simulate -> corpus -> models ->
perplexity ranking -> recommendation -> sales tool, asserting the *shape*
of the paper's headline results on a reduced corpus.
"""

import numpy as np
import pytest

from repro.data import Corpus, InstallBaseSimulator, InternalSalesDatabase, SimulatorConfig
from repro.app import SalesRecommendationTool
from repro.models import (
    ConditionalHeavyHitters,
    LatentDirichletAllocation,
    LSTMModel,
    NGramModel,
    UnigramModel,
)
from repro.recommend import RecommendationEvaluator, SlidingWindowSpec


@pytest.fixture(scope="module")
def pipeline():
    """A mid-sized universe with the standard split."""
    simulator = InstallBaseSimulator(SimulatorConfig(n_companies=700))
    universe = simulator.generate(seed=7)
    corpus = Corpus(universe.companies, simulator.catalog.categories)
    split = corpus.split((0.7, 0.1, 0.2), seed=1)
    return universe, corpus, split


class TestTable1Ordering:
    """The paper's headline: LDA < LSTM < n-gram < unigram in perplexity."""

    @pytest.fixture(scope="class")
    def perplexities(self, pipeline):
        __, __, split = pipeline
        results = {}
        results["unigram"] = UnigramModel().fit(split.train).perplexity(split.test)
        results["ngram"] = min(
            NGramModel(order=2).fit(split.train).perplexity(split.test),
            NGramModel(order=3).fit(split.train).perplexity(split.test),
        )
        results["lda"] = (
            LatentDirichletAllocation(
                n_topics=4, inference="variational", n_iter=100, seed=0
            )
            .fit(split.train)
            .perplexity(split.test)
        )
        results["lstm"] = (
            LSTMModel(
                hidden=300, n_layers=1, n_epochs=14,
                validation=split.validation, seed=0,
            )
            .fit(split.train)
            .perplexity(split.test)
        )
        return results

    def test_lda_is_best(self, perplexities):
        assert perplexities["lda"] == min(perplexities.values())

    def test_unigram_is_worst(self, perplexities):
        assert perplexities["unigram"] == max(perplexities.values())

    def test_lstm_beats_ngram(self, perplexities):
        assert perplexities["lstm"] < perplexities["ngram"]

    def test_magnitudes_reasonable(self, perplexities):
        # All models must beat the uniform distribution over 38 products
        # and stay above 1.
        for value in perplexities.values():
            assert 1.0 < value < 38.0


class TestRecommendationShape:
    """Figure 3/4 shape: LDA recall tops CHH and both beat random."""

    @pytest.fixture(scope="class")
    def curves(self, pipeline):
        __, corpus, __ = pipeline
        evaluator = RecommendationEvaluator(
            corpus,
            spec=SlidingWindowSpec(n_windows=4),
            thresholds=[0.05, 0.1],
            retrain_per_window=False,
        )
        return evaluator.evaluate(
            {
                "lda": lambda: LatentDirichletAllocation(
                    n_topics=3, inference="variational", n_iter=80, seed=0
                ),
                "chh": lambda: ConditionalHeavyHitters(depth=2),
            }
        )

    def test_lda_recall_leads_at_main_threshold(self, curves):
        assert curves["lda"].recall(0.05)[0] >= curves["chh"].recall(0.05)[0] - 0.05

    def test_chh_over_retrieves(self, curves):
        # CHH produces more false positives at the operating threshold.
        lda_precision = curves["lda"].precision(0.1)[0]
        chh_precision = curves["chh"].precision(0.1)[0]
        assert lda_precision > chh_precision

    def test_accuracy_in_papers_band(self, curves):
        # The paper reports precision/recall around 0.25-0.43 in the
        # operating region; on the synthetic corpus we only require
        # non-trivial accuracy, far above the 1/38 random base rate.
        recall = curves["lda"].recall(0.1)[0]
        precision = curves["lda"].precision(0.1)[0]
        assert recall > 0.15
        assert precision > 0.1


class TestSalesPipeline:
    def test_full_tool_workflow(self, pipeline):
        __, corpus, __ = pipeline
        lda = LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=60, seed=0
        ).fit(corpus)
        internal = InternalSalesDatabase(corpus.companies, seed=0)
        tool = SalesRecommendationTool(
            corpus, lda.company_features(corpus), internal
        )
        target = corpus.companies[10]
        similar = tool.similar_companies(target.duns.value, k=25)
        assert len(similar) == 25
        recommendations = tool.recommend_products(
            target.duns.value, k_neighbors=25, top_n=5
        )
        assert recommendations
        for rec in recommendations:
            assert rec.category not in target.categories
            assert 0.0 < rec.strength <= 1.0


class TestClusteringShape:
    def test_lda_features_cluster_better_than_raw(self, pipeline):
        # Figure 7's core claim on a reduced grid.
        from repro.analysis.kmeans import KMeans
        from repro.analysis.silhouette import silhouette_score

        __, corpus, __ = pipeline
        lda = LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=60, seed=0
        ).fit(corpus)
        theta = lda.company_features(corpus)
        raw = corpus.binary_matrix()
        scores = {}
        for name, features in (("lda", theta), ("raw", raw)):
            labels = KMeans(10, seed=0).fit_predict(features)
            scores[name] = silhouette_score(features, labels, seed=0)
        assert scores["lda"] > scores["raw"]
