"""Unit tests for the request-scoped telemetry core (`repro.obs`).

Covers trace-buffer capture isolation, request contexts, labelled
metrics (cardinality cap, reservoir sampling, exemplars), Prometheus
text/OpenMetrics rendering and the strict parser, multi-window SLO burn
rates under a fake clock, the flight recorder, the sampling profiler,
request-id stamping of JSON log lines, and the `obs top` dashboard
renderer.
"""

from __future__ import annotations

import io
import json
import logging
import math
import threading
import time

import pytest

from repro.obs import context as obs_context
from repro.obs import prom, trace
from repro.obs.flight import FlightRecorder
from repro.obs.logging import JsonLinesFormatter, _json_safe
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    OVERFLOW_LABEL_VALUE,
    Histogram,
    MetricsRegistry,
    series_key,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.slo import Objective, SLOMonitor, WindowCounts
from repro.obs.top import parse_series_key, render_dashboard, run_top, sum_counters


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Trace capture / request context
# ----------------------------------------------------------------------
class TestTraceCapture:
    def teardown_method(self) -> None:
        trace.disable()
        trace.reset()

    def test_capture_records_even_when_tracing_disabled(self):
        trace.disable()
        with trace.capture() as buffer:
            with trace.span("req"):
                with trace.span("child"):
                    pass
        assert [root.name for root in buffer.roots] == ["req"]
        assert [c.name for c in buffer.roots[0].children] == ["child"]

    def test_capture_does_not_leak_into_global_roots(self):
        trace.enable()
        with trace.capture():
            with trace.span("inside"):
                pass
        assert all(root.name != "inside" for root in trace.roots())

    def test_counters_recorded_into_captured_span(self):
        with trace.capture() as buffer:
            with trace.span("req"):
                trace.add_counter("scored", 3)
        assert buffer.roots[0].counters["scored"] == 3

    def test_nested_captures_are_independent(self):
        with trace.capture() as outer:
            with trace.span("outer-span"):
                pass
            with trace.capture() as inner:
                with trace.span("inner-span"):
                    pass
        assert [r.name for r in outer.roots] == ["outer-span"]
        assert [r.name for r in inner.roots] == ["inner-span"]

    def test_threads_capture_into_their_own_buffers(self):
        trace.disable()
        seen: dict[int, list[str]] = {}

        def work(i: int) -> None:
            with trace.capture() as buffer:
                with trace.span(f"req-{i}"):
                    time.sleep(0.001)
                seen[i] = [r.name for r in buffer.roots]

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(8):
            assert seen[i] == [f"req-{i}"]


class TestRequestContext:
    def test_scope_mints_ids_and_clears(self):
        assert obs_context.current() is None
        with obs_context.request_scope() as ctx:
            assert obs_context.current() is ctx
            assert obs_context.current_request_id() == ctx.request_id
            assert len(ctx.trace_id) == 32
        assert obs_context.current() is None

    def test_scope_honors_supplied_id_and_captures_spans(self):
        with obs_context.request_scope("abc-123") as ctx:
            with trace.span("work"):
                pass
        assert ctx.request_id == "abc-123"
        spans = ctx.spans()
        assert [s["name"] for s in spans] == ["work"]

    def test_capture_spans_off_yields_ids_only(self):
        with obs_context.request_scope(capture_spans=False) as ctx:
            with trace.span("work"):
                pass
        assert ctx.spans() == []
        assert ctx.request_id

    def test_sanitize_rejects_junk(self):
        assert obs_context.sanitize_request_id("ok-id_1.2:3") == "ok-id_1.2:3"
        assert obs_context.sanitize_request_id("bad id\n") is None
        assert obs_context.sanitize_request_id("") is None
        assert obs_context.sanitize_request_id(None) is None
        assert obs_context.sanitize_request_id("x" * 200) is None


# ----------------------------------------------------------------------
# Labelled metrics
# ----------------------------------------------------------------------
class TestLabelledMetrics:
    def test_series_key_sorts_labels(self):
        assert (
            series_key("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'
        )
        assert series_key("m") == "m"

    def test_labelled_counters_are_independent_series(self):
        registry = MetricsRegistry()
        registry.counter("req", {"endpoint": "/a"}).inc()
        registry.counter("req", {"endpoint": "/b"}).inc(2)
        snap = registry.snapshot()["counters"]
        assert snap['req{endpoint="/a"}'] == 1
        assert snap['req{endpoint="/b"}'] == 2

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", {"x": "1"})
        with pytest.raises(TypeError):
            registry.gauge("m", {"x": "2"})

    def test_cardinality_cap_folds_into_overflow(self):
        registry = MetricsRegistry(max_series_per_family=4)
        for i in range(10):
            registry.counter("req", {"user": str(i)}).inc()
        snap = registry.snapshot()["counters"]
        overflow_key = series_key("req", {"user": OVERFLOW_LABEL_VALUE})
        assert overflow_key in snap
        assert snap[overflow_key] >= 6
        assert registry.overflowed_series >= 6
        # Total is conserved across real + overflow series.
        assert sum(v for k, v in snap.items() if k.startswith("req{")) == 10

    def test_histogram_reservoir_is_bounded_with_exact_count_sum(self):
        h = Histogram()
        n = 10_000
        for i in range(n):
            h.observe(float(i))
        assert h.count == n
        assert h.total == pytest.approx(sum(range(n)))
        assert len(h._sample) <= 4096
        # Quantiles stay sane estimates despite sampling.
        assert 0.35 * n < h.quantile(0.5) < 0.65 * n

    def test_histogram_buckets_and_exemplars(self):
        h = Histogram(buckets=(10.0, 100.0))
        h.observe(5.0, exemplar={"request_id": "fast"})
        h.observe(50.0, exemplar={"request_id": "mid"})
        h.observe(500.0, exemplar={"request_id": "slow"})
        assert h.cumulative_buckets() == [(10.0, 1), (100.0, 2), (float("inf"), 3)]
        by_le = {le: ex.labels["request_id"] for le, ex in h.exemplars()}
        assert by_le == {10.0: "fast", 100.0: "mid", float("inf"): "slow"}

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.counter("c", {"t": "x"}).inc()
                registry.histogram("h", {"t": "x"}).observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = registry.snapshot()
        assert snap["counters"]['c{t="x"}'] == 8000
        assert snap["histograms"]['h{t="x"}']["count"] == 8000


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPromExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests", {"endpoint": "/r", "outcome": "ok"}).inc(3)
        registry.gauge("serve.inflight", {"endpoint": "/r"}).set(2)
        h = registry.histogram(
            "serve.latency.ms", {"endpoint": "/r"}, buckets=DEFAULT_LATENCY_BUCKETS_MS
        )
        h.observe(3.0, exemplar={"request_id": "rid1"})
        h.observe(700.0, exemplar={"request_id": "rid2"})
        return registry

    def test_text_format_round_trips_strict_parser(self):
        text = prom.render(self._registry())
        parsed = prom.parse(text)
        families = parsed["families"]
        assert families["serve_requests"]["type"] == "counter"
        assert families["serve_inflight"]["type"] == "gauge"
        assert families["serve_latency_ms"]["type"] == "histogram"
        sample = families["serve_requests"]["samples"][0]
        assert sample["labels"] == {"endpoint": "/r", "outcome": "ok"}
        assert sample["value"] == 3.0

    def test_openmetrics_carries_exemplars_and_eof(self):
        text = prom.render(self._registry(), openmetrics=True)
        assert text.rstrip().endswith("# EOF")
        exemplar_lines = [l for l in text.splitlines() if " # {" in l]
        assert any('request_id="rid1"' in l for l in exemplar_lines)
        prom.parse(text)  # strict parse accepts OpenMetrics output too

    def test_histogram_counts_are_cumulative_and_consistent(self):
        text = prom.render(self._registry())
        parsed = prom.parse(text)
        buckets = [
            s
            for s in parsed["families"]["serve_latency_ms"]["samples"]
            if s["name"].endswith("_bucket")
        ]
        counts = [b["value"] for b in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == 2.0

    def test_unlabeled_family_fails_required_prefix(self):
        registry = MetricsRegistry()
        registry.counter("serve.naked").inc()
        text = prom.render(registry)
        with pytest.raises(prom.ParseError):
            prom.parse(text, require_labels_prefix="serve_")
        # Non-matching prefixes are unaffected.
        prom.parse(text, require_labels_prefix="other_")

    def test_parse_rejects_garbage(self):
        with pytest.raises(prom.ParseError):
            prom.parse("metric_without_value\n")
        with pytest.raises(prom.ParseError):
            prom.parse('# TYPE m counter\nm 1\nm 2\n')  # duplicate series


# ----------------------------------------------------------------------
# SLO burn rates
# ----------------------------------------------------------------------
class TestSLO:
    def test_window_counts_expire_old_buckets(self):
        clock = FakeClock()
        window = WindowCounts(60.0, n_buckets=6, clock=clock)
        window.record(True)
        window.record(False)
        assert window.totals() == (1, 1)
        clock.advance(120.0)
        assert window.totals() == (0, 0)

    def test_burn_rate_math(self):
        clock = FakeClock()
        monitor = SLOMonitor(
            [Objective("avail", 0.99)],
            fast_window_s=10.0,
            slow_window_s=100.0,
            clock=clock,
        )
        for _ in range(90):
            monitor.record({"avail": True})
        for _ in range(10):
            monitor.record({"avail": False})
        report = monitor.evaluate()
        entry = report["objectives"]["avail"]
        # 10% bad over a 1% budget -> burn rate 10 in both windows.
        assert entry["fast"]["burn_rate"] == pytest.approx(10.0, rel=1e-3)
        assert entry["slow"]["burn_rate"] == pytest.approx(10.0, rel=1e-3)

    def test_alert_requires_both_windows(self):
        clock = FakeClock()
        monitor = SLOMonitor(
            [Objective("avail", 0.99)],
            fast_window_s=10.0,
            slow_window_s=1000.0,
            burn_threshold=14.4,
            clock=clock,
        )
        # Long good history dilutes the slow window.
        for _ in range(2000):
            monitor.record({"avail": True})
            clock.advance(0.4)
        # A short burst of pure failure maxes the fast window first.
        for _ in range(50):
            monitor.record({"avail": False})
            clock.advance(0.1)
        report = monitor.evaluate()
        entry = report["objectives"]["avail"]
        assert entry["fast"]["burn_rate"] >= 14.4
        assert entry["slow"]["burn_rate"] < 14.4
        assert not entry["alerting"]
        # Sustained failure eventually trips the slow window too.
        for _ in range(5000):
            monitor.record({"avail": False})
            clock.advance(0.1)
        assert monitor.alerting() == ["avail"]

    def test_unknown_objective_raises(self):
        monitor = SLOMonitor([Objective("a", 0.9)])
        with pytest.raises(KeyError):
            monitor.record({"nope": True})


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def _record(self, recorder, rid, latency, failed=False):
        return recorder.record(
            request_id=rid,
            endpoint="/recommend",
            status=500 if failed else 200,
            latency_ms=latency,
            failed=failed,
            spans=[{"name": "serve.request"}],
        )

    def test_keeps_slowest_successes(self):
        recorder = FlightRecorder(capacity=3)
        for i, latency in enumerate([10, 20, 30, 5, 40]):
            self._record(recorder, f"r{i}", latency)
        kept = {r["request_id"] for r in recorder.records(section="slow")}
        assert kept == {"r1", "r2", "r4"}
        assert recorder.lookup("r3") is None

    def test_failed_ring_is_separate_and_bounded(self):
        recorder = FlightRecorder(capacity=2)
        for i in range(4):
            self._record(recorder, f"f{i}", 1.0, failed=True)
        failed = recorder.records(section="failed")
        assert {r["request_id"] for r in failed} == {"f2", "f3"}
        assert recorder.stats()["failed_kept"] == 2

    def test_lookup_and_jsonl_round_trip(self):
        recorder = FlightRecorder(capacity=4)
        self._record(recorder, "target", 99.0)
        record = recorder.lookup("target")
        assert record is not None and record["latency_ms"] == 99.0
        lines = recorder.dump_jsonl().strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["request_id"] == "target"
        assert parsed[0]["spans"] == [{"name": "serve.request"}]


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------
class TestSamplingProfiler:
    def test_captures_other_threads_stacks(self):
        stop = threading.Event()

        def spin():
            while not stop.is_set():
                math.sqrt(123.0)

        thread = threading.Thread(target=spin, name="spinner")
        thread.start()
        try:
            report = SamplingProfiler(interval_s=0.002).run_for(0.1)
        finally:
            stop.set()
            thread.join()
        assert report["samples"] > 5
        locations = " ".join(f["location"] for f in report["functions"])
        assert "spin" in locations

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0)
        with pytest.raises(ValueError):
            SamplingProfiler().run_for(0)


# ----------------------------------------------------------------------
# Logging: request stamping + JSON safety
# ----------------------------------------------------------------------
class TestJsonLogging:
    def _emit(self, message, obs_extra=None):
        logger = logging.getLogger("repro.test.telemetry")
        logger.setLevel(logging.INFO)
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonLinesFormatter())
        logger.addHandler(handler)
        try:
            logger.info(message, extra={"obs": obs_extra or {}})
        finally:
            logger.removeHandler(handler)
        return json.loads(stream.getvalue())

    def test_stamps_request_and_trace_ids_inside_scope(self):
        with obs_context.request_scope("req-77") as ctx:
            line = self._emit("hello")
        assert line["request_id"] == "req-77"
        assert line["trace_id"] == ctx.trace_id

    def test_no_ids_outside_scope(self):
        line = self._emit("hello")
        assert "request_id" not in line

    def test_non_serializable_and_nan_values_are_coerced(self):
        line = self._emit(
            "weird",
            {"nan": float("nan"), "inf": float("inf"), "obj": object(), "ok": 1},
        )
        assert line["nan"] == "NaN"
        assert line["inf"] == "Infinity"
        assert "object object" in line["obj"]
        assert line["ok"] == 1

    def test_json_safe_handles_nested_containers(self):
        safe = _json_safe({"a": [float("nan"), {"b": object()}], 1: "x"})
        json.dumps(safe, allow_nan=False)
        assert safe["1"] == "x"


# ----------------------------------------------------------------------
# obs top dashboard
# ----------------------------------------------------------------------
class TestObsTop:
    def _metrics(self, total):
        return {
            "counters": {
                f'serve.requests{{endpoint="/recommend",outcome="ok"}}': total,
                'serve.tier.answers{tier="lda"}': 9.0,
                'serve.tier.answers{tier="popularity"}': 1.0,
            },
            "gauges": {'serve.inflight{endpoint="/recommend"}': 2.0},
            "histograms": {
                'serve.latency.ms{endpoint="/recommend"}': {
                    "count": total,
                    "p50": 4.0,
                    "p90": 9.0,
                    "p99": 20.0,
                }
            },
            "breakers": {"lda": {"state": "closed"}},
            "flight": {"failed_kept": 1, "slow_kept": 3, "offered": 10},
        }

    def test_parse_series_key(self):
        name, labels = parse_series_key('m{a="1",b="x y"}')
        assert name == "m" and labels == {"a": "1", "b": "x y"}
        assert parse_series_key("bare") == ("bare", {})

    def test_sum_counters_filters_by_labels(self):
        counters = self._metrics(10.0)["counters"]
        assert sum_counters(counters, "serve.tier.answers") == 10.0
        assert sum_counters(counters, "serve.tier.answers", tier="lda") == 9.0

    def test_render_dashboard_shows_rates_and_tiers(self):
        slo = {
            "objectives": {
                "availability": {
                    "target": 0.999,
                    "alerting": True,
                    "fast": {"burn_rate": 20.0},
                    "slow": {"burn_rate": 15.0},
                }
            }
        }
        frame = render_dashboard(
            self._metrics(30.0), self._metrics(10.0), 2.0, slo=slo, source="x"
        )
        assert "/recommend" in frame
        assert "10.0" in frame  # (30-10)/2 rps
        assert "lda 90%" in frame
        assert "ALERT" in frame
        assert "failed 1" in frame

    def test_run_top_polls_fetcher(self):
        frames = []

        def fetch(url, timeout):
            if url.endswith("/slo"):
                return {"objectives": {}}
            frames.append(url)
            return self._metrics(float(len(frames)))

        out = io.StringIO()
        code = run_top(
            "http://x",
            interval=0.0,
            count=3,
            clear=False,
            out=out,
            fetch=fetch,
            sleep=lambda s: None,
        )
        assert code == 0
        assert len(frames) == 3
        assert out.getvalue().count("repro obs top") == 3

    def test_run_top_reports_fetch_failure(self):
        def fetch(url, timeout):
            raise OSError("connection refused")

        out = io.StringIO()
        assert run_top("http://x", count=1, out=out, fetch=fetch) == 1
        assert "cannot fetch" in out.getvalue()
