"""Failure-injection tests: corrupt inputs and degenerate corpora.

Production feeds are messy; the library must fail loudly on corruption and
behave sensibly on degenerate-but-legal data.
"""

import datetime as dt

import numpy as np
import pytest

from repro.data.company import Company
from repro.data.corpus import Corpus
from repro.data.duns import DunsNumber
from repro.models.base import NotFittedError
from repro.models.chh import ConditionalHeavyHitters
from repro.models.lda import LatentDirichletAllocation
from repro.models.lstm import LSTMModel
from repro.models.ngram import NGramModel
from repro.models.unigram import UnigramModel
from repro.recommend.evaluation import RecommendationEvaluator
from repro.recommend.windows import SlidingWindowSpec

VOCAB = ("a", "b", "c", "d")


def _company(i, tokens, year=2000):
    return Company(
        duns=DunsNumber.from_sequence(i),
        name=f"C{i}",
        country="US",
        sic2=80,
        first_seen={VOCAB[t]: dt.date(year, 1 + t, 1) for t in tokens},
    )


class TestCorruptModelFiles:
    def test_truncated_file_rejected(self, split, tmp_path):
        model = UnigramModel().fit(split.train)
        path = tmp_path / "model.npz"
        model.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            UnigramModel.load(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"definitely not a numpy archive")
        with pytest.raises(Exception):
            UnigramModel.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            UnigramModel.load(tmp_path / "nope.npz")


class TestDegenerateCorpora:
    def test_identical_companies(self):
        corpus = Corpus([_company(i, [0, 1]) for i in range(12)], VOCAB)
        lda = LatentDirichletAllocation(
            n_topics=2, inference="variational", n_iter=15, seed=0
        ).fit(corpus)
        assert np.isfinite(lda.perplexity(corpus))
        # The predictive mass must concentrate on the two owned products.
        proba = lda.next_product_proba([0])
        assert proba[0] + proba[1] > 0.9

    def test_single_product_companies(self):
        corpus = Corpus([_company(i, [i % 4]) for i in range(8)], VOCAB)
        for model in (
            UnigramModel(),
            NGramModel(order=2),
            ConditionalHeavyHitters(depth=2),
        ):
            model.fit(corpus)
            assert np.isfinite(model.perplexity(corpus))

    def test_single_company_corpus(self):
        corpus = Corpus([_company(0, [0, 1, 2])], VOCAB)
        model = NGramModel(order=2).fit(corpus)
        assert np.isfinite(model.log_prob(corpus))

    def test_lstm_on_tiny_corpus(self):
        corpus = Corpus([_company(i, [0, 1, 2]) for i in range(6)], VOCAB)
        model = LSTMModel(
            hidden=4, n_epochs=1, batch_size=2, num_steps=3, seed=0
        ).fit(corpus)
        assert np.isfinite(model.perplexity(corpus))

    def test_lstm_rejects_stream_shorter_than_batch(self):
        corpus = Corpus([_company(0, [0])], VOCAB)
        with pytest.raises(ValueError, match="too short"):
            LSTMModel(hidden=4, n_epochs=1, batch_size=64, seed=0).fit(corpus)


class TestEvaluatorEdgeCases:
    def test_no_history_before_windows(self):
        # Every product appears after the only window's start: the harness
        # must fail loudly instead of returning silently empty curves.
        corpus = Corpus([_company(i, [0, 1], year=2015) for i in range(5)], VOCAB)
        evaluator = RecommendationEvaluator(
            corpus,
            spec=SlidingWindowSpec(n_windows=1),
            thresholds=[0.1],
            retrain_per_window=False,
        )
        with pytest.raises(ValueError, match="no sliding window"):
            evaluator.evaluate({"u": lambda: UnigramModel()})

    def test_no_ground_truth_is_fine(self):
        # History exists but nothing new appears inside the window: recall
        # is zero-relevant, precision NaN-safe.
        corpus = Corpus([_company(i, [0, 1], year=1999) for i in range(5)], VOCAB)
        evaluator = RecommendationEvaluator(
            corpus,
            spec=SlidingWindowSpec(n_windows=1),
            thresholds=[0.0],
            retrain_per_window=False,
        )
        curves = evaluator.evaluate({"u": lambda: UnigramModel()})
        assert curves["u"].recall(0.0)[0] == 0.0


class TestNotFittedEverywhere:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: UnigramModel(),
            lambda: NGramModel(order=2),
            lambda: ConditionalHeavyHitters(),
            lambda: LSTMModel(hidden=4),
            lambda: LatentDirichletAllocation(n_topics=2),
        ],
    )
    def test_perplexity_requires_fit(self, factory, corpus):
        with pytest.raises(NotFittedError):
            factory().perplexity(corpus)
