"""Failure-injection tests: corrupt inputs, degenerate corpora, and the
deterministic fault injectors exercising the fault-tolerance layer.

Production feeds are messy; the library must fail loudly on corruption and
behave sensibly on degenerate-but-legal data.  Production *sweeps* die in
messier ways — worker raises, worker deaths, hangs, kills mid-run — and
the second half of this module injects each of those with fixed seeds and
asserts the sweep degrades or resumes exactly as documented.
"""

import datetime as dt
import math

import numpy as np
import pytest

from repro import obs
from repro.data.company import Company
from repro.data.corpus import Corpus
from repro.data.duns import DunsNumber
from repro.experiments import make_experiment_data, run_perplexity_table
from repro.models.base import NotFittedError
from repro.models.chh import ConditionalHeavyHitters
from repro.models.lda import LatentDirichletAllocation
from repro.models.lstm import LSTMModel
from repro.models.ngram import NGramModel
from repro.models.unigram import UnigramModel
from repro.obs import metrics
from repro.recommend.evaluation import RecommendationEvaluator
from repro.recommend.windows import SlidingWindowSpec
from repro.runtime import Ok, ParallelMap, RunJournal, TaskError, faults

VOCAB = ("a", "b", "c", "d")


def _company(i, tokens, year=2000):
    return Company(
        duns=DunsNumber.from_sequence(i),
        name=f"C{i}",
        country="US",
        sic2=80,
        first_seen={VOCAB[t]: dt.date(year, 1 + t, 1) for t in tokens},
    )


class TestCorruptModelFiles:
    def test_truncated_file_rejected(self, split, tmp_path):
        model = UnigramModel().fit(split.train)
        path = tmp_path / "model.npz"
        model.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            UnigramModel.load(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"definitely not a numpy archive")
        with pytest.raises(Exception):
            UnigramModel.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            UnigramModel.load(tmp_path / "nope.npz")


class TestDegenerateCorpora:
    def test_identical_companies(self):
        corpus = Corpus([_company(i, [0, 1]) for i in range(12)], VOCAB)
        lda = LatentDirichletAllocation(
            n_topics=2, inference="variational", n_iter=15, seed=0
        ).fit(corpus)
        assert np.isfinite(lda.perplexity(corpus))
        # The predictive mass must concentrate on the two owned products.
        proba = lda.next_product_proba([0])
        assert proba[0] + proba[1] > 0.9

    def test_single_product_companies(self):
        corpus = Corpus([_company(i, [i % 4]) for i in range(8)], VOCAB)
        for model in (
            UnigramModel(),
            NGramModel(order=2),
            ConditionalHeavyHitters(depth=2),
        ):
            model.fit(corpus)
            assert np.isfinite(model.perplexity(corpus))

    def test_single_company_corpus(self):
        corpus = Corpus([_company(0, [0, 1, 2])], VOCAB)
        model = NGramModel(order=2).fit(corpus)
        assert np.isfinite(model.log_prob(corpus))

    def test_lstm_on_tiny_corpus(self):
        corpus = Corpus([_company(i, [0, 1, 2]) for i in range(6)], VOCAB)
        model = LSTMModel(
            hidden=4, n_epochs=1, batch_size=2, num_steps=3, seed=0
        ).fit(corpus)
        assert np.isfinite(model.perplexity(corpus))

    def test_lstm_rejects_stream_shorter_than_batch(self):
        corpus = Corpus([_company(0, [0])], VOCAB)
        with pytest.raises(ValueError, match="too short"):
            LSTMModel(hidden=4, n_epochs=1, batch_size=64, seed=0).fit(corpus)


class TestEvaluatorEdgeCases:
    def test_no_history_before_windows(self):
        # Every product appears after the only window's start: the harness
        # must fail loudly instead of returning silently empty curves.
        corpus = Corpus([_company(i, [0, 1], year=2015) for i in range(5)], VOCAB)
        evaluator = RecommendationEvaluator(
            corpus,
            spec=SlidingWindowSpec(n_windows=1),
            thresholds=[0.1],
            retrain_per_window=False,
        )
        with pytest.raises(ValueError, match="no sliding window"):
            evaluator.evaluate({"u": lambda: UnigramModel()})

    def test_no_ground_truth_is_fine(self):
        # History exists but nothing new appears inside the window: recall
        # is zero-relevant, precision NaN-safe.
        corpus = Corpus([_company(i, [0, 1], year=1999) for i in range(5)], VOCAB)
        evaluator = RecommendationEvaluator(
            corpus,
            spec=SlidingWindowSpec(n_windows=1),
            thresholds=[0.0],
            retrain_per_window=False,
        )
        curves = evaluator.evaluate({"u": lambda: UnigramModel()})
        assert curves["u"].recall(0.0)[0] == 0.0


class TestNotFittedEverywhere:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: UnigramModel(),
            lambda: NGramModel(order=2),
            lambda: ConditionalHeavyHitters(),
            lambda: LSTMModel(hidden=4),
            lambda: LatentDirichletAllocation(n_topics=2),
        ],
    )
    def test_perplexity_requires_fit(self, factory, corpus):
        with pytest.raises(NotFittedError):
            factory().perplexity(corpus)


# ---------------------------------------------------------------------------
# Deterministic fault injection (repro.runtime.faults)
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset_all()
    yield
    obs.disable_all()
    obs.reset_all()


@pytest.fixture
def fault_state(tmp_path, monkeypatch):
    """Route times=N firing markers to a per-test directory."""
    state = tmp_path / "fault-state"
    monkeypatch.setenv("REPRO_FAULTS_STATE", str(state))
    return state


def _faulted_task(payload):
    """Pool task that passes its site through the fault injectors."""
    faults.inject(payload["site"])
    return payload["value"]


class TestFaultSpecParsing:
    def test_basic_spec(self):
        (spec,) = faults.parse_faults("crash:table1/s:lda")
        assert spec.mode == "crash"
        assert spec.match == "table1/s:lda"
        assert spec.times is None

    def test_options_and_multiple_specs(self):
        one, two = faults.parse_faults(
            "segfault:fig1:times=2, hang:recommend:seconds=1.5;times=1"
        )
        assert (one.mode, one.match, one.times) == ("segfault", "fig1", 2)
        assert (two.mode, two.times, two.seconds) == ("hang", 1, 1.5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            faults.parse_faults("explode:everywhere")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown fault option"):
            faults.parse_faults("crash:x:bogus=1")

    def test_mode_without_match_rejected(self):
        with pytest.raises(ValueError, match="needs mode:match"):
            faults.parse_faults("crash")

    def test_empty_spec_text_is_no_faults(self):
        assert faults.parse_faults("") == ()
        assert faults.parse_faults(" , ") == ()


class TestInjectors:
    def test_crash_fires_at_matching_site(self, monkeypatch, fault_state):
        monkeypatch.setenv("REPRO_FAULTS", "crash:victim")
        with pytest.raises(faults.InjectedFault):
            faults.inject("sweep/victim/i:0")

    def test_non_matching_site_untouched(self, monkeypatch, fault_state):
        monkeypatch.setenv("REPRO_FAULTS", "crash:victim")
        faults.inject("sweep/innocent/i:0")

    def test_unset_env_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        faults.inject("anything")

    def test_times_limits_firings(self, monkeypatch, fault_state):
        monkeypatch.setenv("REPRO_FAULTS", "crash:victim:times=1")
        with pytest.raises(faults.InjectedFault):
            faults.inject("victim")
        faults.inject("victim")  # the single firing is spent

    def test_corrupt_garbles_matching_artifact(
        self, monkeypatch, fault_state, tmp_path
    ):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt:cache/deadbeef")
        artifact = tmp_path / "entry.npz"
        artifact.write_bytes(b"pristine bytes, definitely a model")
        faults.corrupt_artifact(artifact, "cache/deadbeef")
        assert b"CORRUPTED-BY-FAULT-INJECTION" in artifact.read_bytes()

    def test_corrupt_ignores_other_sites(self, monkeypatch, fault_state, tmp_path):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt:cache/deadbeef")
        artifact = tmp_path / "entry.npz"
        artifact.write_bytes(b"pristine")
        faults.corrupt_artifact(artifact, "cache/other")
        assert artifact.read_bytes() == b"pristine"

    def test_crash_mode_skips_corrupt_hook(self, monkeypatch, fault_state, tmp_path):
        monkeypatch.setenv("REPRO_FAULTS", "crash:cache")
        artifact = tmp_path / "entry.npz"
        artifact.write_bytes(b"pristine")
        faults.corrupt_artifact(artifact, "cache/deadbeef")
        assert artifact.read_bytes() == b"pristine"


class TestInjectedPoolFailures:
    def _payloads(self, sites):
        return [{"site": site, "value": i} for i, site in enumerate(sites)]

    def test_worker_raise_degrades_one_cell(self, monkeypatch, fault_state):
        monkeypatch.setenv("REPRO_FAULTS", "crash:victim")
        payloads = self._payloads(["cell-0", "victim-1", "cell-2", "cell-3"])
        outcomes = ParallelMap(2).map_outcomes(_faulted_task, payloads)
        assert [type(o) for o in outcomes] == [Ok, TaskError, Ok, Ok]
        assert outcomes[1].error_type == "InjectedFault"
        assert [o.value for o in outcomes if isinstance(o, Ok)] == [0, 2, 3]

    def test_worker_segfault_recovers_with_retry(self, monkeypatch, fault_state):
        monkeypatch.setenv("REPRO_FAULTS", "segfault:seg:times=1")
        payloads = self._payloads(["seg-0", "cell-1", "cell-2", "cell-3"])
        outcomes = ParallelMap(2, retries=1).map_outcomes(_faulted_task, payloads)
        assert all(isinstance(o, Ok) for o in outcomes)
        assert [o.value for o in outcomes] == [0, 1, 2, 3]

    def test_persistent_segfault_degrades_without_losing_siblings(
        self, monkeypatch, fault_state
    ):
        monkeypatch.setenv("REPRO_FAULTS", "segfault:seg")
        payloads = self._payloads(["seg-0", "cell-1", "cell-2"])
        outcomes = ParallelMap(2, retries=1).map_outcomes(_faulted_task, payloads)
        assert isinstance(outcomes[0], TaskError)
        assert [o.value for o in outcomes[1:]] == [1, 2]

    def test_hung_task_reaped_by_timeout(self, monkeypatch, fault_state):
        monkeypatch.setenv("REPRO_FAULTS", "hang:slow:seconds=30")
        payloads = self._payloads(["slow-0", "cell-1", "cell-2", "cell-3"])
        outcomes = ParallelMap(2, task_timeout=1.0).map_outcomes(
            _faulted_task, payloads
        )
        assert isinstance(outcomes[0], TaskError)
        assert outcomes[0].error_type == "TimeoutError"
        assert [o.value for o in outcomes if isinstance(o, Ok)] == [1, 2, 3]


class TestTable1FaultTolerance:
    """End-to-end: crash, degrade, kill, resume on the Table 1 sweep."""

    TABLE1_KWARGS = dict(lstm_epochs=2, lda_iter=10, lstm_hidden=8)
    META = {"companies": 100, "seed": 3}

    @pytest.fixture(scope="class")
    def table_data(self):
        return make_experiment_data(100, seed=3)

    @pytest.fixture(scope="class")
    def baseline(self, table_data):
        return run_perplexity_table(table_data, **self.TABLE1_KWARGS)

    def test_injected_crash_fails_only_that_cell(
        self, table_data, baseline, monkeypatch, fault_state
    ):
        monkeypatch.setenv("REPRO_FAULTS", "crash:s:lda")
        degraded = run_perplexity_table(table_data, **self.TABLE1_KWARGS)
        assert math.isnan(degraded["lda"])
        for name in ("unigram", "ngram", "lstm"):
            assert degraded[name] == baseline[name]

    def test_retry_absorbs_transient_crash(
        self, table_data, baseline, monkeypatch, fault_state
    ):
        monkeypatch.setenv("REPRO_FAULTS", "crash:s:lda:times=1")
        recovered = run_perplexity_table(
            table_data, retries=1, **self.TABLE1_KWARGS
        )
        assert recovered == baseline

    def test_resume_after_kill_reruns_only_unjournaled_cells(
        self, table_data, baseline, tmp_path
    ):
        # A full run's journal, then a copy truncated to its first two
        # cells — exactly what a kill between fsyncs leaves behind.
        full = tmp_path / "full.journal.jsonl"
        journal = RunJournal(full, meta=self.META)
        run_perplexity_table(table_data, journal=journal, **self.TABLE1_KWARGS)
        lines = full.read_text().splitlines()
        assert len(lines) == 6  # meta + 5 cells
        truncated = tmp_path / "killed.journal.jsonl"
        truncated.write_text("\n".join(lines[:3]) + "\n")

        metrics.enable()
        resumed_journal = RunJournal(truncated, meta=self.META, resume=True)
        resumed = run_perplexity_table(
            table_data, journal=resumed_journal, **self.TABLE1_KWARGS
        )
        assert resumed == baseline
        counters = metrics.snapshot()["counters"]
        assert counters["journal.skip"] == 2
        assert counters["journal.record"] == 3
        # The journal is now complete again: a second resume skips all 5.
        obs.reset_all()
        metrics.enable()
        rerun_journal = RunJournal(truncated, meta=self.META, resume=True)
        rerun = run_perplexity_table(
            table_data, journal=rerun_journal, **self.TABLE1_KWARGS
        )
        assert rerun == baseline
        assert metrics.snapshot()["counters"]["journal.skip"] == 5

    def test_mismatched_meta_discards_stale_journal(self, table_data, tmp_path):
        path = tmp_path / "stale.journal.jsonl"
        journal = RunJournal(path, meta=self.META)
        run_perplexity_table(table_data, journal=journal, **self.TABLE1_KWARGS)
        fresh = RunJournal(
            path, meta={"companies": 9999, "seed": 3}, resume=True
        )
        assert fresh.completed("s:table1/s:unigram/i:0/i:8/i:2/i:4/i:10") is None


class TestEvaluatorFaultTolerance:
    """Crash and resume semantics of the sliding-window evaluator."""

    def _corpus(self):
        # History owned well before the 2013 window start, plus one product
        # first seen inside the first window, so every window has both
        # conditioning data and ground truth.
        companies = [
            Company(
                duns=DunsNumber.from_sequence(i),
                name=f"C{i}",
                country="US",
                sic2=80,
                first_seen={
                    VOCAB[0]: dt.date(2010, 1 + (i % 3), 1),
                    VOCAB[1]: dt.date(2011, 1 + (i % 5), 1),
                    VOCAB[2 + (i % 2)]: dt.date(2013, 4 + (i % 6), 1),
                },
            )
            for i in range(10)
        ]
        return Corpus(companies, VOCAB)

    def _evaluator(self, corpus, **kwargs):
        return RecommendationEvaluator(
            corpus,
            spec=SlidingWindowSpec(n_windows=2),
            thresholds=[0.0, 0.2],
            retrain_per_window=True,
            **kwargs,
        )

    FACTORIES = {
        "u": UnigramModel,
        "c": ConditionalHeavyHitters,
    }

    def test_crashed_model_skips_windows_others_survive(
        self, monkeypatch, fault_state
    ):
        monkeypatch.setenv("REPRO_FAULTS", "crash:/s:u/")
        corpus = self._corpus()
        curves = self._evaluator(corpus).evaluate(self.FACTORIES)
        assert all(not obs_ for obs_ in curves["u"].observations.values())
        assert all(obs_ for obs_ in curves["c"].observations.values())

    def test_every_cell_failing_raises_runtime_error(
        self, monkeypatch, fault_state
    ):
        monkeypatch.setenv("REPRO_FAULTS", "crash:recommend")
        corpus = self._corpus()
        with pytest.raises(RuntimeError, match="every evaluation cell failed"):
            self._evaluator(corpus).evaluate(self.FACTORIES)

    def test_retry_absorbs_transient_crash(self, monkeypatch, fault_state):
        corpus = self._corpus()
        baseline = self._evaluator(corpus).evaluate(self.FACTORIES)
        monkeypatch.setenv("REPRO_FAULTS", "crash:/s:u/:times=1")
        recovered = self._evaluator(corpus, retries=1).evaluate(self.FACTORIES)
        for name in self.FACTORIES:
            assert recovered[name].observations == baseline[name].observations

    def test_journal_resume_replays_cells(self, tmp_path):
        corpus = self._corpus()
        baseline = self._evaluator(corpus).evaluate(self.FACTORIES)
        path = tmp_path / "recommend.journal.jsonl"
        first = self._evaluator(
            corpus, journal=RunJournal(path, meta={"seed": 0})
        ).evaluate(self.FACTORIES)
        metrics.enable()
        resumed = self._evaluator(
            corpus, journal=RunJournal(path, meta={"seed": 0}, resume=True)
        ).evaluate(self.FACTORIES)
        for name in self.FACTORIES:
            assert first[name].observations == baseline[name].observations
            assert resumed[name].observations == baseline[name].observations
        # 2 windows x 2 models, all replayed from the journal.
        assert metrics.snapshot()["counters"]["journal.skip"] == 4

    def test_parallel_path_matches_serial_under_journal(self, tmp_path):
        corpus = self._corpus()
        baseline = self._evaluator(corpus).evaluate(self.FACTORIES)
        path = tmp_path / "recommend.journal.jsonl"
        parallel = self._evaluator(
            corpus, n_jobs=2, journal=RunJournal(path, meta={"seed": 0})
        ).evaluate(self.FACTORIES)
        resumed = self._evaluator(
            corpus,
            n_jobs=2,
            journal=RunJournal(path, meta={"seed": 0}, resume=True),
        ).evaluate(self.FACTORIES)
        for name in self.FACTORIES:
            assert parallel[name].observations == baseline[name].observations
            assert resumed[name].observations == baseline[name].observations
