"""Tests for the concept-shift monitor."""

import datetime as dt

import numpy as np
import pytest

from repro.app.drift import DriftMonitor, DriftReport, jensen_shannon_divergence
from repro.data.corpus import Corpus
from repro.data.synthetic import InstallBaseSimulator, SimulatorConfig
from repro.models.lda import LatentDirichletAllocation
from repro.models.unigram import UnigramModel


class TestJensenShannon:
    def test_identical_distributions_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert jensen_shannon_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_distributions_ln2(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert jensen_shannon_divergence(p, q) == pytest.approx(np.log(2.0))

    def test_symmetric(self, rng):
        p = rng.random(10)
        q = rng.random(10)
        assert jensen_shannon_divergence(p, q) == pytest.approx(
            jensen_shannon_divergence(q, p)
        )

    def test_unnormalised_inputs_accepted(self):
        p = np.array([2.0, 3.0, 5.0])
        q = np.array([20.0, 30.0, 50.0])
        assert jensen_shannon_divergence(p, q) == pytest.approx(0.0, abs=1e-12)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length mismatch: 3 vs 4"):
            jensen_shannon_divergence(np.ones(3), np.ones(4))

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            jensen_shannon_divergence(np.zeros(3), np.ones(3))

    def test_zero_probability_bins_are_finite(self):
        # Disjoint support must cap at ln 2, not produce inf/NaN.
        p = np.array([0.5, 0.5, 0.0, 0.0])
        q = np.array([0.0, 0.0, 0.5, 0.5])
        value = jensen_shannon_divergence(p, q)
        assert np.isfinite(value)
        assert value == pytest.approx(np.log(2.0))

    def test_nan_input_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            jensen_shannon_divergence(np.array([np.nan, 1.0]), np.ones(2))

    def test_inf_input_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            jensen_shannon_divergence(np.ones(2), np.array([np.inf, 1.0]))

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError):
            jensen_shannon_divergence(np.array([-0.1, 1.1]), np.ones(2))

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            jensen_shannon_divergence(np.ones((2, 2)), np.ones((2, 2)))

    def test_scalar_inputs_promoted_to_1d(self):
        assert jensen_shannon_divergence(1.0, 1.0) == pytest.approx(0.0, abs=1e-12)

    def test_lists_accepted(self):
        assert jensen_shannon_divergence([0.5, 0.5], [0.5, 0.5]) == pytest.approx(
            0.0, abs=1e-12
        )


class TestDriftMonitor:
    @pytest.fixture(scope="class")
    def monitor_setup(self, split):
        model = LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=60, seed=0
        ).fit(split.train)
        monitor = DriftMonitor(model, split.validation)
        return model, monitor

    def test_same_distribution_no_drift(self, monitor_setup, split):
        __, monitor = monitor_setup
        report = monitor.check(split.test, checked_at=dt.date(2016, 2, 1))
        assert isinstance(report, DriftReport)
        assert not report.drifted
        assert report.perplexity_ratio < 1.25
        assert report.checked_at == dt.date(2016, 2, 1)

    def test_shifted_universe_flags_drift(self, monitor_setup, corpus):
        __, monitor = monitor_setup
        # A universe with very different profile structure and popularity.
        shifted_config = SimulatorConfig(
            n_companies=150, n_profiles=5, shared_head=6, core_size=10.0,
            mixture_concentration=0.5,
        )
        shifted = InstallBaseSimulator(shifted_config).generate_companies(seed=99)
        batch = Corpus(shifted, corpus.vocabulary)
        report = monitor.check(batch)
        assert report.drifted
        assert any("drift detected" in note for note in report.reasons())

    def test_history_accumulates(self, split):
        model = UnigramModel().fit(split.train)
        monitor = DriftMonitor(model, split.validation)
        monitor.check(split.test)
        monitor.check(split.test)
        assert len(monitor.history) == 2

    def test_should_retrain_requires_consecutive_flags(self, split, corpus):
        model = UnigramModel().fit(split.train)
        monitor = DriftMonitor(model, split.validation)
        shifted = InstallBaseSimulator(
            SimulatorConfig(n_companies=120, n_profiles=5, shared_head=6,
                            mixture_concentration=0.5)
        ).generate_companies(seed=98)
        batch = Corpus(shifted, corpus.vocabulary)
        monitor.check(split.test)  # clean
        monitor.check(batch)  # drifted
        assert not monitor.should_retrain(consecutive=2)
        monitor.check(batch)  # drifted again
        assert monitor.should_retrain(consecutive=2)

    def test_unfitted_model_rejected(self, split):
        with pytest.raises(ValueError, match="fitted"):
            DriftMonitor(UnigramModel(), split.validation)

    def test_vocabulary_mismatch_rejected(self, monitor_setup, split):
        __, monitor = monitor_setup
        narrow = split.test.restrict_vocabulary(split.test.vocabulary[:10])
        with pytest.raises(ValueError, match="vocabulary"):
            monitor.check(narrow)

    def test_invalid_tolerance(self, monitor_setup, split):
        model, __ = monitor_setup
        with pytest.raises(ValueError):
            DriftMonitor(model, split.validation, perplexity_tolerance=0.5)

    def test_degenerate_batch_perplexity_treated_as_drift(self, split, monkeypatch):
        model = UnigramModel().fit(split.train)
        monitor = DriftMonitor(model, split.validation)
        monkeypatch.setattr(model, "perplexity", lambda batch: float("nan"))
        report = monitor.check(split.test)
        assert report.degenerate
        assert report.drifted
        assert report.perplexity_ratio == float("inf")
        assert any("non-finite" in note for note in report.reasons())

    def test_degenerate_infinite_perplexity_also_flagged(self, split, monkeypatch):
        model = UnigramModel().fit(split.train)
        monitor = DriftMonitor(model, split.validation)
        monkeypatch.setattr(model, "perplexity", lambda batch: float("inf"))
        report = monitor.check(split.test)
        assert report.degenerate and report.drifted

    def test_non_finite_reference_perplexity_rejected(self, split, monkeypatch):
        model = UnigramModel().fit(split.train)
        monkeypatch.setattr(model, "perplexity", lambda batch: float("nan"))
        with pytest.raises(ValueError, match="non-finite"):
            DriftMonitor(model, split.validation)

    def test_degenerate_batches_count_toward_retraining(self, split, monkeypatch):
        model = UnigramModel().fit(split.train)
        monitor = DriftMonitor(model, split.validation)
        monkeypatch.setattr(model, "perplexity", lambda batch: float("nan"))
        monitor.check(split.test)
        monitor.check(split.test)
        assert monitor.should_retrain(consecutive=2)
