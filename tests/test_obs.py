"""Tests for the repro.obs observability layer."""

from __future__ import annotations

import json
import logging

import numpy as np
import pytest

from repro import obs
from repro.models.unigram import UnigramModel
from repro.obs import metrics, profile, report, trace
from repro.obs.instrument import traced
from repro.obs.logging import configure as configure_logging, get_logger


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with observability off and empty."""
    obs.disable_all()
    obs.reset_all()
    yield
    obs.disable_all()
    obs.reset_all()


class TestTrace:
    def test_disabled_by_default_and_costless(self):
        assert not trace.is_enabled()
        with trace.span("never.recorded"):
            assert trace.current_span() is None
        assert trace.roots() == []

    def test_nesting_builds_a_tree(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
            with trace.span("inner2"):
                pass
        roots = trace.roots()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner", "inner2"]

    def test_same_name_spans_merge_and_count(self):
        trace.enable()
        with trace.span("stage"):
            for _ in range(5):
                with trace.span("step"):
                    pass
        (root,) = trace.roots()
        (step,) = root.children
        assert step.n_calls == 5
        assert root.n_calls == 1

    def test_timing_monotonicity(self):
        trace.enable()
        with trace.span("parent"):
            with trace.span("child"):
                sum(range(20_000))
        (parent,) = trace.roots()
        (child,) = parent.children
        assert parent.wall >= child.wall >= 0.0
        assert parent.cpu >= child.cpu >= 0.0

    def test_counters_attach_to_current_span(self):
        trace.enable()
        with trace.span("stage"):
            trace.add_counter("items", 3)
            trace.add_counter("items", 4)
        (root,) = trace.roots()
        assert root.counters == {"items": 7.0}

    def test_counters_noop_when_disabled(self):
        trace.add_counter("items", 3)
        assert trace.roots() == []

    def test_reset_clears_everything(self):
        trace.enable()
        with trace.span("stage"):
            pass
        trace.reset()
        assert trace.roots() == []
        assert trace.current_span() is None

    def test_as_dict_is_json_encodable(self):
        trace.enable()
        with trace.span("stage"):
            trace.add_counter("n", 2)
            with trace.span("step"):
                pass
        (root,) = trace.roots()
        encoded = json.loads(json.dumps(root.as_dict()))
        assert encoded["name"] == "stage"
        assert encoded["children"][0]["name"] == "step"


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = metrics.MetricsRegistry()
        registry.counter("calls").inc()
        registry.counter("calls").inc(2)
        registry.gauge("depth").set(4)
        for value in (1.0, 2.0, 3.0):
            registry.histogram("latency").observe(value)
        snap = registry.snapshot()
        assert snap["counters"]["calls"] == 3.0
        assert snap["gauges"]["depth"] == 4.0
        assert snap["histograms"]["latency"]["count"] == 3
        assert snap["histograms"]["latency"]["mean"] == pytest.approx(2.0)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            metrics.MetricsRegistry().counter("c").inc(-1)

    def test_name_kind_collision_rejected(self):
        registry = metrics.MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_reset_roundtrip(self):
        registry = metrics.MetricsRegistry()
        registry.counter("c").inc(5)
        assert registry.snapshot()["counters"] == {"c": 5.0}
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_to_json_parses(self):
        registry = metrics.MetricsRegistry()
        registry.counter("c").inc()
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["c"] == 1.0

    def test_guarded_helpers_disabled_by_default(self):
        metrics.inc("never")
        metrics.observe("never.h", 1.0)
        metrics.set_gauge("never.g", 1.0)
        snap = metrics.snapshot()
        assert not snap["counters"] and not snap["gauges"] and not snap["histograms"]

    def test_guarded_helpers_record_when_enabled(self):
        metrics.enable()
        metrics.inc("c", 2)
        metrics.observe("h", 1.5)
        metrics.set_gauge("g", -3)
        snap = metrics.snapshot()
        assert snap["counters"]["c"] == 2.0
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["gauges"]["g"] == -3.0


class TestLogging:
    def test_json_lines_emission(self, tmp_path):
        log_path = tmp_path / "run.jsonl"
        configure_logging("ERROR", json_path=log_path)
        log = get_logger("test")
        log.info("hello", extra={"obs": {"stage": "fit", "n": 3}})
        log.warning("watch out")
        records = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
            if line.strip()
        ]
        assert len(records) == 2
        assert records[0]["message"] == "hello"
        assert records[0]["stage"] == "fit"
        assert records[0]["n"] == 3
        assert records[1]["level"] == "WARNING"
        assert all("ts" in r and "logger" in r for r in records)

    def test_reconfigure_does_not_stack_handlers(self, tmp_path):
        log_path = tmp_path / "run.jsonl"
        configure_logging("ERROR", json_path=log_path)
        configure_logging("ERROR", json_path=log_path)
        get_logger().info("once")
        lines = [l for l in log_path.read_text().splitlines() if l.strip()]
        assert len(lines) == 1

    def test_console_level_applies(self, tmp_path, capsys):
        import io

        stream = io.StringIO()
        configure_logging("WARNING", stream=stream)
        get_logger().info("quiet")
        get_logger().warning("loud")
        output = stream.getvalue()
        assert "quiet" not in output
        assert "loud" in output

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("shouting")

    def teardown_method(self):
        # Detach file handlers so tmp_path can be reclaimed.
        configure_logging("WARNING")
        logging.getLogger("repro").handlers.clear()


class TestInstrumentation:
    def test_model_methods_spanned_when_enabled(self, split):
        obs.enable_all()
        model = UnigramModel().fit(split.train)
        model.perplexity(split.test)
        model.batch_next_product_proba([[0], [1]])
        names = {s.name for root in trace.roots() for s in root.walk()}
        assert "model.unigram.fit" in names
        assert "model.unigram.log_prob" in names
        assert "model.unigram.batch_next_product_proba" in names
        assert "model.unigram.next_product_proba" in names
        snap = metrics.snapshot()
        assert snap["counters"]["model.unigram.fit.calls"] == 1.0
        assert snap["counters"]["model.unigram.next_product_proba.calls"] == 2.0

    def test_no_spans_when_disabled(self, split):
        model = UnigramModel().fit(split.train)
        model.next_product_proba([0])
        assert trace.roots() == []
        assert metrics.snapshot()["counters"] == {}

    def test_instrumentation_preserves_results(self, split):
        baseline = UnigramModel().fit(split.train).next_product_proba([0])
        obs.enable_all()
        instrumented = UnigramModel().fit(split.train).next_product_proba([0])
        assert np.allclose(baseline, instrumented)

    def test_traced_decorator(self):
        @traced("custom.stage", counter="custom.calls")
        def work(x):
            """Docstring preserved."""
            return x + 1

        assert work(1) == 2  # disabled: plain passthrough
        assert trace.roots() == []
        obs.enable_all()
        assert work(2) == 3
        assert [r.name for r in trace.roots()] == ["custom.stage"]
        assert metrics.snapshot()["counters"]["custom.calls"] == 1.0
        assert work.__doc__ == "Docstring preserved."


class TestProfile:
    def test_disabled_capture_is_noop(self):
        with profile.capture("nothing") as cap:
            assert cap is None
        assert profile.captures() == []

    def test_capture_records_hot_functions(self):
        profile.enable(top_n=5)
        with profile.capture("busy") as cap:
            sorted(range(50_000), key=lambda x: -x)
        assert cap is not None
        (recorded,) = profile.captures()
        assert recorded.label == "busy"
        assert 1 <= len(recorded.top) <= 5
        assert all(row.cumulative_s >= 0.0 for row in recorded.top)
        encoded = json.loads(json.dumps(recorded.as_dict()))
        assert encoded["label"] == "busy"

    def test_nested_capture_noops(self):
        profile.enable()
        with profile.capture("outer") as outer:
            with profile.capture("inner") as inner:
                assert inner is None
        assert outer is not None
        assert [c.label for c in profile.captures()] == ["outer"]

    def test_bad_top_n_rejected(self):
        with pytest.raises(ValueError):
            profile.enable(top_n=0)


class TestReport:
    def test_text_report_contains_tree_and_metrics(self):
        obs.enable_all()
        with trace.span("exp.demo.fit"):
            with trace.span("model.demo.fit"):
                pass
        metrics.inc("demo.calls", 2)
        text = report.render_text()
        assert "== timing report ==" in text
        assert "exp.demo.fit" in text
        assert "  model.demo.fit" in text
        assert "demo.calls" in text

    def test_json_report_shape(self):
        obs.enable_all()
        with trace.span("stage"):
            pass
        payload = report.render_json()
        assert payload["trace"][0]["name"] == "stage"
        assert set(payload) == {"trace", "metrics", "profiles"}
        json.dumps(payload)  # encodable

    def test_empty_report_mentions_tracing(self):
        assert "tracing" in report.render_text()
