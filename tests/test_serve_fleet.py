"""Scale-out serving tests: mmap artifacts, consistent hashing, the fleet.

Covers the pre-fork serving tier end to end at tiny deterministic scale:

* ``GenerativeModel.load(mmap_mode="r")`` lazily maps ``.npz`` weights
  and scores bit-identically to an eager load;
* :class:`~repro.serve.artifact.ArtifactStore` publish/flip/bump/prune
  atomicity and registry hot-swaps straight from published artifacts;
* :class:`~repro.serve.router.ConsistentHashRing` stability: adding a
  replica moves a bounded key fraction, removing one moves only its own
  keys, assignments are deterministic across processes;
* :func:`~repro.obs.metrics.merge_snapshots` fleet aggregation;
* transport tuning from :class:`ServiceConfig` (backlog, SO_REUSEADDR,
  SO_REUSEPORT) and the no-FD-leak guarantee under handler crashes;
* the live fleet: supervisor restart of a SIGKILLed worker, graceful
  drain, hot-swap convergence, and a rejected candidate generation
  leaving every worker serving the incumbent bit-identically.
"""

from __future__ import annotations

import json
import math
import mmap
import os
import shutil
import signal
import socket
import subprocess
import sys
import time
import urllib.request

import numpy as np
import pytest

from repro.experiments.common import make_experiment_data
from repro.models.base import GenerativeModel, mmap_npz_arrays
from repro.models.lda import LatentDirichletAllocation
from repro.models.ngram import NGramModel
from repro.obs.metrics import merge_snapshots
from repro.serve import (
    ArtifactStore,
    ConsistentHashRing,
    FleetSupervisor,
    ModelRegistry,
    RecommendationService,
    ServiceConfig,
    ServiceHTTPServer,
    build_demo_models,
    demo_service_factory,
    publish_demo_artifacts,
    read_fleet_state,
)
from repro.serve.router import FleetRouter, start_router

N_COMPANIES = 60
SEED = 7
LDA_ITERS = 8

_HAS_REUSEPORT = hasattr(socket, "SO_REUSEPORT")


def _post(url: str, path: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def _get(url: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


# ----------------------------------------------------------------------
# Satellite: lazy mmap loading of model artifacts
# ----------------------------------------------------------------------
class TestMmapLoading:
    @pytest.fixture(scope="class")
    def fitted(self):
        data = make_experiment_data(N_COMPANIES, seed=SEED)
        lda = LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=LDA_ITERS, seed=0
        ).fit(data.split.train)
        ngram = NGramModel(order=2).fit(data.split.train)
        return data, lda, ngram

    def test_mmap_load_bit_identical(self, fitted, tmp_path):
        data, lda, ngram = fitted
        reference = data.split.validation
        for name, model in (("lda", lda), ("ngram", ngram)):
            path = tmp_path / f"{name}.npz"
            model.save(path)
            eager = type(model).load(path)
            mapped = type(model).load(path, mmap_mode="r")
            assert eager.perplexity(reference) == mapped.perplexity(reference)
            history = reference.sequences()[0][:3]
            np.testing.assert_array_equal(
                eager.next_product_proba(history),
                mapped.next_product_proba(history),
            )

    def test_mmap_arrays_are_memory_mapped(self, fitted, tmp_path):
        _data, lda, _ngram = fitted
        path = tmp_path / "lda.npz"
        lda.save(path)
        _meta, arrays = mmap_npz_arrays(path)
        assert arrays, "no arrays mapped"
        for array in arrays.values():
            base = array
            while getattr(base, "base", None) is not None:
                base = base.base
            assert isinstance(base, mmap.mmap), type(base)
            assert array.dtype != object

    def test_load_any_forwards_mmap_mode(self, fitted, tmp_path):
        _data, lda, _ngram = fitted
        path = tmp_path / "lda.npz"
        lda.save(path)
        model = GenerativeModel.load_any(path, mmap_mode="r")
        assert isinstance(model, LatentDirichletAllocation)
        assert model.is_fitted

    def test_mmap_load_rejects_wrong_class(self, fitted, tmp_path):
        _data, _lda, ngram = fitted
        path = tmp_path / "ngram.npz"
        ngram.save(path)
        with pytest.raises(ValueError):
            LatentDirichletAllocation.load(path, mmap_mode="r")


# ----------------------------------------------------------------------
# Artifact store
# ----------------------------------------------------------------------
class TestArtifactStore:
    @pytest.fixture(scope="class")
    def models(self):
        _data, models = build_demo_models(
            N_COMPANIES, seed=SEED, lda_iterations=LDA_ITERS
        )
        return models

    def test_publish_layout_and_handles(self, models, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        published = store.publish(models)
        assert published.number == 1
        assert store.generation() == 1
        assert published.slots() == ["lda", "ngram"]
        assert (store.root / "current").resolve() == published.path.resolve()
        assert store.current().number == 1
        loaded = published.load("lda", mmap_mode="r")
        assert isinstance(loaded, LatentDirichletAllocation)

    def test_prune_keeps_retention_window(self, models, tmp_path):
        store = ArtifactStore(tmp_path / "store", keep=1)
        for _ in range(3):
            store.publish(models)
        # keep=1: the current generation plus one predecessor survive.
        assert store.generations() == [2, 3]
        assert store.generation() == 3

    def test_publish_rejects_unfitted_and_empty(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ValueError, match="empty"):
            store.publish({})
        with pytest.raises(ValueError, match="fitted"):
            store.publish({"lda": LatentDirichletAllocation(n_topics=2)})
        assert store.generation() is None
        assert not list(store.root.glob(".staging-*"))

    def test_registry_swap_from_published_artifact(self, models, tmp_path):
        data = make_experiment_data(N_COMPANIES, seed=SEED)
        store = ArtifactStore(tmp_path / "store")
        published = store.publish(models)
        registry = ModelRegistry(data.split.validation)
        registry.install("lda", models["lda"])
        report = registry.swap(
            "lda", published.slot_path("lda"), mmap_mode="r"
        )
        assert report.status == "promoted"
        assert registry.version("lda") == 2


# ----------------------------------------------------------------------
# Satellite: consistent-hash ring stability
# ----------------------------------------------------------------------
class TestConsistentHashRing:
    KEYS = [f"{i:09d}" for i in range(400)]

    def test_lookup_requires_nodes(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().lookup("key")

    def test_add_moves_bounded_fraction(self):
        ring = ConsistentHashRing([f"shard-{i}" for i in range(4)])
        before = ring.assignments(self.KEYS)
        ring.add("shard-4")
        after = ring.assignments(self.KEYS)
        moved = [k for k in self.KEYS if before[k] != after[k]]
        # Ideal steal is |keys|/(K+1); allow vnode-sampling variance.
        bound = math.ceil(len(self.KEYS) / 5) * 1.6
        assert len(moved) <= bound, (len(moved), bound)
        # Every moved key moved TO the new replica, none between old ones.
        assert all(after[k] == "shard-4" for k in moved)

    def test_remove_moves_only_own_keys(self):
        ring = ConsistentHashRing([f"shard-{i}" for i in range(5)])
        before = ring.assignments(self.KEYS)
        ring.remove("shard-2")
        after = ring.assignments(self.KEYS)
        for key in self.KEYS:
            if before[key] == "shard-2":
                assert after[key] != "shard-2"
            else:
                assert after[key] == before[key], key

    def test_add_remove_roundtrip_restores(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        before = ring.assignments(self.KEYS)
        ring.add("d")
        ring.remove("d")
        assert ring.assignments(self.KEYS) == before

    def test_deterministic_across_processes(self):
        ring = ConsistentHashRing(["shard-0", "shard-1", "shard-2"])
        keys = self.KEYS[:50]
        local = [ring.lookup(k) for k in keys]
        script = (
            "import json, sys\n"
            "from repro.serve.router import ConsistentHashRing\n"
            "ring = ConsistentHashRing(['shard-0', 'shard-1', 'shard-2'])\n"
            "keys = json.loads(sys.argv[1])\n"
            "print(json.dumps([ring.lookup(k) for k in keys]))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), str(
                os.path.join(os.path.dirname(__file__), "..", "src")
            )) if p
        )
        env["PYTHONHASHSEED"] = "9999"  # hash() must play no part
        remote = json.loads(
            subprocess.run(
                [sys.executable, "-c", script, json.dumps(keys)],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            ).stdout
        )
        assert remote == local


# ----------------------------------------------------------------------
# Fleet metrics aggregation
# ----------------------------------------------------------------------
class TestMergeSnapshots:
    def test_counters_sum_and_gauges_merge(self):
        a = {
            "counters": {'serve.requests{endpoint="/recommend"}': 10.0},
            "gauges": {
                "serve.inflight": 2.0,
                'serve.breaker.state{tier="lda"}': 0.0,
            },
            "histograms": {},
        }
        b = {
            "counters": {'serve.requests{endpoint="/recommend"}': 5.0},
            "gauges": {
                "serve.inflight": 1.0,
                'serve.breaker.state{tier="lda"}': 2.0,
            },
            "histograms": {},
        }
        merged = merge_snapshots([a, b])
        assert merged["workers"] == 2
        assert merged["counters"]['serve.requests{endpoint="/recommend"}'] == 15.0
        assert merged["gauges"]["serve.inflight"] == 3.0
        # Breaker state takes the worst worker, not the sum.
        assert merged["gauges"]['serve.breaker.state{tier="lda"}'] == 2.0

    def test_histograms_merge_conservatively(self):
        a = {
            "histograms": {
                "serve.latency_ms": {
                    "count": 4, "sum": 40.0, "mean": 10.0,
                    "min": 5.0, "max": 20.0, "p50": 9.0, "p90": 18.0, "p99": 20.0,
                }
            }
        }
        b = {
            "histograms": {
                "serve.latency_ms": {
                    "count": 6, "sum": 30.0, "mean": 5.0,
                    "min": 1.0, "max": 12.0, "p50": 4.0, "p90": 10.0, "p99": 12.0,
                }
            }
        }
        merged = merge_snapshots([a, b])["histograms"]["serve.latency_ms"]
        assert merged["count"] == 10
        assert merged["sum"] == 70.0
        assert merged["mean"] == pytest.approx(7.0)
        assert merged["min"] == 1.0 and merged["max"] == 20.0
        assert merged["p99"] == 20.0  # max across workers: upper bound

    def test_empty_input(self):
        merged = merge_snapshots([])
        assert merged["workers"] == 0
        assert merged["counters"] == {}


# ----------------------------------------------------------------------
# Satellite: transport tuning + FD hygiene
# ----------------------------------------------------------------------
def _tiny_service(config: ServiceConfig | None = None) -> RecommendationService:
    data = make_experiment_data(40, seed=SEED)
    registry = ModelRegistry(data.split.validation)
    registry.install("ngram", NGramModel(order=2).fit(data.split.train))
    return RecommendationService(
        corpus=data.corpus,
        registry=registry,
        tiers=("ngram",),
        config=config or ServiceConfig(),
    )


class TestTransportConfig:
    def test_backlog_and_reuse_address_from_config(self):
        service = _tiny_service(
            ServiceConfig(listen_backlog=7, reuse_address=True)
        )
        server = ServiceHTTPServer(("127.0.0.1", 0), service)
        try:
            assert server.request_queue_size == 7
            assert (
                server.socket.getsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR)
                != 0
            )
        finally:
            server.server_close()
            service.close()

    @pytest.mark.skipif(not _HAS_REUSEPORT, reason="platform lacks SO_REUSEPORT")
    def test_reuse_port_allows_shared_bind(self):
        service = _tiny_service(ServiceConfig(reuse_port=True))
        first = ServiceHTTPServer(("127.0.0.1", 0), service)
        port = first.server_address[1]
        try:
            second = ServiceHTTPServer(("127.0.0.1", port), service)
            second.server_close()
        finally:
            first.server_close()
            service.close()

    def test_handler_crash_closes_socket_no_fd_leak(self, monkeypatch):
        from repro.runtime import faults
        from repro.serve.http import start_server

        service = _tiny_service()
        server, _thread = start_server(service)
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        payload = {"history": [list(service.corpus.vocabulary)[0]]}
        try:
            status, _ = _post(url, "/recommend", payload)
            assert status == 200
            fds_before = len(os.listdir("/proc/self/fd"))

            monkeypatch.setenv("REPRO_FAULTS", "crash:serve/http/handler")
            faults.reset_firing_counts()
            for _ in range(20):
                try:
                    status, body = _post(url, "/recommend", payload)
                    assert status == 500, (status, body)
                except (urllib.error.URLError, OSError, ConnectionError):
                    pass  # a torn-down connection is an acceptable answer
            monkeypatch.delenv("REPRO_FAULTS")

            time.sleep(0.3)  # let handler threads finish closing
            fds_after = len(os.listdir("/proc/self/fd"))
            assert fds_after <= fds_before + 3, (fds_before, fds_after)
            # The transport recovered: a clean request still answers.
            status, _ = _post(url, "/recommend", payload)
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            service.close()


# ----------------------------------------------------------------------
# The live fleet
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet_store(tmp_path_factory):
    """One published artifact store + service factory for every fleet test."""
    root = tmp_path_factory.mktemp("fleet")
    store = ArtifactStore(root / "artifacts")
    publish_demo_artifacts(
        store, N_COMPANIES, seed=SEED, lda_iterations=LDA_ITERS
    )
    config = ServiceConfig(reuse_port=_HAS_REUSEPORT)
    factory = demo_service_factory(store, N_COMPANIES, seed=SEED, config=config)
    data = make_experiment_data(N_COMPANIES, seed=SEED)
    payload = {
        "history": list(data.corpus.vocabulary)[:2],
        "top_n": 5,
        "deadline_ms": 4000,
    }
    duns = data.corpus.companies[0].duns.value
    return {"store": store, "factory": factory, "payload": payload,
            "duns": duns, "root": root}


def _supervisor(fleet_store, tag: str, **kwargs) -> FleetSupervisor:
    defaults = dict(
        n_workers=2,
        shards=1,
        state_dir=fleet_store["root"] / f"state-{tag}",
        store=fleet_store["store"],
        poll_interval=0.1,
        drain_grace_s=3.0,
    )
    defaults.update(kwargs)
    return FleetSupervisor(fleet_store["factory"], **defaults)


class TestFleet:
    def test_serves_restarts_and_drains(self, fleet_store):
        supervisor = _supervisor(fleet_store, "lifecycle")
        supervisor.start()
        try:
            states = supervisor.wait_ready(timeout=120)
            assert [s.index for s in states] == [0, 1]
            assert all(s.generation == 1 for s in states)

            status, body = _post(
                supervisor.fleet_url, "/recommend", fleet_store["payload"]
            )
            assert status == 200 and body["recommendations"]

            # SIGKILL one worker: the supervisor restarts it and the
            # fleet keeps answering throughout.
            victim = supervisor.live_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                pids = supervisor.live_pids()
                if supervisor.restarts >= 1 and len(pids) == 2:
                    break
                time.sleep(0.05)
            assert supervisor.restarts >= 1
            assert supervisor.live_pids()[0] != victim
            supervisor.wait_ready(timeout=120)
            status, _ = _post(
                supervisor.fleet_url, "/recommend", fleet_store["payload"]
            )
            assert status == 200
        finally:
            supervisor.stop()
        # Drain removed every worker and its state file.
        assert supervisor.live_pids() == {}
        assert read_fleet_state(supervisor.state_dir) == []

    def test_hotswap_converges_bit_identically(self, fleet_store):
        supervisor = _supervisor(fleet_store, "hotswap")
        supervisor.start()
        try:
            supervisor.wait_ready(timeout=120)
            _data, models = build_demo_models(
                N_COMPANIES, seed=SEED, lda_iterations=LDA_ITERS
            )
            published = supervisor.publish(models)
            states = supervisor.wait_generation(published.number, timeout=60)
            answers = []
            for state in states:
                status, body = _post(
                    state.direct_url, "/recommend", fleet_store["payload"]
                )
                assert status == 200, (state.index, body)
                answers.append((body["recommendations"], body["model_versions"]))
            assert all(a == answers[0] for a in answers), answers
            assert answers[0][1]["lda"] == 2  # the swap really happened
        finally:
            supervisor.stop()

    def test_rejected_candidate_keeps_incumbent_everywhere(self, fleet_store):
        store: ArtifactStore = fleet_store["store"]
        good_number = store.generation()
        good_name = store.current().path.name
        bad_dir = None
        supervisor = _supervisor(fleet_store, "rejected")
        supervisor.start()
        try:
            states = supervisor.wait_ready(timeout=120)
            baseline_gen = states[0].generation
            before = [
                _post(s.direct_url, "/recommend", fleet_store["payload"])[1]
                for s in states
            ]

            # Hand-roll a bad generation: a published directory whose lda
            # artifact is garbage.  Every worker must reject it at the
            # stage step and keep the incumbent serving.
            bad_number = store.generations()[-1] + 1
            bad_dir = store.root / f"gen-{bad_number:06d}"
            shutil.copytree(store.current().path, bad_dir)
            (bad_dir / "lda.npz").write_bytes(b"\x00not a model\x00")
            manifest = json.loads((bad_dir / "manifest.json").read_text())
            manifest["generation"] = bad_number
            (bad_dir / "manifest.json").write_text(json.dumps(manifest))
            store._flip_current(bad_dir.name)
            store._bump(bad_number)
            supervisor.signal_workers(signal.SIGHUP)

            time.sleep(1.5)  # several poll cycles: ample time to (not) apply
            states_after = supervisor.workers()
            assert all(s.generation == baseline_gen for s in states_after), (
                states_after
            )
            after = [
                _post(s.direct_url, "/recommend", fleet_store["payload"])[1]
                for s in states_after
            ]
            for old, new in zip(before, after):
                assert old["recommendations"] == new["recommendations"]
                assert old["model_versions"] == new["model_versions"]
        finally:
            supervisor.stop()
            # Point the shared store back at the good generation so later
            # fleet tests don't boot workers against the garbage artifact.
            store._flip_current(good_name)
            store._bump(good_number)
            if bad_dir is not None:
                shutil.rmtree(bad_dir, ignore_errors=True)

    def test_router_routes_and_aggregates(self, fleet_store):
        supervisor = _supervisor(fleet_store, "router", n_workers=2, shards=2)
        supervisor.start()
        router_server = None
        try:
            supervisor.wait_ready(timeout=120)
            router_server, _thread = start_router(
                supervisor.state_dir, shards=2
            )
            url = "http://127.0.0.1:%d" % router_server.server_address[1]
            router: FleetRouter = router_server.router

            status, body = _post(url, "/recommend", fleet_store["payload"])
            assert status == 200 and body["recommendations"]
            status, body = _post(
                url, "/similar", {"duns": fleet_store["duns"], "k": 3}
            )
            assert status == 200

            # Shard affinity: the same company always routes to the same
            # shard group, and that shard has a live worker behind it.
            shard = router.shard_of(fleet_store["duns"])
            assert shard == router.shard_of(fleet_store["duns"])
            assert any(w.shard == shard for w in supervisor.workers())

            status, health = _get(url, "/healthz")
            assert status == 200 and health["healthy"] == 2
            status, ready = _get(url, "/readyz")
            assert status == 200
            status, metrics = _get(url, "/metrics")
            assert metrics["workers"] == 2
            assert metrics["fleet"]["shards"] == 2
            assert any(
                key.startswith("serve.requests") for key in metrics["counters"]
            )
            status, topology = _get(url, "/fleet")
            assert sorted(topology["shard_groups"]) == ["shard-0", "shard-1"]
        finally:
            if router_server is not None:
                router_server.shutdown()
                router_server.server_close()
            supervisor.stop()

    def test_router_with_no_workers_sheds(self, tmp_path):
        router = FleetRouter(lambda: [], shards=1)
        status, payload, headers = router.forward("POST", "/recommend", b"{}", {})
        assert status == 503
        assert headers.get("Retry-After")
