"""Tests for the simulated internal sales database."""

import pytest

from repro.data.internal import FirmographicRecord, InternalSalesDatabase


class TestFirmographicRecord:
    def test_rejects_zero_employees(self):
        with pytest.raises(ValueError):
            FirmographicRecord(
                duns="000000000", name="X", country="US", sic2=80,
                employees=0, revenue_musd=1.0,
            )

    def test_rejects_negative_revenue(self):
        with pytest.raises(ValueError):
            FirmographicRecord(
                duns="000000000", name="X", country="US", sic2=80,
                employees=10, revenue_musd=-1.0,
            )


class TestInternalSalesDatabase:
    @pytest.fixture(scope="class")
    def db(self, universe):
        return InternalSalesDatabase(universe.companies, client_rate=0.4, seed=0)

    def test_requires_companies(self):
        with pytest.raises(ValueError):
            InternalSalesDatabase([])

    def test_every_company_has_firmographics(self, db, universe):
        for company in universe.companies:
            record = db.firmographics(company.duns.value)
            assert record.employees >= 1
            assert record.revenue_musd >= 0.0
            assert record.sic2 == company.sic2

    def test_unknown_company_raises(self, db):
        with pytest.raises(KeyError):
            db.firmographics("999999999")

    def test_client_rate_roughly_respected(self, db, universe):
        fraction = len(db.clients()) / len(universe.companies)
        assert 0.25 < fraction < 0.55

    def test_sold_products_subset_of_install_base(self, db, universe):
        by_duns = {c.duns.value: c for c in universe.companies}
        for duns in db.clients():
            sold = db.sold_products(duns)
            assert sold <= by_duns[duns].categories

    def test_non_client_has_no_sales(self, db, universe):
        non_clients = [
            c for c in universe.companies if not db.is_client(c.duns.value)
        ]
        assert non_clients
        assert db.sold_products(non_clients[0].duns.value) == frozenset()

    def test_whitespace_complements_sales(self, db, universe):
        for company in universe.companies[:50]:
            whitespace = db.whitespace(company)
            sold = db.sold_products(company.duns.value)
            assert whitespace | sold == company.categories
            assert not whitespace & sold

    def test_deterministic_given_seed(self, universe):
        a = InternalSalesDatabase(universe.companies, seed=3)
        b = InternalSalesDatabase(universe.companies, seed=3)
        assert a.clients() == b.clients()

    def test_larger_companies_tend_to_more_employees(self, db, universe):
        small = [c for c in universe.companies if c.n_sites == 1]
        large = [c for c in universe.companies if c.n_sites >= 3]
        if not small or not large:
            pytest.skip("universe lacks size contrast")
        mean = lambda cs: sum(
            db.firmographics(c.duns.value).employees for c in cs
        ) / len(cs)
        assert mean(large) > mean(small)

    def test_len_and_contains(self, db, universe):
        assert len(db) == len(universe.companies)
        assert universe.companies[0].duns.value in db
        assert "999999999" not in db
