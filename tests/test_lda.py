"""Model-specific tests for Latent Dirichlet Allocation."""

import numpy as np
import pytest

from repro.data.corpus import Corpus
from repro.data.synthetic import InstallBaseSimulator, SimulatorConfig
from repro.models.lda import LatentDirichletAllocation
from repro.models.unigram import UnigramModel


class TestConstruction:
    def test_default_alpha_scales_with_topics(self):
        assert LatentDirichletAllocation(n_topics=4).alpha == pytest.approx(0.25)

    def test_gibbs_rejects_tfidf_input(self):
        with pytest.raises(ValueError, match="variational"):
            LatentDirichletAllocation(inference="gibbs", input_type="tfidf")

    def test_invalid_inference(self):
        with pytest.raises(ValueError):
            LatentDirichletAllocation(inference="mcmc")

    def test_invalid_score_mode(self):
        with pytest.raises(ValueError):
            LatentDirichletAllocation(score_mode="magic")


class TestFitting:
    def test_phi_rows_are_distributions(self, fitted_lda):
        phi = fitted_lda.phi
        assert phi.shape == (3, 38)
        assert np.all(phi >= 0.0)
        assert np.allclose(phi.sum(axis=1), 1.0)

    def test_n_parameters_matches_paper_formula(self, fitted_lda):
        # Section 5: nt + nt * M.
        assert fitted_lda.n_parameters == 3 + 3 * 38

    def test_variational_deterministic_given_seed(self, split):
        a = LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=30, seed=9
        ).fit(split.train)
        b = LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=30, seed=9
        ).fit(split.train)
        assert np.allclose(a.phi, b.phi)

    def test_gibbs_deterministic_given_seed(self, split):
        a = LatentDirichletAllocation(n_topics=2, n_iter=20, seed=9).fit(split.train)
        b = LatentDirichletAllocation(n_topics=2, n_iter=20, seed=9).fit(split.train)
        assert np.allclose(a.phi, b.phi)

    def test_fit_matrix_rejects_negative(self):
        model = LatentDirichletAllocation(n_topics=2, inference="variational")
        with pytest.raises(ValueError, match="non-negative"):
            model.fit_matrix(np.array([[1.0, -1.0]]))

    def test_fit_matrix_gibbs_rejects_fractional(self):
        model = LatentDirichletAllocation(n_topics=2, inference="gibbs")
        with pytest.raises(ValueError, match="integer"):
            model.fit_matrix(np.array([[0.5, 1.0]]))

    def test_fit_matrix_variational_accepts_fractional(self):
        model = LatentDirichletAllocation(
            n_topics=2, inference="variational", n_iter=10, seed=0
        )
        model.fit_matrix(np.array([[0.5, 1.0, 0.0], [0.0, 0.3, 0.9]] * 4))
        assert model.is_fitted


class TestInference:
    def test_infer_theta_rows_are_distributions(self, fitted_lda, split):
        theta = fitted_lda.infer_theta(split.test.binary_matrix())
        assert theta.shape == (split.test.n_companies, 3)
        assert np.all(theta >= 0.0)
        assert np.allclose(theta.sum(axis=1), 1.0)

    def test_empty_company_gets_uniform_mixture(self, fitted_lda):
        theta = fitted_lda.infer_theta(np.zeros((1, 38)))
        assert np.allclose(theta, 1.0 / 3.0)

    def test_infer_theta_dimension_mismatch(self, fitted_lda):
        with pytest.raises(ValueError):
            fitted_lda.infer_theta(np.zeros((1, 40)))

    def test_company_features_match_infer_theta(self, fitted_lda, split):
        features = fitted_lda.company_features(split.test)
        direct = fitted_lda.infer_theta(split.test.binary_matrix())
        assert np.allclose(features, direct)

    def test_product_embeddings_are_topic_posteriors(self, fitted_lda):
        embeddings = fitted_lda.product_embeddings()
        assert embeddings.shape == (38, 3)
        assert np.allclose(embeddings.sum(axis=1), 1.0)


class TestRecovery:
    """LDA must recover the simulator's latent structure."""

    @pytest.fixture(scope="class")
    def recovery_setup(self):
        simulator = InstallBaseSimulator(SimulatorConfig(n_companies=600))
        universe = simulator.generate(seed=11)
        corpus = Corpus(universe.companies, simulator.catalog.categories)
        lda = LatentDirichletAllocation(
            n_topics=4, inference="variational", n_iter=120, seed=0
        ).fit(corpus)
        return universe, corpus, lda

    def test_topics_align_with_true_profiles(self, recovery_setup):
        universe, corpus, lda = recovery_setup
        true_phi = universe.ground_truth.profile_product
        learned = lda.phi
        # Greedy-match learned topics to true profiles by cosine similarity;
        # each true profile should have a strong counterpart.
        sims = (true_phi / np.linalg.norm(true_phi, axis=1, keepdims=True)) @ (
            learned / np.linalg.norm(learned, axis=1, keepdims=True)
        ).T
        best = sims.max(axis=1)
        assert np.all(best > 0.85)

    def test_dominant_topic_matches_dominant_profile(self, recovery_setup):
        universe, corpus, lda = recovery_setup
        theta = lda.company_features(corpus)
        true_mixture = universe.ground_truth.company_mixture
        sims = (
            universe.ground_truth.profile_product
            / np.linalg.norm(universe.ground_truth.profile_product, axis=1, keepdims=True)
        ) @ (lda.phi / np.linalg.norm(lda.phi, axis=1, keepdims=True)).T
        mapping = sims.argmax(axis=1)  # true profile -> learned topic
        predicted = theta.argmax(axis=1)
        expected = mapping[true_mixture.argmax(axis=1)]
        agreement = (predicted == expected).mean()
        assert agreement > 0.8

    def test_beats_unigram_on_held_out(self, split):
        lda = LatentDirichletAllocation(
            n_topics=4, inference="variational", n_iter=60, seed=0
        ).fit(split.train)
        unigram = UnigramModel().fit(split.train)
        assert lda.perplexity(split.test) < unigram.perplexity(split.test)

    def test_gibbs_and_variational_agree(self, split):
        gibbs = LatentDirichletAllocation(n_topics=4, n_iter=80, seed=0).fit(split.train)
        variational = LatentDirichletAllocation(
            n_topics=4, inference="variational", n_iter=80, seed=0
        ).fit(split.train)
        a = gibbs.perplexity(split.test)
        b = variational.perplexity(split.test)
        assert abs(a - b) / min(a, b) < 0.15

    def test_blocked_and_token_samplers_agree(self, split):
        """The vectorized blocked sampler matches the reference token
        sampler within the documented tolerance, across seeds."""
        for seed in (0, 1):
            blocked = LatentDirichletAllocation(
                n_topics=4, n_iter=80, seed=seed, gibbs_sampler="blocked"
            ).fit(split.train)
            token = LatentDirichletAllocation(
                n_topics=4, n_iter=80, seed=seed, gibbs_sampler="token"
            ).fit(split.train)
            a = blocked.perplexity(split.test)
            b = token.perplexity(split.test)
            assert abs(a - b) / min(a, b) < 0.05

    def test_blocked_sampler_deterministic_given_seed(self, split):
        a = LatentDirichletAllocation(
            n_topics=3, n_iter=30, seed=4, gibbs_sampler="blocked"
        ).fit(split.train)
        b = LatentDirichletAllocation(
            n_topics=3, n_iter=30, seed=4, gibbs_sampler="blocked"
        ).fit(split.train)
        assert np.array_equal(a.phi, b.phi)

    def test_gibbs_sampler_choice_validated(self):
        with pytest.raises(ValueError, match="gibbs_sampler"):
            LatentDirichletAllocation(n_topics=2, gibbs_sampler="quantum")

    def test_gibbs_sampler_survives_save_load(self, split, tmp_path):
        model = LatentDirichletAllocation(
            n_topics=2, n_iter=10, seed=0, gibbs_sampler="token"
        ).fit(split.train)
        model.save(tmp_path / "lda.npz")
        restored = LatentDirichletAllocation.load(tmp_path / "lda.npz")
        assert restored.gibbs_sampler == "token"
        assert np.array_equal(restored.phi, model.phi)


class TestScoring:
    def test_fold_in_scores_lower_perplexity_than_completion(self, split):
        completion = LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=40, seed=0
        ).fit(split.train)
        fold_in = LatentDirichletAllocation(
            n_topics=3, inference="variational", n_iter=40,
            score_mode="fold_in", seed=0,
        ).fit(split.train)
        # Fold-in leaks the scored product into the mixture -> optimistic.
        assert fold_in.perplexity(split.test) < completion.perplexity(split.test)

    def test_tfidf_input_roundtrip(self, split):
        model = LatentDirichletAllocation(
            n_topics=3, inference="variational", input_type="tfidf",
            n_iter=40, seed=0,
        ).fit(split.train)
        assert np.isfinite(model.perplexity(split.test))
        features = model.company_features(split.test)
        assert np.allclose(features.sum(axis=1), 1.0)


class TestAutoAlpha:
    def test_auto_alpha_learns_peaked_prior(self, split):
        # The simulator's mixtures are near one-hot, so the learned
        # concentration must drop below the uniform-ish initial 1/K.
        model = LatentDirichletAllocation(
            n_topics=4, alpha="auto", inference="variational", n_iter=60, seed=0
        ).fit(split.train)
        assert model.learn_alpha
        assert 0.0 < model.alpha < 0.25

    def test_auto_alpha_perplexity_competitive(self, split):
        fixed = LatentDirichletAllocation(
            n_topics=4, inference="variational", n_iter=60, seed=0
        ).fit(split.train)
        auto = LatentDirichletAllocation(
            n_topics=4, alpha="auto", inference="variational", n_iter=60, seed=0
        ).fit(split.train)
        assert auto.perplexity(split.test) < fixed.perplexity(split.test) * 1.15

    def test_auto_alpha_requires_variational(self):
        with pytest.raises(ValueError, match="variational"):
            LatentDirichletAllocation(alpha="auto", inference="gibbs")

    def test_auto_alpha_roundtrips(self, split, tmp_path):
        model = LatentDirichletAllocation(
            n_topics=3, alpha="auto", inference="variational", n_iter=30, seed=0
        ).fit(split.train)
        path = tmp_path / "auto.npz"
        model.save(path)
        loaded = LatentDirichletAllocation.load(path)
        assert loaded.alpha == pytest.approx(model.alpha)
        assert loaded.learn_alpha
