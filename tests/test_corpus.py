"""Tests for the corpus abstraction."""

import datetime as dt

import numpy as np
import pytest

from repro.data.company import Company
from repro.data.corpus import Corpus
from repro.data.duns import DunsNumber


def _company(i, first_seen, sic2=80):
    return Company(
        duns=DunsNumber.from_sequence(i),
        name=f"C{i}",
        country="US",
        sic2=sic2,
        first_seen=first_seen,
    )


@pytest.fixture()
def small_corpus():
    companies = [
        _company(0, {"OS": dt.date(2000, 1, 1), "DBMS": dt.date(2005, 1, 1)}),
        _company(1, {"OS": dt.date(2001, 1, 1)}),
        _company(2, {"retail": dt.date(2014, 6, 1), "OS": dt.date(2010, 1, 1)}),
    ]
    return Corpus(companies, ("DBMS", "OS", "retail"))


class TestConstruction:
    def test_requires_companies(self):
        with pytest.raises(ValueError, match="at least one company"):
            Corpus([], ("OS",))

    def test_requires_vocabulary(self, small_corpus):
        with pytest.raises(ValueError, match="non-empty"):
            Corpus(small_corpus.companies, ())

    def test_rejects_duplicate_vocabulary(self, small_corpus):
        with pytest.raises(ValueError, match="duplicate"):
            Corpus(small_corpus.companies, ("OS", "OS"))

    def test_rejects_unknown_company_categories(self):
        company = _company(0, {"OS": dt.date(2000, 1, 1)})
        with pytest.raises(ValueError, match="outside the vocabulary"):
            Corpus([company], ("DBMS",))

    def test_from_companies_builds_sorted_union_vocabulary(self):
        companies = [
            _company(0, {"retail": dt.date(2000, 1, 1)}),
            _company(1, {"OS": dt.date(2000, 1, 1)}),
        ]
        corpus = Corpus.from_companies(companies)
        assert corpus.vocabulary == ("OS", "retail")


class TestViews:
    def test_binary_matrix(self, small_corpus):
        matrix = small_corpus.binary_matrix()
        expected = np.array([[1, 1, 0], [0, 1, 0], [0, 1, 1]], dtype=float)
        assert np.array_equal(matrix, expected)

    def test_sequences_time_sorted(self, small_corpus):
        sequences = small_corpus.sequences()
        # Company 0: OS (2000) then DBMS (2005).
        assert sequences[0] == [small_corpus.token("OS"), small_corpus.token("DBMS")]
        # Company 2: OS (2010) then retail (2014).
        assert sequences[2] == [small_corpus.token("OS"), small_corpus.token("retail")]

    def test_dated_sequences(self, small_corpus):
        dated = small_corpus.dated_sequences()
        assert dated[0][0] == (small_corpus.token("OS"), dt.date(2000, 1, 1))

    def test_token_category_roundtrip(self, small_corpus):
        for i, name in enumerate(small_corpus.vocabulary):
            assert small_corpus.token(name) == i
            assert small_corpus.category(i) == name

    def test_unknown_token_raises(self, small_corpus):
        with pytest.raises(KeyError):
            small_corpus.token("nonexistent")
        with pytest.raises(IndexError):
            small_corpus.category(99)

    def test_industries(self, small_corpus):
        assert np.array_equal(small_corpus.industries(), [80, 80, 80])

    def test_total_products(self, small_corpus):
        assert small_corpus.total_products() == 5


class TestSplit:
    def test_split_covers_all_companies(self, corpus):
        split = corpus.split((0.7, 0.1, 0.2), seed=0)
        total = split.train.n_companies + split.validation.n_companies + split.test.n_companies
        assert total == corpus.n_companies

    def test_split_is_disjoint(self, corpus):
        split = corpus.split((0.7, 0.1, 0.2), seed=0)
        names = lambda c: {x.duns.value for x in c.companies}
        assert not names(split.train) & names(split.test)
        assert not names(split.train) & names(split.validation)
        assert not names(split.validation) & names(split.test)

    def test_split_deterministic(self, corpus):
        a = corpus.split(seed=5)
        b = corpus.split(seed=5)
        assert [c.duns.value for c in a.train.companies] == [
            c.duns.value for c in b.train.companies
        ]

    def test_split_shares_vocabulary(self, corpus):
        split = corpus.split(seed=0)
        assert split.train.vocabulary == corpus.vocabulary
        assert split.test.vocabulary == corpus.vocabulary

    def test_split_iterable(self, corpus):
        train, valid, test = corpus.split(seed=0)
        assert train.n_companies > test.n_companies > 0
        assert valid.n_companies > 0

    def test_bad_fractions_rejected(self, corpus):
        with pytest.raises(ValueError):
            corpus.split((0.5, 0.4, 0.3))

    def test_tiny_corpus_with_test_fraction_raises(self, small_corpus):
        with pytest.raises(ValueError, match="larger corpus"):
            small_corpus.split((0.9, 0.1, 0.0))  # rounds test away -> but frac 0 ok
            small_corpus.subset([0]).split((0.7, 0.1, 0.2))

    def test_rounded_away_fraction_never_leaks_a_train_company(self):
        # Regression: a positive fraction rounding to zero companies used to
        # substitute the first *training* company into that part, so the
        # model could be evaluated on a row it trained on.  It must raise.
        companies = [
            _company(i, {"OS": dt.date(2000 + i, 1, 1)}) for i in range(4)
        ]
        corpus = Corpus(companies, ("OS",))
        with pytest.raises(ValueError, match="yields no companies"):
            corpus.split((0.85, 0.05, 0.10), seed=0)

    def test_zero_fraction_part_is_a_true_empty_view(self):
        companies = [
            _company(i, {"OS": dt.date(2000 + i, 1, 1)}) for i in range(10)
        ]
        corpus = Corpus(companies, ("OS",))
        split = corpus.split((0.8, 0.2, 0.0), seed=3)
        assert split.test.n_companies == 0
        assert split.test.binary_matrix().shape == (0, 1)
        assert split.test.sequences() == []
        # ... and the zero part shares no company with train/validation.
        train_duns = {c.duns.value for c in split.train.companies}
        valid_duns = {c.duns.value for c in split.validation.companies}
        assert train_duns.isdisjoint(valid_duns)
        assert len(train_duns) + len(valid_duns) == corpus.n_companies


class TestSubsetValidation:
    def test_negative_indices_rejected(self, small_corpus):
        with pytest.raises(ValueError, match="negative indices"):
            small_corpus.subset([-1])

    def test_out_of_range_indices_rejected(self, small_corpus):
        with pytest.raises(ValueError, match=r"must be in \[0, 3\)"):
            small_corpus.subset([0, 3])

    def test_duplicate_indices_rejected_by_default(self, small_corpus):
        with pytest.raises(ValueError, match="duplicate"):
            small_corpus.subset([0, 0])

    def test_duplicates_allowed_when_opted_in(self, small_corpus):
        doubled = small_corpus.subset([0, 0], allow_duplicates=True)
        assert doubled.n_companies == 2
        assert doubled.companies[0] == doubled.companies[1]

    def test_non_integer_indices_rejected(self, small_corpus):
        with pytest.raises(TypeError, match="integer"):
            small_corpus.subset([0.5])


class TestSubsetAndTruncate:
    def test_subset(self, small_corpus):
        sub = small_corpus.subset([2, 0])
        assert sub.n_companies == 2
        assert sub.companies[0].name == "C2"

    def test_subset_requires_indices(self, small_corpus):
        with pytest.raises(ValueError):
            small_corpus.subset([])

    def test_truncated_before_drops_later_products(self, small_corpus):
        truncated = small_corpus.truncated_before(dt.date(2004, 1, 1))
        # Company 0 keeps only OS; company 2 (OS@2010) disappears entirely...
        kept = {c.name: set(c.categories) for c in truncated.companies}
        assert kept == {"C0": {"OS"}, "C1": {"OS"}}

    def test_truncated_before_everything_raises(self, small_corpus):
        with pytest.raises(ValueError, match="no company"):
            small_corpus.truncated_before(dt.date(1980, 1, 1))

    def test_truncation_preserves_vocabulary(self, small_corpus):
        truncated = small_corpus.truncated_before(dt.date(2004, 1, 1))
        assert truncated.vocabulary == small_corpus.vocabulary
