"""Setup shim: enables legacy editable installs on machines without the
`wheel` package (PEP 660 editable builds require it)."""
from setuptools import setup

setup()
